//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The execution environment has no access to crates.io, so the workspace
//! ships the small slice of `rand` it actually uses: [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), and the [`distributions::Standard`] distribution. The
//! numeric behaviour (uniform ranges, unit-interval floats) follows the
//! upstream algorithms closely enough for every statistical test in the
//! workspace, but the exact output streams are NOT guaranteed to match
//! upstream `rand` — all in-repo consumers only rely on determinism for a
//! fixed seed, not on upstream-identical streams.

use std::ops::{Range, RangeInclusive};

pub mod distributions {
    //! The `Standard` distribution and the `Distribution` trait.

    use crate::RngCore;

    /// Types that can produce samples of `T` from an RNG.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" uniform distribution of a type: full range for
    /// integers, `[0, 1)` for floats, fair coin for `bool`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        /// 53 uniform bits mapped to `[0, 1)`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
}

use distributions::{Distribution, Standard};

/// Core of every random number generator: raw 32/64-bit output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Extension methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of the inferred type from [`Standard`].
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R2>(&mut self, range: R2) -> T
    where
        R2: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, n)` by widening multiply (Lemire's method without
/// the rejection step; the bias is ≤ 2⁻⁶⁴·n and irrelevant here).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let unit: f64 = Standard.sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let unit: f32 = Standard.sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Generators constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded through SplitMix64
    /// (upstream `rand` uses the same construction family).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so the low bits are decent.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = Counter(3);
        let n = 4000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Counter(0);
        let _ = rng.gen_range(5usize..5);
    }
}
