//! Numeric strategy helpers (compatibility module).
//!
//! Ranges themselves implement `Strategy` (see `strategy`); this module
//! exists so `proptest::num::...` paths resolve if referenced.

pub use crate::strategy::Strategy;
