//! Offline vendored subset of `proptest`.
//!
//! Mirrors the parts of the proptest API the workspace tests use: the
//! `proptest!` macro with `pat in strategy` parameters and
//! `#![proptest_config(...)]`, `prop_assert*!`, integer/float range
//! strategies, tuple strategies, `Just`, `prop_map` / `prop_perturb` /
//! `prop_filter` / `prop_flat_map`, `proptest::bool::ANY`, and
//! `proptest::collection::vec`.
//!
//! Differences from upstream: case generation is fully deterministic
//! (seeded from the test name and case index, no persistence files), and
//! failing cases are reported without shrinking.

pub mod bool;
pub mod collection;
pub mod num;
pub mod strategy;
pub mod test_runner;

/// Everything a proptest-based test usually imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use rand::{Rng, RngCore};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg); $($rest)*);
    };
    (@funcs ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __runner = $crate::test_runner::TestRunner::new(__config);
                __runner.run_named(stringify!($name), |__rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking the whole harness) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = &$left;
        let __r = &$right;
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = &$left;
        let __r = &$right;
        $crate::prop_assert!(
            __l == __r,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)+),
            __l,
            __r
        );
    }};
}

/// `prop_assert!` for inequality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = &$left;
        let __r = &$right;
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}
