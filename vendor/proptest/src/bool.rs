//! Boolean strategies (`proptest::bool::ANY`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy yielding uniformly random booleans.
#[derive(Debug, Clone, Copy)]
pub struct Any;

/// Uniformly random booleans, as `proptest::bool::ANY`.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}
