//! Test runner and deterministic RNG for the vendored proptest.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt::{self, Display};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases, as in upstream.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps offline CI fast while still
        // exercising plenty of inputs.
        Self { cases: 64 }
    }
}

/// A failed (not panicked) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Fails the current case with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// The RNG handed to strategies; deterministic per (test name, case).
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl TestRng {
    pub(crate) fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index, so each
        // test and each case draws an independent stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        Self { inner: ChaCha8Rng::seed_from_u64(h) }
    }

    /// Splits off an independent child RNG (used by `prop_perturb`).
    pub fn split(&mut self) -> Self {
        Self { inner: ChaCha8Rng::seed_from_u64(self.inner.next_u64()) }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Runs the cases of one property test.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Builds a runner with the given config.
    pub fn new(config: ProptestConfig) -> Self {
        Self { config }
    }

    /// Runs `f` for each case; panics (failing the `#[test]`) on the first
    /// case returning `Err`. No shrinking is attempted.
    pub fn run_named<F>(&mut self, test_name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        for case in 0..self.config.cases {
            let mut rng = TestRng::for_case(test_name, case);
            if let Err(e) = f(&mut rng) {
                panic!(
                    "proptest `{test_name}` failed at case {case}/{}:\n{e}",
                    self.config.cases
                );
            }
        }
    }
}
