//! The `Strategy` trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A generator of values for property tests.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy is just a deterministic function of the case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Maps generated values through `f` with access to a fresh RNG.
    fn prop_perturb<O, F>(self, f: F) -> Perturb<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value, TestRng) -> O,
    {
        Perturb { inner: self, f }
    }

    /// Chains into a second strategy derived from the generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Retries generation until `f` accepts the value (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, f }
    }

    /// Boxes the strategy (API-compatibility shim).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Box::new(self) }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_perturb`].
pub struct Perturb<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value, TestRng) -> O> Strategy for Perturb<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        let value = self.inner.generate(rng);
        let child = rng.split();
        (self.f)(value, child)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 consecutive values", self.whence);
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn ErasedStrategy<T>>,
}

trait ErasedStrategy<T> {
    fn erased_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn erased_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.erased_generate(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}
