//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The sandbox has no crates.io access, so this derive is written against
//! the bare `proc_macro` API (no `syn`/`quote`): the item is parsed with a
//! small token-cursor, and the impl is emitted as a source string parsed
//! back into a `TokenStream`. It targets the vendored value-tree `serde`
//! crate in `vendor/serde` and covers the attribute surface the workspace
//! uses: `#[serde(default)]`, `#[serde(default = "path")]`,
//! `#[serde(skip)]`, `#[serde(rename = "name")]`, `#[serde(with =
//! "module")]`, and `#[serde(untagged)]` on enums.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ------------------------------------------------------------------ model

#[derive(Debug, Default, Clone)]
struct SerdeAttrs {
    /// `Some(None)` for bare `default`, `Some(Some(path))` for `default = "path"`.
    default: Option<Option<String>>,
    skip: bool,
    rename: Option<String>,
    with: Option<String>,
    untagged: bool,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: SerdeAttrs,
}

#[derive(Debug)]
enum Fields {
    Named(Vec<Field>),
    /// Tuple fields; only the arity and per-field attrs matter.
    Tuple(Vec<SerdeAttrs>),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Data {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Input {
    name: String,
    attrs: SerdeAttrs,
    data: Data,
}

// ----------------------------------------------------------------- parser

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self { tokens: stream.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive (vendored): expected {what}, found {other:?}"),
        }
    }

    /// Parses and accumulates any leading `#[...]` attributes, returning
    /// the merged serde attrs found among them.
    fn parse_attrs(&mut self) -> SerdeAttrs {
        let mut attrs = SerdeAttrs::default();
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1;
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                other => panic!("serde_derive (vendored): malformed attribute, found {other:?}"),
            };
            let mut inner = Cursor::new(group.stream());
            if let Some(TokenTree::Ident(name)) = inner.peek() {
                if name.to_string() == "serde" {
                    inner.pos += 1;
                    let args = match inner.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
                        other => panic!(
                            "serde_derive (vendored): expected serde(...) args, found {other:?}"
                        ),
                    };
                    parse_serde_args(args.stream(), &mut attrs);
                }
            }
        }
        attrs
    }

    /// Skips an optional visibility qualifier (`pub`, `pub(crate)`, ...).
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    /// Skips a type (or other token soup) until a `,` at angle-bracket
    /// depth zero; the comma itself is consumed. Groups are atomic tokens
    /// so only `<`/`>` need explicit depth tracking.
    fn skip_until_comma(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(tok) = self.peek() {
            match tok {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == ',' && angle_depth == 0 {
                        self.pos += 1;
                        return;
                    }
                    if c == '<' {
                        angle_depth += 1;
                    }
                    if c == '>' {
                        angle_depth -= 1;
                    }
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }
}

/// Strips the surrounding quotes from a string-literal token.
fn unquote(lit: &str) -> String {
    let s = lit.trim();
    if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
        s[1..s.len() - 1].to_string()
    } else {
        panic!("serde_derive (vendored): expected string literal, found `{lit}`");
    }
}

fn parse_serde_args(stream: TokenStream, attrs: &mut SerdeAttrs) {
    let mut cur = Cursor::new(stream);
    while !cur.at_end() {
        let key = cur.expect_ident("serde attribute name");
        let value = if cur.eat_punct('=') {
            match cur.next() {
                Some(TokenTree::Literal(l)) => Some(unquote(&l.to_string())),
                other => panic!(
                    "serde_derive (vendored): expected literal after `{key} =`, found {other:?}"
                ),
            }
        } else {
            None
        };
        match (key.as_str(), value) {
            ("default", v) => attrs.default = Some(v),
            ("skip", None) | ("skip_serializing", None) | ("skip_deserializing", None) => {
                attrs.skip = true
            }
            ("rename", Some(v)) => attrs.rename = Some(v),
            ("with", Some(v)) => attrs.with = Some(v),
            ("untagged", None) => attrs.untagged = true,
            (other, _) => panic!("serde_derive (vendored): unsupported serde attribute `{other}`"),
        }
        cur.eat_punct(',');
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while !cur.at_end() {
        let attrs = cur.parse_attrs();
        if cur.at_end() {
            break;
        }
        cur.skip_visibility();
        let name = cur.expect_ident("field name");
        if !cur.eat_punct(':') {
            panic!("serde_derive (vendored): expected `:` after field `{name}`");
        }
        cur.skip_until_comma();
        fields.push(Field { name, attrs });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<SerdeAttrs> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while !cur.at_end() {
        let attrs = cur.parse_attrs();
        if cur.at_end() {
            break;
        }
        cur.skip_visibility();
        cur.skip_until_comma();
        fields.push(attrs);
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    while !cur.at_end() {
        // Variant-level attrs (e.g. `#[default]` from derive(Default)) are
        // skipped; serde variant attrs are not used in this workspace.
        let _ = cur.parse_attrs();
        if cur.at_end() {
            break;
        }
        let name = cur.expect_ident("variant name");
        let fields = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                cur.pos += 1;
                Fields::Named(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = parse_tuple_fields(g.stream());
                cur.pos += 1;
                Fields::Tuple(f)
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant if present.
        if cur.eat_punct('=') {
            cur.skip_until_comma();
        } else {
            cur.eat_punct(',');
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let mut cur = Cursor::new(input);
    let attrs = cur.parse_attrs();
    cur.skip_visibility();
    let kind = cur.expect_ident("`struct` or `enum`");
    let name = cur.expect_ident("type name");
    if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic type `{name}` is not supported");
    }
    let data = match kind.as_str() {
        "struct" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::Struct(Fields::Tuple(parse_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::Struct(Fields::Unit),
            other => panic!("serde_derive (vendored): malformed struct body: {other:?}"),
        },
        "enum" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive (vendored): malformed enum body: {other:?}"),
        },
        other => panic!("serde_derive (vendored): expected struct or enum, found `{other}`"),
    };
    Input { name, attrs, data }
}

// ---------------------------------------------------------------- codegen

/// Error-context paths for deserialization codegen. The normal impl body
/// maps through `D::Error`; untagged attempt closures keep the concrete
/// `DeError` so attempts can be tried and discarded.
struct ErrCtx {
    /// Path of the error type's `custom` constructor.
    custom: &'static str,
    /// Suffix converting a `Result<_, DeError>` into the context's error.
    map: &'static str,
}

const D_ERR: ErrCtx = ErrCtx {
    custom: "<__D::Error as ::serde::de::Error>::custom",
    map: ".map_err(<__D::Error as ::serde::de::Error>::custom)",
};
const RAW_ERR: ErrCtx =
    ErrCtx { custom: "<::serde::__private::DeError as ::serde::de::Error>::custom", map: "" };

fn json_name(field: &Field) -> String {
    field.attrs.rename.clone().unwrap_or_else(|| field.name.clone())
}

/// Serialize expression for one value reference `expr` (e.g. `&self.x` or
/// a match binding), yielding a `Value` expression with `?`.
fn ser_value_expr(expr: &str, attrs: &SerdeAttrs) -> String {
    match &attrs.with {
        Some(module) => format!(
            "{module}::serialize({expr}, ::serde::__private::ValueSerializer)\
             .map_err(<__S::Error as ::serde::ser::Error>::custom)?"
        ),
        None => format!(
            "::serde::__private::to_value({expr})\
             .map_err(<__S::Error as ::serde::ser::Error>::custom)?"
        ),
    }
}

/// Statements pushing the named `fields` of some bound value into a
/// `__fields` vec; `access` maps a field name to an expression for `&field`.
fn ser_named_fields(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let mut out = String::new();
    for f in fields {
        if f.attrs.skip {
            continue;
        }
        let value = ser_value_expr(&access(&f.name), &f.attrs);
        out.push_str(&format!(
            "__fields.push(({:?}.to_string(), {value}));\n",
            json_name(f)
        ));
    }
    out
}

/// Deserialize expression for one field taken out of `__fields` (an
/// `Option<Value>`), in the given error context.
fn de_field_expr(f: &Field, err: &ErrCtx) -> String {
    if f.attrs.skip {
        return "::core::default::Default::default()".to_string();
    }
    let take = format!("::serde::__private::obj_take(&mut __fields, {:?})", json_name(f));
    let from = match &f.attrs.with {
        Some(module) => format!(
            "{module}::deserialize(::serde::__private::ValueDeserializer::new(__x)){}?",
            err.map
        ),
        None => format!("::serde::__private::from_value(__x){}?", err.map),
    };
    let missing = match &f.attrs.default {
        Some(None) => "::core::default::Default::default()".to_string(),
        Some(Some(path)) => format!("{path}()"),
        None => format!(
            "return ::core::result::Result::Err({}(::std::format!(\"missing field `{}`\")))",
            err.custom,
            json_name(f)
        ),
    };
    format!(
        "match {take} {{\n\
         ::core::option::Option::Some(__x) => {from},\n\
         ::core::option::Option::None => {missing},\n\
         }}"
    )
}

/// `Constructor { f: ..., }` expression consuming `__fields` (a
/// `Vec<(String, Value)>` binding that must already exist as `__fields`).
fn de_named_ctor(ctor: &str, fields: &[Field], err: &ErrCtx) -> String {
    let mut body = String::new();
    for f in fields {
        body.push_str(&format!("{}: {},\n", f.name, de_field_expr(f, err)));
    }
    format!("{ctor} {{ {body} }}")
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::Struct(Fields::Named(fields)) => {
            let pushes = ser_named_fields(fields, |f| format!("&self.{f}"));
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, \
                 ::serde::__private::Value)> = ::std::vec::Vec::new();\n\
                 {pushes}\
                 __s.serialize_value(::serde::__private::Value::Object(__fields))"
            )
        }
        Data::Struct(Fields::Tuple(attrs)) if attrs.len() == 1 => {
            // Newtype structs serialize transparently, as upstream.
            let v = ser_value_expr("&self.0", &attrs[0]);
            format!("__s.serialize_value({v})")
        }
        Data::Struct(Fields::Tuple(attrs)) => {
            let items: Vec<String> =
                (0..attrs.len()).map(|i| ser_value_expr(&format!("&self.{i}"), &attrs[i])).collect();
            format!(
                "__s.serialize_value(::serde::__private::Value::Array(::std::vec![{}]))",
                items.join(", ")
            )
        }
        Data::Struct(Fields::Unit) => {
            "__s.serialize_value(::serde::__private::Value::Null)".to_string()
        }
        Data::Enum(variants) => {
            let untagged = input.attrs.untagged;
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        let value = if untagged {
                            "::serde::__private::Value::Null".to_string()
                        } else {
                            format!("::serde::__private::Value::Str({vname:?}.to_string())")
                        };
                        arms.push_str(&format!(
                            "{name}::{vname} => __s.serialize_value({value}),\n"
                        ));
                    }
                    Fields::Named(fields) => {
                        let bindings: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let pushes = ser_named_fields(fields, |f| f.to_string());
                        let body = if untagged {
                            "::serde::__private::Value::Object(__fields)".to_string()
                        } else {
                            format!(
                                "::serde::__private::Value::Object(::std::vec![\
                                 ({vname:?}.to_string(), \
                                 ::serde::__private::Value::Object(__fields))])"
                            )
                        };
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n\
                             let mut __fields: ::std::vec::Vec<(::std::string::String, \
                             ::serde::__private::Value)> = ::std::vec::Vec::new();\n\
                             {pushes}\
                             __s.serialize_value({body})\n\
                             }}\n",
                            bindings.join(", ")
                        ));
                    }
                    Fields::Tuple(attrs) => {
                        let bindings: Vec<String> =
                            (0..attrs.len()).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = bindings
                            .iter()
                            .zip(attrs)
                            .map(|(b, a)| ser_value_expr(b, a))
                            .collect();
                        let inner = if attrs.len() == 1 {
                            items[0].clone()
                        } else {
                            format!(
                                "::serde::__private::Value::Array(::std::vec![{}])",
                                items.join(", ")
                            )
                        };
                        let body = if untagged {
                            inner
                        } else {
                            format!(
                                "::serde::__private::Value::Object(::std::vec![\
                                 ({vname:?}.to_string(), {inner})])"
                            )
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {{\n__s.serialize_value({body})\n}}\n",
                            bindings.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __s: __S) \
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}

/// Deserialization of one enum variant from its (already untagged) body
/// value `__body`, evaluating to `Result<Self, _>` in the error context.
fn de_variant_body(name: &str, v: &Variant, err: &ErrCtx) -> String {
    let vname = &v.name;
    match &v.fields {
        Fields::Unit => format!("::core::result::Result::Ok({name}::{vname})"),
        Fields::Named(fields) => {
            let ctor = de_named_ctor(&format!("{name}::{vname}"), fields, err);
            format!(
                "match __body {{\n\
                 ::serde::__private::Value::Object(mut __fields) => \
                 ::core::result::Result::Ok({ctor}),\n\
                 __other => ::core::result::Result::Err({}(::std::format!(\
                 \"expected object for variant `{vname}`, found {{}}\", __other.kind()))),\n\
                 }}",
                err.custom
            )
        }
        Fields::Tuple(attrs) if attrs.len() == 1 => format!(
            "::core::result::Result::Ok({name}::{vname}(\
             ::serde::__private::from_value(__body){}?))",
            err.map
        ),
        Fields::Tuple(attrs) => {
            let n = attrs.len();
            let items: Vec<String> = (0..n)
                .map(|_| {
                    format!(
                        "::serde::__private::from_value(__it.next().expect(\"len checked\")){}?",
                        err.map
                    )
                })
                .collect();
            format!(
                "match __body {{\n\
                 ::serde::__private::Value::Array(__items) if __items.len() == {n} => {{\n\
                 let mut __it = __items.into_iter();\n\
                 ::core::result::Result::Ok({name}::{vname}({}))\n\
                 }}\n\
                 __other => ::core::result::Result::Err({}(::std::format!(\
                 \"expected {n}-element array for variant `{vname}`, found {{}}\", \
                 __other.kind()))),\n\
                 }}",
                items.join(", "),
                err.custom
            )
        }
    }
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::Struct(Fields::Named(fields)) => {
            let ctor = de_named_ctor(name, fields, &D_ERR);
            format!(
                "let __v = __d.deserialize_value()?;\n\
                 match __v {{\n\
                 ::serde::__private::Value::Object(mut __fields) => \
                 ::core::result::Result::Ok({ctor}),\n\
                 __other => ::core::result::Result::Err({}(::std::format!(\
                 \"expected object for struct {name}, found {{}}\", __other.kind()))),\n\
                 }}",
                D_ERR.custom
            )
        }
        Data::Struct(Fields::Tuple(attrs)) if attrs.len() == 1 => {
            let inner = match &attrs[0].with {
                Some(module) => format!(
                    "{module}::deserialize(::serde::__private::ValueDeserializer::new(__v)){}?",
                    D_ERR.map
                ),
                None => format!("::serde::__private::from_value(__v){}?", D_ERR.map),
            };
            format!(
                "let __v = __d.deserialize_value()?;\n\
                 ::core::result::Result::Ok({name}({inner}))"
            )
        }
        Data::Struct(Fields::Tuple(attrs)) => {
            let n = attrs.len();
            let items: Vec<String> = (0..n)
                .map(|_| {
                    format!(
                        "::serde::__private::from_value(__it.next().expect(\"len checked\")){}?",
                        D_ERR.map
                    )
                })
                .collect();
            format!(
                "let __v = __d.deserialize_value()?;\n\
                 match __v {{\n\
                 ::serde::__private::Value::Array(__items) if __items.len() == {n} => {{\n\
                 let mut __it = __items.into_iter();\n\
                 ::core::result::Result::Ok({name}({}))\n\
                 }}\n\
                 __other => ::core::result::Result::Err({}(::std::format!(\
                 \"expected {n}-element array for {name}, found {{}}\", __other.kind()))),\n\
                 }}",
                items.join(", "),
                D_ERR.custom
            )
        }
        Data::Struct(Fields::Unit) => {
            format!(
                "let _ = __d.deserialize_value()?;\n\
                 ::core::result::Result::Ok({name})"
            )
        }
        Data::Enum(variants) if input.attrs.untagged => {
            // Try each variant's shape in declaration order against a clone
            // of the input; first success wins, as in upstream untagged.
            let mut attempts = String::new();
            for v in variants {
                let body = de_variant_body(name, v, &RAW_ERR);
                attempts.push_str(&format!(
                    "{{\n\
                     let __attempt: ::core::result::Result<{name}, \
                     ::serde::__private::DeError> = (|| {{\n\
                     let __body = __v.clone();\n\
                     {body}\n\
                     }})();\n\
                     if let ::core::result::Result::Ok(__ok) = __attempt {{\n\
                     return ::core::result::Result::Ok(__ok);\n\
                     }}\n\
                     }}\n"
                ));
            }
            format!(
                "let __v = __d.deserialize_value()?;\n\
                 {attempts}\
                 ::core::result::Result::Err({}(\
                 \"data did not match any variant of untagged enum {name}\"))",
                D_ERR.custom
            )
        }
        Data::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "{vname:?} => ::core::result::Result::Ok({name}::{vname}),\n"
                    )),
                    _ => {
                        let body = de_variant_body(name, v, &D_ERR);
                        tagged_arms.push_str(&format!("{vname:?} => {{ {body} }}\n"));
                    }
                }
            }
            format!(
                "let __v = __d.deserialize_value()?;\n\
                 match __v {{\n\
                 ::serde::__private::Value::Str(__s0) => match __s0.as_str() {{\n\
                 {unit_arms}\
                 __other => ::core::result::Result::Err({custom}(::std::format!(\
                 \"unknown variant `{{__other}}` of enum {name}\"))),\n\
                 }},\n\
                 ::serde::__private::Value::Object(mut __obj) if __obj.len() == 1 => {{\n\
                 let (__tag, __body) = __obj.remove(0);\n\
                 match __tag.as_str() {{\n\
                 {tagged_arms}\
                 __other => ::core::result::Result::Err({custom}(::std::format!(\
                 \"unknown variant `{{__other}}` of enum {name}\"))),\n\
                 }}\n\
                 }}\n\
                 __other => ::core::result::Result::Err({custom}(::std::format!(\
                 \"expected string or single-key object for enum {name}, found {{}}\", \
                 __other.kind()))),\n\
                 }}",
                custom = D_ERR.custom
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__d: __D) \
         -> ::core::result::Result<Self, __D::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}

fn emit(code: String) -> TokenStream {
    code.parse().unwrap_or_else(|e| {
        panic!("serde_derive (vendored): generated invalid Rust: {e}\n---\n{code}")
    })
}

/// Derives `serde::Serialize` against the vendored value-tree serde.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit(gen_serialize(&parse_input(input)))
}

/// Derives `serde::Deserialize` against the vendored value-tree serde.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit(gen_deserialize(&parse_input(input)))
}
