//! Offline vendored `ChaCha8Rng`.
//!
//! A real ChaCha stream cipher core with 8 double-rounds driving the
//! workspace's deterministic RNG needs. Seeded output is stable across
//! runs and platforms (little-endian word serialization, as in RFC 7539);
//! it is NOT guaranteed to be bit-identical to the upstream `rand_chacha`
//! stream — in-repo consumers only require per-seed determinism.

use rand::{RngCore, SeedableRng};

/// The ChaCha block function with `ROUNDS` total rounds (8 for ChaCha8).
fn chacha_block(state: &[u32; 16], out: &mut [u32; 16], rounds: usize) {
    let mut x = *state;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter(&mut x, 0, 4, 8, 12);
        quarter(&mut x, 1, 5, 9, 13);
        quarter(&mut x, 2, 6, 10, 14);
        quarter(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter(&mut x, 0, 5, 10, 15);
        quarter(&mut x, 1, 6, 11, 12);
        quarter(&mut x, 2, 7, 8, 13);
        quarter(&mut x, 3, 4, 9, 14);
    }
    for i in 0..16 {
        out[i] = x[i].wrapping_add(state[i]);
    }
}

#[inline]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

/// ChaCha with 8 rounds as a random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input state: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current output block.
    buffer: [u32; 16],
    /// Next unread word of `buffer`; 16 means exhausted.
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut out = [0u32; 16];
        chacha_block(&self.state, &mut out, 8);
        self.buffer = out;
        self.index = 0;
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] =
                u32::from_le_bytes([seed[4 * i], seed[4 * i + 1], seed[4 * i + 2], seed[4 * i + 3]]);
        }
        // Counter and nonce start at zero.
        Self { state, buffer: [0u32; 16], index: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..5 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn block_counter_advances_without_repeats() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        // 4 blocks' worth of words must all differ.
        for _ in 0..64 {
            assert!(seen.insert(rng.next_u32()), "word repeated within 4 blocks");
        }
    }

    #[test]
    fn uniformity_sanity() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
