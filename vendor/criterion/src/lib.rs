//! Offline vendored subset of `criterion`.
//!
//! Implements the API shape the workspace benches use — `Criterion`,
//! `benchmark_group` (with `sample_size`/`measurement_time`),
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros — with a simple
//! wall-clock measurement loop and plain-text reporting instead of
//! upstream's statistical machinery.
//!
//! When invoked by `cargo test` (args contain `--test`) each benchmark
//! body runs exactly once as a smoke test, mirroring upstream behaviour.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifier for a parameterized benchmark, rendered `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{parameter}", name.into()) }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// Accepts both `&str` and [`BenchmarkId`] where an id is expected.
pub trait IntoBenchmarkId {
    /// The rendered benchmark id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Total time / iteration counts collected by `iter`.
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Measures `f`, collecting `sample_size` samples of auto-calibrated
    /// batches. In test mode, runs `f` once and records nothing.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Calibrate: aim for each sample batch to take roughly
        // measurement_time / sample_size.
        let calibrate_start = Instant::now();
        black_box(f());
        let once = calibrate_start.elapsed().max(Duration::from_nanos(1));
        let target = self.measurement_time / self.sample_size as u32;
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed / iters as u32);
        }
    }

    fn report(&self, id: &str) {
        if self.test_mode {
            println!("test bench {id} ... ok (smoke)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let mean: Duration =
            self.samples.iter().sum::<Duration>() / self.samples.len().max(1) as u32;
        let min = sorted.first().copied().unwrap_or_default();
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or_default();
        println!(
            "bench {id}: mean {mean:?} / median {median:?} / min {min:?} ({} samples)",
            self.samples.len()
        );
    }
}

/// Shared measurement settings.
#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
}

/// The benchmark driver.
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            settings: Settings {
                sample_size: 20,
                measurement_time: Duration::from_millis(500),
                test_mode,
            },
        }
    }
}

impl Criterion {
    /// Upstream-compatible no-op (CLI args are handled in `Default`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), settings: self.settings.clone(), _parent: self }
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into_id(), &self.settings, |b| f(b));
        self
    }
}

/// A group of benchmarks sharing settings and a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Accepted for compatibility; warm-up is folded into calibration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_id());
        run_one(&id, &self.settings, |b| f(b));
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_id());
        run_one(&id, &self.settings, |b| f(b, input));
        self
    }

    /// Ends the group (report output is emitted per benchmark).
    pub fn finish(self) {}
}

fn run_one(id: &str, settings: &Settings, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size: settings.sample_size,
        measurement_time: settings.measurement_time,
        test_mode: settings.test_mode,
    };
    f(&mut bencher);
    bencher.report(id);
}

/// Declares a group function running each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
