//! The JSON-shaped value tree every vendored (de)serializer speaks.

use crate::de::{DeError, Deserialize, Deserializer, Error as _};
use crate::ser::{SerError, Serialize, Serializer};

/// A dynamically-typed JSON-like value.
///
/// Objects preserve insertion order (serialized field order follows the
/// struct declaration, like `serde_json` with its default map).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (exact, covers `u64::MAX`).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number (non-finite values serialize as `null`).
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as an ordered key–value list.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as a `u64`, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) => u64::try_from(v).ok(),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) => i64::try_from(v).ok(),
            Value::F64(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Looks up `key` in an object body.
pub fn obj_get<'v>(obj: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Removes and returns `key` from an object body.
pub fn obj_take(obj: &mut Vec<(String, Value)>, key: &str) -> Option<Value> {
    let idx = obj.iter().position(|(k, _)| k == key)?;
    Some(obj.remove(idx).1)
}

/// The serializer producing a [`Value`] tree (infallible in practice).
#[derive(Debug, Clone, Copy, Default)]
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = SerError;

    fn serialize_value(self, value: Value) -> Result<Value, SerError> {
        Ok(value)
    }
}

/// The deserializer reading back from a [`Value`] tree.
#[derive(Debug, Clone)]
pub struct ValueDeserializer {
    value: Value,
}

impl ValueDeserializer {
    /// Wraps a value for deserialization.
    pub fn new(value: Value) -> Self {
        Self { value }
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = DeError;

    fn deserialize_value(self) -> Result<Value, DeError> {
        Ok(self.value)
    }
}

/// Serializes `v` into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Result<Value, SerError> {
    v.serialize(ValueSerializer)
}

/// Deserializes a `T` out of a [`Value`] tree.
pub fn from_value<T>(value: Value) -> Result<T, DeError>
where
    T: for<'de> Deserialize<'de>,
{
    T::deserialize(ValueDeserializer::new(value))
}

/// Convenience: deserialization type-mismatch error.
pub(crate) fn type_error(expected: &str, got: &Value) -> DeError {
    DeError::custom(format!("expected {expected}, found {}", got.kind()))
}
