//! Deserialization half of the vendored serde API.

use crate::value::Value;
use std::fmt::{self, Display};

/// Trait for deserialization errors, as in upstream `serde::de::Error`.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// The concrete error produced by the value-tree deserializer.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

impl Error for DeError {
    fn custom<T: Display>(msg: T) -> Self {
        Self { msg: msg.to_string() }
    }
}

/// A data format that can deserialize values.
///
/// The vendored format surface is a single method yielding the parsed
/// [`Value`] tree; the lifetime/associated-type shape matches upstream so
/// bounds like `fn deserialize<'de, D: Deserializer<'de>>(d: D) ->
/// Result<T, D::Error>` compile unchanged.
pub trait Deserializer<'de>: Sized {
    /// Error produced on failure.
    type Error: Error;

    /// Produces the input as a value tree.
    fn deserialize_value(self) -> Result<Value, Self::Error>;
}

/// A data structure that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}
