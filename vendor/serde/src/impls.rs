//! `Serialize`/`Deserialize` implementations for std types used in-tree.

use crate::de::{DeError, Deserialize, Deserializer, Error as DeErrorTrait};
use crate::ser::{Error as SerErrorTrait, Serialize, Serializer};
use crate::value::{obj_take, type_error, Value, ValueDeserializer};
use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

/// Serializes a nested value with error-type conversion into `S::Error`.
fn ser_nested<T: Serialize + ?Sized, S: Serializer>(v: &T) -> Result<Value, S::Error> {
    crate::value::to_value(v).map_err(S::Error::custom)
}

/// Deserializes a nested value with error-type conversion into `D::Error`.
fn de_nested<'de, T: Deserialize<'de>, D: Deserializer<'de>>(v: Value) -> Result<T, D::Error> {
    T::deserialize(ValueDeserializer::new(v)).map_err(D::Error::custom)
}

// ---------------------------------------------------------------- integers

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::U64(*self as u64))
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.deserialize_value()?;
                let n = v
                    .as_u64()
                    .ok_or_else(|| D::Error::custom(type_error("unsigned integer", &v)))?;
                <$ty>::try_from(n).map_err(|_| {
                    D::Error::custom(format!(
                        "integer {n} out of range for {}",
                        stringify!($ty)
                    ))
                })
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let v = *self as i64;
                if v < 0 {
                    s.serialize_value(Value::I64(v))
                } else {
                    s.serialize_value(Value::U64(v as u64))
                }
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.deserialize_value()?;
                let n = v
                    .as_i64()
                    .ok_or_else(|| D::Error::custom(type_error("integer", &v)))?;
                <$ty>::try_from(n).map_err(|_| {
                    D::Error::custom(format!(
                        "integer {n} out of range for {}",
                        stringify!($ty)
                    ))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

// ------------------------------------------------------------------ floats

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::F64(*self))
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.deserialize_value()?;
        v.as_f64().ok_or_else(|| D::Error::custom(type_error("number", &v)))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::F64(*self as f64))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.deserialize_value()?;
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| D::Error::custom(type_error("number", &v)))
    }
}

// ------------------------------------------------------------ bool, string

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.deserialize_value()?;
        v.as_bool().ok_or_else(|| D::Error::custom(type_error("bool", &v)))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.clone()))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.to_string()))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Str(s) => Ok(s),
            other => Err(D::Error::custom(type_error("string", &other))),
        }
    }
}

// --------------------------------------------------- references and boxes

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(Box::new)
    }
}

// ---------------------------------------------------------------- Option

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            None => s.serialize_value(Value::Null),
            Some(v) => {
                let inner = ser_nested::<T, S>(v)?;
                s.serialize_value(inner)
            }
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Null => Ok(None),
            other => de_nested::<T, D>(other).map(Some),
        }
    }
}

// ------------------------------------------------------- sequences, maps

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut out = Vec::with_capacity(self.len());
        for item in self {
            out.push(ser_nested::<T, S>(item)?);
        }
        s.serialize_value(Value::Array(out))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Array(items) => items.into_iter().map(de_nested::<T, D>).collect(),
            other => Err(D::Error::custom(type_error("array", &other))),
        }
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let items = Vec::<T>::deserialize(d)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| D::Error::custom(format!("expected array of length {N}, found {len}")))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut out = Vec::with_capacity(self.len());
        for (k, v) in self {
            out.push((k.clone(), ser_nested::<V, S>(v)?));
        }
        s.serialize_value(Value::Object(out))
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Object(fields) => fields
                .into_iter()
                .map(|(k, v)| Ok((k, de_nested::<V, D>(v)?)))
                .collect(),
            other => Err(D::Error::custom(type_error("object", &other))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        // Sort keys for deterministic output, as serde_json does with its
        // `preserve_order`-off default (BTreeMap-backed maps).
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        let mut out = Vec::with_capacity(entries.len());
        for (k, v) in entries {
            out.push((k.clone(), ser_nested::<V, S>(v)?));
        }
        s.serialize_value(Value::Object(out))
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for HashMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Object(fields) => fields
                .into_iter()
                .map(|(k, v)| Ok((k, de_nested::<V, D>(v)?)))
                .collect(),
            other => Err(D::Error::custom(type_error("object", &other))),
        }
    }
}

// ----------------------------------------------------------------- tuples

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let out = vec![$(ser_nested::<$name, S>(&self.$idx)?),+];
                s.serialize_value(Value::Array(out))
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                const ARITY: usize = 0 $(+ { let _ = $idx; 1 })+;
                match d.deserialize_value()? {
                    Value::Array(items) if items.len() == ARITY => {
                        let mut it = items.into_iter();
                        Ok(($(de_nested::<$name, D>(it.next().expect("arity checked"))?,)+))
                    }
                    other => Err(D::Error::custom(type_error("array (tuple)", &other))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, E: 3)
}

// --------------------------------------------------------------- Duration

impl Serialize for Duration {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        // Matches upstream serde's encoding: {"secs": u64, "nanos": u32}.
        s.serialize_value(Value::Object(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(self.subsec_nanos() as u64)),
        ]))
    }
}

impl<'de> Deserialize<'de> for Duration {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Object(mut fields) => {
                let secs = obj_take(&mut fields, "secs")
                    .and_then(|v| v.as_u64())
                    .ok_or_else(|| D::Error::custom("Duration missing u64 `secs`"))?;
                let nanos = obj_take(&mut fields, "nanos")
                    .and_then(|v| v.as_u64())
                    .ok_or_else(|| D::Error::custom("Duration missing u32 `nanos`"))?;
                let nanos = u32::try_from(nanos)
                    .map_err(|_| D::Error::custom("Duration `nanos` out of range"))?;
                Ok(Duration::new(secs, nanos))
            }
            other => Err(D::Error::custom(type_error("object (Duration)", &other))),
        }
    }
}

// Keep the unused-import lint quiet if DeError is only named in signatures.
#[allow(unused)]
fn _assert_error_types(e: DeError) -> String {
    e.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{from_value, to_value};

    #[test]
    fn primitives_round_trip() {
        let v = to_value(&42u64).unwrap();
        assert_eq!(from_value::<u64>(v).unwrap(), 42);
        let v = to_value(&-7i32).unwrap();
        assert_eq!(from_value::<i32>(v).unwrap(), -7);
        let v = to_value(&1.5f64).unwrap();
        assert_eq!(from_value::<f64>(v).unwrap(), 1.5);
        let v = to_value(&true).unwrap();
        assert!(from_value::<bool>(v).unwrap());
        let v = to_value("hello").unwrap();
        assert_eq!(from_value::<String>(v).unwrap(), "hello");
    }

    #[test]
    fn usize_max_round_trips_exactly() {
        let v = to_value(&usize::MAX).unwrap();
        assert_eq!(from_value::<usize>(v).unwrap(), usize::MAX);
    }

    #[test]
    fn option_and_vec_round_trip() {
        let data: Vec<Option<f64>> = vec![Some(1.0), None, Some(3.5)];
        let v = to_value(&data).unwrap();
        assert_eq!(from_value::<Vec<Option<f64>>>(v).unwrap(), data);
    }

    #[test]
    fn duration_matches_upstream_shape() {
        let d = Duration::new(3, 250);
        let v = to_value(&d).unwrap();
        assert_eq!(
            v,
            Value::Object(vec![
                ("secs".into(), Value::U64(3)),
                ("nanos".into(), Value::U64(250)),
            ])
        );
        assert_eq!(from_value::<Duration>(v).unwrap(), d);
    }

    #[test]
    fn integer_range_checked() {
        let v = to_value(&300u64).unwrap();
        assert!(from_value::<u8>(v).is_err());
    }

    #[test]
    fn tuple_round_trip() {
        let t = (1u32, "x".to_string(), 2.5f64);
        let v = to_value(&t).unwrap();
        assert_eq!(from_value::<(u32, String, f64)>(v).unwrap(), t);
    }
}
