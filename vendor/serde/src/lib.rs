//! Offline vendored subset of the `serde` API.
//!
//! The sandbox has no crates.io access, so this crate reimplements the
//! slice of serde the workspace uses, on a simplified internal model:
//! every serializer consumes — and every deserializer produces — a
//! [`__private::Value`] tree. The public trait *shapes* match upstream
//! (`Serialize::serialize<S: Serializer>`, `Deserialize<'de>`,
//! `Serializer::Ok/Error`, `de::Error::custom`), so workspace source
//! written against real serde compiles unchanged; the data-format
//! independence of real serde is collapsed to "JSON-shaped values", which
//! is the only format the workspace uses.

pub mod de;
pub mod ser;

mod impls;
mod value;

/// Implementation details shared with `serde_derive` expansions and
/// `serde_json`. Not a stable API.
pub mod __private {
    pub use crate::value::{
        from_value, obj_get, obj_take, to_value, Value, ValueDeserializer, ValueSerializer,
    };
    pub use crate::{de::DeError, ser::SerError};
}

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
// The derive macros share the trait names, exactly like upstream serde's
// `derive` feature (traits live in the type namespace, macros in the
// macro namespace).
pub use serde_derive::{Deserialize, Serialize};
