//! Serialization half of the vendored serde API.

use crate::value::Value;
use std::fmt::{self, Display};

/// Trait for serialization errors, as in upstream `serde::ser::Error`.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// The concrete error produced by the value-tree serializer.
#[derive(Debug, Clone)]
pub struct SerError {
    msg: String,
}

impl Display for SerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for SerError {}

impl Error for SerError {
    fn custom<T: Display>(msg: T) -> Self {
        Self { msg: msg.to_string() }
    }
}

/// A data format that can serialize values.
///
/// Unlike upstream serde's 30-method visitor interface, the vendored
/// format surface is a single method taking the finished [`Value`] tree;
/// the trait's associated-type shape (`Ok`, `Error`) matches upstream so
/// generic bounds like `fn serialize<S: Serializer>(.., s: S) ->
/// Result<S::Ok, S::Error>` compile unchanged.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;

    /// Consumes a fully-built value tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A data structure that can be serialized.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}
