//! Offline vendored subset of `serde_json`.
//!
//! Provides `from_str` / `from_slice` / `to_string` / `to_string_pretty`
//! over the vendored serde's value tree. The text format matches real
//! JSON: full escape handling (including `\uXXXX` surrogate pairs),
//! integer/float distinction, and `null` for non-finite floats, as
//! upstream `serde_json` emits.

mod parse;
mod write;

use serde::__private::{from_value, to_value};
use std::fmt::{self, Display};

/// Error type for JSON (de)serialization.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Self::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Self::new(msg.to_string())
    }
}

/// Result alias matching upstream `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Deserializes `T` from a JSON string.
pub fn from_str<T>(s: &str) -> Result<T>
where
    T: for<'de> serde::Deserialize<'de>,
{
    let value = parse::parse(s)?;
    from_value(value).map_err(|e| Error::new(e.to_string()))
}

/// Deserializes `T` from JSON bytes (must be UTF-8).
pub fn from_slice<T>(bytes: &[u8]) -> Result<T>
where
    T: for<'de> serde::Deserialize<'de>,
{
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let v = to_value(value).map_err(|e| Error::new(e.to_string()))?;
    let mut out = String::new();
    write::write(&mut out, &v, None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let v = to_value(value).map_err(|e| Error::new(e.to_string()))?;
    let mut out = String::new();
    write::write(&mut out, &v, Some(2), 0);
    Ok(out)
}

/// Serializes `value` to a compact JSON byte vector.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::__private::Value;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(from_str::<f64>("2.5e-3").unwrap(), 0.0025);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<String>("\"hi\\n\"").unwrap(), "hi\n");
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>("\"\\u00e9\"").unwrap(), "é");
        // Surrogate pair for U+1F600.
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }

    #[test]
    fn collections_round_trip() {
        let v: Vec<Option<f64>> = vec![Some(1.5), None, Some(-3.0)];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Option<f64>>>(&s).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v: Vec<u32> = vec![1, 2];
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "[\n  1,\n  2\n]");
    }

    #[test]
    fn float_precision_round_trips() {
        let x = 0.1234567890123456789f64;
        let s = to_string(&x).unwrap();
        assert_eq!(from_str::<f64>(&s).unwrap(), x);
    }

    #[test]
    fn nonfinite_serializes_as_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(from_str::<u64>("42 garbage").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2,]").is_err());
        assert!(from_str::<u64>("").is_err());
    }

    #[test]
    fn object_order_preserved() {
        let v = parse::parse("{\"b\": 1, \"a\": 2}").unwrap();
        assert_eq!(
            v,
            Value::Object(vec![
                ("b".into(), Value::U64(1)),
                ("a".into(), Value::U64(2)),
            ])
        );
    }
}
