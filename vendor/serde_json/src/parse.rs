//! Recursive-descent JSON parser producing the vendored serde value tree.

use crate::Error;
use serde::__private::Value;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn expect_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.expect_keyword("null", Value::Null),
            Some(b't') => self.expect_keyword("true", Value::Bool(true)),
            Some(b'f') => self.expect_keyword("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Continue below without the shared pos bump.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require a low surrogate.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c =
                                        0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits (cursor already past `u`).
    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = &self.bytes[self.pos..self.pos + 4];
        let s = std::str::from_utf8(digits).map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII number text");
        if !is_float {
            if negative {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Value::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            // Integer overflow: fall through to f64 like serde_json's
            // arbitrary-precision-off behaviour.
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| self.err("invalid number"))
    }
}
