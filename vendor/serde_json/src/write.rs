//! JSON text writer (compact and pretty) for the vendored value tree.

use serde::__private::Value;
use std::fmt::Write as _;

/// Appends `value` as JSON to `out`. `indent = Some(n)` pretty-prints
/// with `n`-space indentation; `depth` is the current nesting level.
pub fn write(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => write_f64(out, *v),
        Value::Str(s) => write_str(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_str(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        // Matches upstream serde_json: non-finite floats become null.
        out.push_str("null");
        return;
    }
    // Rust's shortest round-trip formatting; ensure a decimal point or
    // exponent survives so the value re-parses as a float-looking token
    // (serde_json emits `1.0` for the float 1).
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
