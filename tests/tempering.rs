//! Parallel-tempering integration tests: the multi-chain search must be
//! bitwise thread-invariant end to end (recommendation *and* telemetry
//! stream), degenerate to the legacy single chain at `replicas = 1`, and
//! key its exchange decisions on logical indices only.

use pipette::configurator::{Pipette, PipetteOptions};
use pipette::mapping::{
    exchange_accepts, Annealer, AnnealerConfig, ParallelTemperingAnnealer, TemperingSchedule,
};
use pipette_cluster::{presets, ClusterTopology};
use pipette_model::{GptConfig, ParallelConfig};
use pipette_obs::analysis::first_divergence;
use pipette_obs::{EventTag, SpanTree, Trace, TraceConfig};
use pipette_sim::Mapping;

fn small_gpt() -> GptConfig {
    GptConfig::new(8, 1024, 16, 2048, 51200)
}

fn tempered_run(threads: usize, config: TraceConfig) -> (Trace, pipette::Recommendation) {
    let cluster = presets::mid_range(2).build(5);
    let gpt = small_gpt();
    let mut options = PipetteOptions::fast_test();
    options.seed = 21;
    options.threads = threads;
    options.replicas = 4;
    options.exchange_interval = 128;
    let mut trace = Trace::new(config);
    let rec = Pipette::new(&cluster, &gpt, 64, options)
        .run_traced(&mut trace)
        .expect("feasible space");
    (trace, rec)
}

#[test]
fn tempering_trajectory_is_bit_identical_across_thread_counts() {
    // Full-resolution tracing (every SA move of every replica plus every
    // exchange decision) is the strongest check: any thread-dependent
    // interleaving would reorder or change lines.
    let (t1, r1) = tempered_run(1, TraceConfig::full());
    for threads in [2usize, 8] {
        let (tn, rn) = tempered_run(threads, TraceConfig::full());
        assert_eq!(r1.config, rn.config, "config diverged at threads={threads}");
        assert_eq!(r1.plan, rn.plan);
        assert_eq!(
            r1.mapping, rn.mapping,
            "mapping diverged at threads={threads}"
        );
        assert_eq!(
            r1.estimated_seconds.to_bits(),
            rn.estimated_seconds.to_bits()
        );
        assert_eq!(r1.tempering, rn.tempering);
        if let Some(d) = first_divergence(&t1.to_jsonl_stripped(), &tn.to_jsonl_stripped()) {
            panic!("trace diverged between threads=1 and threads={threads}\n{d}");
        }
    }
}

#[test]
fn tempered_trace_records_replicas_and_exchanges() {
    let (trace, rec) = tempered_run(2, TraceConfig::full());
    let summary = rec.tempering.expect("tempering ran");
    assert_eq!(summary.replicas, 4);
    assert_eq!(summary.exchange_interval, 128);
    assert!(summary.exchanges_attempted > 0, "ladder never rendezvoused");
    assert_eq!(
        trace.count_tag(EventTag::PtExchange),
        summary.exchanges_attempted,
        "one pt_exchange event per decision"
    );
    // Spans: each annealed candidate contributes one sa_chain span per
    // replica plus one exchange span, all nested under the anneal phase.
    let tree = SpanTree::from_trace(&trace).expect("balanced spans");
    let rollups = tree.rollups();
    let chains = rollups
        .iter()
        .find(|r| r.name == "sa_chain")
        .expect("sa_chain spans");
    assert_eq!(chains.count % 4, 0, "replica chains come in ladder widths");
    let exchange = rollups
        .iter()
        .find(|r| r.name == "exchange")
        .expect("exchange spans");
    assert_eq!(exchange.unit, "rounds");
    assert_eq!(
        exchange.cost as usize, summary.exchanges_attempted,
        "exchange span cost sums the attempted rendezvous"
    );
    // Every replica contributed a per-replica sa_result; the highest
    // replica tag matches the ladder width.
    let jsonl = trace.to_jsonl();
    for replica in 0..4usize {
        assert!(
            jsonl.lines().any(|l| l.contains(r#""kind":"sa_result""#)
                && l.contains(&format!(r#""replica":{replica}"#))),
            "no sa_result for replica {replica}"
        );
    }
    let accepted = jsonl
        .lines()
        .filter(|l| l.contains(r#""kind":"pt_exchange""#) && l.contains(r#""accepted":true"#))
        .count();
    assert_eq!(accepted, summary.exchanges_accepted);
}

#[test]
fn replicas_one_is_bit_identical_to_the_legacy_single_chain() {
    // Through the full configurator: a replicas=1 "tempering" run and the
    // stock single-chain run must be indistinguishable, trace included.
    let cluster = presets::mid_range(2).build(5);
    let gpt = small_gpt();
    let mut legacy_options = PipetteOptions::fast_test();
    legacy_options.seed = 21;
    legacy_options.threads = 2;
    let mut single_options = legacy_options;
    single_options.replicas = 1;
    single_options.exchange_interval = 64;

    let mut legacy_trace = Trace::new(TraceConfig::full());
    let legacy = Pipette::new(&cluster, &gpt, 64, legacy_options)
        .run_traced(&mut legacy_trace)
        .expect("feasible");
    let mut single_trace = Trace::new(TraceConfig::full());
    let single = Pipette::new(&cluster, &gpt, 64, single_options)
        .run_traced(&mut single_trace)
        .expect("feasible");

    assert_eq!(legacy.config, single.config);
    assert_eq!(legacy.mapping, single.mapping);
    assert_eq!(
        legacy.estimated_seconds.to_bits(),
        single.estimated_seconds.to_bits()
    );
    assert_eq!(single.tempering, None, "replicas=1 is not tempering");
    assert_eq!(
        legacy_trace.to_jsonl_stripped(),
        single_trace.to_jsonl_stripped()
    );
}

#[test]
fn replicas_one_annealer_matches_legacy_annealer_directly() {
    let cfg = ParallelConfig::new(4, 2, 2);
    let initial = Mapping::identity(cfg, ClusterTopology::new(4, 4));
    let target: Vec<usize> = (0..16).rev().collect();
    let objective = move |m: &Mapping| {
        m.as_slice()
            .iter()
            .enumerate()
            .map(|(i, g)| (g.0 as f64 - target[i] as f64).abs())
            .sum::<f64>()
    };
    let sa_cfg = AnnealerConfig {
        iterations: 5_000,
        seed: 17,
        ..Default::default()
    };
    let (legacy_map, legacy_cost, legacy_stats) =
        Annealer::new(sa_cfg).anneal(&initial, &objective);
    let pt = ParallelTemperingAnnealer::new(
        sa_cfg,
        TemperingSchedule {
            replicas: 1,
            exchange_interval: 97, // deliberately not a divisor of the budget
            ..Default::default()
        },
    );
    let (pt_map, pt_cost, pt_stats) = pt.anneal_closure(8, &initial, &objective);
    assert_eq!(legacy_map, pt_map);
    assert_eq!(legacy_cost.to_bits(), pt_cost.to_bits());
    let merged = pt_stats.merged();
    assert_eq!(legacy_stats.evaluations, merged.evaluations);
    assert_eq!(legacy_stats.accepted, merged.accepted);
    assert_eq!(legacy_stats.improvements, merged.improvements);
    assert_eq!(legacy_stats.best_cost.to_bits(), merged.best_cost.to_bits());
}

/// Property: the exchange verdict is a deterministic function of
/// (seed, round, pair) and the pair's (temperatures, energies) — nothing
/// else. Permuting when/where the question is asked cannot change it,
/// and translating both energies by a constant cannot either (the
/// Metropolis exponent sees only the gap).
#[test]
fn exchange_decisions_depend_only_on_round_pair_and_energies() {
    let mut verdicts = Vec::new();
    for round in 0..32usize {
        for pair in 0..8usize {
            verdicts.push((
                round,
                pair,
                exchange_accepts(1234, round, pair, 1.0, 2.5, 10.0, 10.3),
            ));
        }
    }
    // Re-query in reverse order (a different "schedule"): same verdicts.
    for &(round, pair, verdict) in verdicts.iter().rev() {
        assert_eq!(
            verdict,
            exchange_accepts(1234, round, pair, 1.0, 2.5, 10.0, 10.3)
        );
        // Energy translation invariance.
        assert_eq!(
            verdict,
            exchange_accepts(1234, round, pair, 1.0, 2.5, -7.0, -6.7)
        );
    }
    // The stream is live in both coordinates: flipping round or pair
    // changes at least some verdicts.
    let base: Vec<bool> = verdicts.iter().map(|v| v.2).collect();
    let shifted: Vec<bool> = (0..32usize)
        .flat_map(|round| {
            (0..8usize)
                .map(move |pair| exchange_accepts(1234, round + 1, pair, 1.0, 2.5, 10.0, 10.3))
        })
        .collect();
    assert_ne!(base, shifted, "round index must enter the stream");
    let accepted = base.iter().filter(|&&b| b).count();
    assert!(accepted > 0 && accepted < base.len(), "stream degenerate");
}
