//! Telemetry integration tests: the structured trace must be bitwise
//! deterministic — independent of thread count and identical across
//! repeated runs — and must cover every phase of Algorithm 1.

use pipette::configurator::{Pipette, PipetteOptions};
use pipette_cluster::presets;
use pipette_model::GptConfig;
use pipette_obs::{Trace, TraceConfig};

fn small_gpt() -> GptConfig {
    GptConfig::new(8, 1024, 16, 2048, 51200)
}

fn traced_run(threads: usize, config: TraceConfig) -> (Trace, pipette::Recommendation) {
    let cluster = presets::mid_range(2).build(5);
    let gpt = small_gpt();
    let mut options = PipetteOptions::fast_test();
    options.seed = 21;
    options.threads = threads;
    let mut trace = Trace::new(config);
    let rec = Pipette::new(&cluster, &gpt, 64, options)
        .run_traced(&mut trace)
        .expect("feasible space");
    (trace, rec)
}

#[test]
fn trace_is_identical_across_thread_counts() {
    // Full-resolution tracing (every SA move) is the strongest check:
    // any thread-dependent interleaving would reorder or change lines.
    let (t1, r1) = traced_run(1, TraceConfig::full());
    let (t8, r8) = traced_run(8, TraceConfig::full());
    assert_eq!(r1.config, r8.config);
    assert_eq!(r1.mapping, r8.mapping);
    assert_eq!(
        r1.estimated_seconds.to_bits(),
        r8.estimated_seconds.to_bits()
    );
    let a = t1.to_jsonl_stripped();
    let b = t8.to_jsonl_stripped();
    if a != b {
        for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
            assert_eq!(la, lb, "first divergence at line {i}");
        }
        assert_eq!(a.lines().count(), b.lines().count());
    }
}

#[test]
fn trace_is_identical_across_repeated_runs() {
    let (a, _) = traced_run(4, TraceConfig::default());
    let (b, _) = traced_run(4, TraceConfig::default());
    assert_eq!(a.to_jsonl(), b.to_jsonl());
}

#[test]
fn wall_clock_is_the_only_difference_when_enabled() {
    let timed = TraceConfig {
        wall_clock: true,
        ..TraceConfig::default()
    };
    let (with_wall, _) = traced_run(2, timed);
    let (without, _) = traced_run(2, TraceConfig::default());
    // Stripping the wall-clock annotation recovers the logical trace.
    assert_eq!(with_wall.to_jsonl_stripped(), without.to_jsonl());
    assert!(with_wall.to_jsonl().contains("\"wall_ms\""));
    assert!(!without.to_jsonl().contains("\"wall_ms\""));
}

#[test]
fn trace_covers_every_phase_of_algorithm_1() {
    let (trace, rec) = traced_run(2, TraceConfig::full());
    for kind in [
        "run_start",
        "mem_train",
        "mem_loss",
        "mem_screen",
        "mem_headroom",
        "latency_estimate",
        "sa_move",
        "sa_summary",
        "sa_result",
        "recommendation",
        "alternative",
    ] {
        assert!(trace.count_kind(kind) > 0, "no {kind} events recorded");
    }
    assert_eq!(trace.count_kind("run_start"), 1);
    assert_eq!(trace.count_kind("recommendation"), 1);
    assert_eq!(
        trace.count_kind("alternative"),
        rec.alternatives.len(),
        "one alternative event per runner-up"
    );
    // The trace opens with the run header.
    let jsonl = trace.to_jsonl();
    let first = jsonl.lines().next().expect("non-empty trace");
    assert!(
        first.starts_with("{\"seq\":0,\"kind\":\"run_start\""),
        "{first}"
    );
}

#[test]
fn tracing_does_not_change_the_recommendation() {
    let cluster = presets::mid_range(2).build(5);
    let gpt = small_gpt();
    let mut options = PipetteOptions::fast_test();
    options.seed = 21;
    let plain = Pipette::new(&cluster, &gpt, 64, options)
        .run()
        .expect("feasible");
    let (_, traced) = traced_run(pipette::parallel::default_threads(), TraceConfig::full());
    assert_eq!(plain.config, traced.config);
    assert_eq!(plain.plan, traced.plan);
    assert_eq!(plain.mapping, traced.mapping);
    assert_eq!(
        plain.estimated_seconds.to_bits(),
        traced.estimated_seconds.to_bits()
    );
}
