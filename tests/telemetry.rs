//! Telemetry integration tests: the structured trace must be bitwise
//! deterministic — independent of thread count and identical across
//! repeated runs — and must cover every phase of Algorithm 1, spans
//! included.

use pipette::configurator::{Pipette, PipetteOptions};
use pipette_cluster::presets;
use pipette_model::GptConfig;
use pipette_obs::analysis::first_divergence;
use pipette_obs::{EventTag, SpanTree, Trace, TraceConfig};

fn small_gpt() -> GptConfig {
    GptConfig::new(8, 1024, 16, 2048, 51200)
}

fn traced_run(threads: usize, config: TraceConfig) -> (Trace, pipette::Recommendation) {
    let cluster = presets::mid_range(2).build(5);
    let gpt = small_gpt();
    let mut options = PipetteOptions::fast_test();
    options.seed = 21;
    options.threads = threads;
    let mut trace = Trace::new(config);
    let rec = Pipette::new(&cluster, &gpt, 64, options)
        .run_traced(&mut trace)
        .expect("feasible space");
    (trace, rec)
}

#[test]
fn trace_is_identical_across_thread_counts() {
    // Full-resolution tracing (every SA move) is the strongest check:
    // any thread-dependent interleaving would reorder or change lines.
    let (t1, r1) = traced_run(1, TraceConfig::full());
    let (t8, r8) = traced_run(8, TraceConfig::full());
    assert_eq!(r1.config, r8.config);
    assert_eq!(r1.mapping, r8.mapping);
    assert_eq!(
        r1.estimated_seconds.to_bits(),
        r8.estimated_seconds.to_bits()
    );
    if let Some(d) = first_divergence(&t1.to_jsonl_stripped(), &t8.to_jsonl_stripped()) {
        panic!("trace diverged between threads=1 and threads=8\n{d}");
    }
}

#[test]
fn trace_is_identical_across_repeated_runs() {
    let (a, _) = traced_run(4, TraceConfig::default());
    let (b, _) = traced_run(4, TraceConfig::default());
    if let Some(d) = first_divergence(&a.to_jsonl(), &b.to_jsonl()) {
        panic!("trace diverged between repeated identical runs\n{d}");
    }
}

#[test]
fn wall_clock_is_the_only_difference_when_enabled() {
    let timed = TraceConfig {
        wall_clock: true,
        ..TraceConfig::default()
    };
    let (with_wall, _) = traced_run(2, timed);
    let (without, _) = traced_run(2, TraceConfig::default());
    // Stripping the wall-clock annotation recovers the logical trace.
    assert_eq!(with_wall.to_jsonl_stripped(), without.to_jsonl());
    assert!(with_wall.to_jsonl().contains("\"wall_ms\""));
    assert!(!without.to_jsonl().contains("\"wall_ms\""));
}

#[test]
fn trace_covers_every_phase_of_algorithm_1() {
    let (trace, rec) = traced_run(2, TraceConfig::full());
    for tag in [
        EventTag::RunStart,
        EventTag::MemTrain,
        EventTag::MemLoss,
        EventTag::MemScreen,
        EventTag::MemHeadroom,
        EventTag::LatencyEstimate,
        EventTag::SaMove,
        EventTag::SaSummary,
        EventTag::SaResult,
        EventTag::Recommendation,
        EventTag::Alternative,
        EventTag::SpanOpen,
        EventTag::SpanClose,
        EventTag::Counter,
        EventTag::Histogram,
    ] {
        assert!(
            trace.count_tag(tag) > 0,
            "no {} events recorded",
            tag.name()
        );
    }
    assert_eq!(trace.count_tag(EventTag::RunStart), 1);
    assert_eq!(trace.count_tag(EventTag::Recommendation), 1);
    assert_eq!(
        trace.count_tag(EventTag::Alternative),
        rec.alternatives.len(),
        "one alternative event per runner-up"
    );
    // The trace opens with the run header.
    let jsonl = trace.to_jsonl();
    let first = jsonl.lines().next().expect("non-empty trace");
    assert!(
        first.starts_with("{\"seq\":0,\"kind\":\"run_start\""),
        "{first}"
    );
}

#[test]
fn spans_are_balanced_and_cover_every_phase() {
    let (trace, rec) = traced_run(2, TraceConfig::full());
    assert_eq!(trace.open_span_count(), 0, "run left spans open");
    let tree = SpanTree::from_trace(&trace).expect("span stream is balanced");
    let rollups = tree.rollups();
    for name in [
        "profile",
        "mem_train",
        "mem_screen",
        "estimates",
        "anneal",
        "sa_chain",
        "finalize",
    ] {
        assert!(
            rollups.iter().any(|r| r.name == name),
            "no '{name}' span recorded"
        );
    }
    // sa_chain spans nest under the anneal phase and their summed cost is
    // the anneal span's cost (total objective evaluations).
    let anneal = rollups.iter().find(|r| r.name == "anneal").expect("anneal");
    let chains = rollups
        .iter()
        .find(|r| r.name == "sa_chain")
        .expect("sa_chain");
    assert_eq!(anneal.count, 1);
    assert_eq!(anneal.unit, "evals");
    assert_eq!(
        chains.cost, anneal.cost,
        "chain evals must sum to the phase"
    );
    let anneal_idx = tree
        .nodes()
        .iter()
        .position(|n| n.name == "anneal")
        .expect("anneal node");
    assert!(
        tree.nodes()
            .iter()
            .filter(|n| n.name == "sa_chain")
            .all(|n| n.parent == Some(anneal_idx)),
        "every sa_chain must nest under anneal"
    );
    // The estimates span's cost is the number of screened-in candidates.
    let estimates = rollups
        .iter()
        .find(|r| r.name == "estimates")
        .expect("estimates");
    assert_eq!(estimates.unit, "candidates");
    assert_eq!(estimates.cost, (rec.examined - rec.memory_rejected) as u64);
}

#[test]
fn tracing_does_not_change_the_recommendation() {
    let cluster = presets::mid_range(2).build(5);
    let gpt = small_gpt();
    let mut options = PipetteOptions::fast_test();
    options.seed = 21;
    let plain = Pipette::new(&cluster, &gpt, 64, options)
        .run()
        .expect("feasible");
    let (_, traced) = traced_run(pipette::parallel::default_threads(), TraceConfig::full());
    assert_eq!(plain.config, traced.config);
    assert_eq!(plain.plan, traced.plan);
    assert_eq!(plain.mapping, traced.mapping);
    assert_eq!(
        plain.estimated_seconds.to_bits(),
        traced.estimated_seconds.to_bits()
    );
}
