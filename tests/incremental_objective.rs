//! Integration guarantees of the incremental SA objective and the
//! parallel configurator:
//!
//! 1. every `propose` matches a from-scratch batch estimate on the moved
//!    mapping (property-tested over random move/commit/rollback streams);
//! 2. annealing through the incremental objective returns the *same
//!    mapping and cost, bit for bit*, as the legacy full-evaluation
//!    closure for a given seed — the optimization changes wall-clock,
//!    never results;
//! 3. `Pipette::run` is thread-count-invariant on all deterministic
//!    fields.

use pipette::configurator::{Pipette, PipetteOptions};
use pipette::latency::PipetteLatencyModel;
use pipette::mapping::{
    Annealer, AnnealerConfig, DenseDpMemo, DpMemo, IncrementalObjective, MemoBackend, Move,
    Objective, ReferenceDpMemo,
};
use pipette::parallel::{ordered_map, ordered_map_scratch};
use pipette_cluster::presets;
use pipette_model::{GptConfig, MicrobatchPlan, ParallelConfig};
use pipette_sim::{ComputeProfiler, Mapping};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn setup() -> (pipette_cluster::Cluster, GptConfig) {
    (
        presets::mid_range(2).build(17),
        GptConfig::new(8, 1024, 16, 2048, 51200),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random walks of moves with arbitrary accept/reject interleavings:
    /// the incremental cost must track the batch estimator on every step.
    #[test]
    fn incremental_cost_tracks_batch_estimator(
        seed in 0u64..1_000,
        accepts in proptest::collection::vec(proptest::bool::ANY, 30),
        cfg_idx in 0usize..3,
    ) {
        let (cluster, gpt) = setup();
        let cfg = [
            ParallelConfig::new(4, 2, 2),
            ParallelConfig::new(2, 2, 4),
            ParallelConfig::new(8, 2, 1),
        ][cfg_idx];
        let plan = MicrobatchPlan::new(64, 2).unwrap();
        let gpu = cluster.gpu().clone();
        let compute =
            ComputeProfiler::default().profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 9);
        let (profiled, _) = cluster.profiler().profile(cluster.bandwidth(), 9);
        let model = PipetteLatencyModel::new(&profiled, &gpt);
        let mut mapping = Mapping::identity(cfg, *cluster.topology());
        let mut obj =
            IncrementalObjective::from_model(&model, &gpt, plan, &compute, &mapping);
        let block = cfg.tp.max(1);
        let num_blocks = cfg.num_workers() / block;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for &accept in &accepts {
            let mv = Move::random(&mut rng, num_blocks);
            mv.apply(mapping.as_mut_slice(), block);
            let fast = obj.propose(mv, &mapping);
            let slow = model.estimate(cfg, &mapping, plan, &compute);
            prop_assert!(
                (fast - slow).abs() <= 1e-9,
                "proposal diverged: {fast} vs {slow} for {mv:?}"
            );
            prop_assert_eq!(fast.to_bits(), slow.to_bits());
            if accept {
                obj.commit();
            } else {
                obj.rollback();
                mv.inverse().apply(mapping.as_mut_slice(), block);
            }
            let settled = model.estimate(cfg, &mapping, plan, &compute);
            prop_assert_eq!(obj.cost().to_bits(), settled.to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The open-addressed and dense memos are bit-identical to the
    /// retained `BTreeMap` reference path over random move/commit/rollback
    /// streams — including at tiny open capacities where the
    /// seeded-eviction policy fires constantly. Memo values are pure in
    /// their keys, so eviction (or a perfect-hash slot layout) can only
    /// turn a hit into an identical recompute; this test is the executable
    /// form of that argument.
    #[test]
    fn open_memo_bit_matches_reference_memo(
        seed in 0u64..500,
        accepts in proptest::collection::vec(proptest::bool::ANY, 40),
        capacity_log2 in 4u32..10,
        cfg_idx in 0usize..3,
    ) {
        let (cluster, gpt) = setup();
        let cfg = [
            ParallelConfig::new(4, 2, 2),
            ParallelConfig::new(2, 2, 4),
            ParallelConfig::new(2, 4, 2),
        ][cfg_idx];
        let plan = MicrobatchPlan::new(64, 2).unwrap();
        let gpu = cluster.gpu().clone();
        let compute =
            ComputeProfiler::default().profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 9);
        let (profiled, _) = cluster.profiler().profile(cluster.bandwidth(), 9);
        let mut mapping = Mapping::identity(cfg, *cluster.topology());
        let mut open = IncrementalObjective::with_memo_backend(
            profiled.matrix(), &gpt, plan, &compute, &mapping,
            MemoBackend::Open(DpMemo::new(1 << capacity_log2, seed)),
        );
        let mut reference = IncrementalObjective::with_memo_backend(
            profiled.matrix(), &gpt, plan, &compute, &mapping,
            MemoBackend::Reference(ReferenceDpMemo::new()),
        );
        let block = cfg.tp.max(1);
        let num_blocks = cfg.num_workers() / block;
        let mut dense = IncrementalObjective::with_memo_backend(
            profiled.matrix(), &gpt, plan, &compute, &mapping,
            MemoBackend::Dense(
                DenseDpMemo::try_new(cfg.pp, num_blocks, cfg.dp)
                    .expect("test configs fit the dense key space"),
            ),
        );
        prop_assert_eq!(open.cost().to_bits(), reference.cost().to_bits());
        prop_assert_eq!(dense.cost().to_bits(), reference.cost().to_bits());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for &accept in &accepts {
            let mv = Move::random(&mut rng, num_blocks);
            mv.apply(mapping.as_mut_slice(), block);
            let a = open.propose(mv, &mapping);
            let b = reference.propose(mv, &mapping);
            let c = dense.propose(mv, &mapping);
            prop_assert_eq!(
                a.to_bits(), b.to_bits(),
                "memo backends diverged on {:?}: {} vs {}", mv, a, b
            );
            prop_assert_eq!(
                c.to_bits(), b.to_bits(),
                "dense memo diverged on {:?}: {} vs {}", mv, c, b
            );
            if accept {
                open.commit();
                reference.commit();
                dense.commit();
            } else {
                open.rollback();
                reference.rollback();
                dense.rollback();
                mv.inverse().apply(mapping.as_mut_slice(), block);
            }
            prop_assert_eq!(open.cost().to_bits(), reference.cost().to_bits());
            prop_assert_eq!(dense.cost().to_bits(), reference.cost().to_bits());
        }
        // The tiny capacities above must actually exercise eviction for
        // this test to mean anything; the default capacity need not.
        if capacity_log2 == 4 {
            let stats = open.memo_stats().expect("open backend keeps stats");
            prop_assert!(stats.hits + stats.misses > 0);
        }
    }
}

/// The candidate ring (`ordered_map_scratch`) is bit-identical to the
/// plain `ordered_map` path at every thread count: scratch reuse must be
/// invisible in the results, because each call fully overwrites the
/// mapping buffer it inherits from whatever item previously ran on that
/// worker.
#[test]
fn candidate_ring_is_thread_count_bit_identical() {
    let (cluster, gpt) = setup();
    let plan = MicrobatchPlan::new(64, 2).unwrap();
    let gpu = cluster.gpu().clone();
    let (profiled, _) = cluster.profiler().profile(cluster.bandwidth(), 9);
    let model = PipetteLatencyModel::new(&profiled, &gpt);
    let topo = *cluster.topology();
    let configs = [
        ParallelConfig::new(4, 2, 2),
        ParallelConfig::new(2, 2, 4),
        ParallelConfig::new(2, 4, 2),
        ParallelConfig::new(8, 2, 1),
        ParallelConfig::new(4, 4, 1),
        ParallelConfig::new(1, 2, 8),
    ];
    let computes: Vec<_> = configs
        .iter()
        .map(|&cfg| {
            ComputeProfiler::default().profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 9)
        })
        .collect();
    let work: Vec<usize> = (0..configs.len()).collect();

    // Reference: a fresh Mapping per item, no scratch.
    let baseline: Vec<u64> = ordered_map(1, &work, |_, &i| {
        let m = Mapping::identity(configs[i], topo);
        model.estimate(configs[i], &m, plan, &computes[i]).to_bits()
    });

    for threads in [1, 2, 3, 8] {
        let ringed: Vec<u64> = ordered_map_scratch(
            threads,
            &work,
            || None::<Mapping>,
            |ring, _, &i| {
                let m = ring.get_or_insert_with(|| Mapping::identity(configs[i], topo));
                m.set_identity(configs[i], topo);
                model
                    .estimate(configs[i], &*m, plan, &computes[i])
                    .to_bits()
            },
        );
        assert_eq!(baseline, ringed, "threads = {threads}");
    }
}

/// The tentpole's safety property: swapping the full re-evaluation for the
/// incremental objective changes *nothing* about the search trajectory.
#[test]
fn incremental_anneal_is_bit_identical_to_closure_anneal() {
    let (cluster, gpt) = setup();
    for (cfg, sa_seed) in [
        (ParallelConfig::new(4, 2, 2), 3u64),
        (ParallelConfig::new(2, 4, 2), 4),
        (ParallelConfig::new(2, 2, 4), 5),
    ] {
        let plan = MicrobatchPlan::new(64, 2).unwrap();
        let gpu = cluster.gpu().clone();
        let compute =
            ComputeProfiler::default().profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 9);
        let (profiled, _) = cluster.profiler().profile(cluster.bandwidth(), 9);
        let model = PipetteLatencyModel::new(&profiled, &gpt);
        let initial = Mapping::identity(cfg, *cluster.topology());
        let sa = Annealer::new(AnnealerConfig {
            iterations: 2_000,
            seed: sa_seed,
            ..Default::default()
        });

        let (legacy_map, legacy_cost, legacy_stats) =
            sa.anneal(&initial, |m| model.estimate(cfg, m, plan, &compute));
        let mut obj = IncrementalObjective::from_model(&model, &gpt, plan, &compute, &initial);
        let (inc_map, inc_cost, inc_stats) = sa.anneal_with(&initial, &mut obj);

        assert_eq!(legacy_map, inc_map, "mappings diverged for {cfg:?}");
        assert_eq!(legacy_cost.to_bits(), inc_cost.to_bits());
        assert_eq!(legacy_stats.evaluations, inc_stats.evaluations);
        assert_eq!(legacy_stats.accepted, inc_stats.accepted);
        assert_eq!(legacy_stats.improvements, inc_stats.improvements);
        assert_eq!(
            legacy_stats.initial_cost.to_bits(),
            inc_stats.initial_cost.to_bits()
        );
        assert!(
            inc_stats.accepted > 0,
            "trivial run proves nothing for {cfg:?}"
        );
    }
}

/// Thread-count invariance of the full configurator: the worker pool must
/// be invisible in the recommendation.
#[test]
fn configurator_result_is_thread_count_invariant() {
    let (cluster, gpt) = setup();
    let mut opts = PipetteOptions::fast_test();
    opts.seed = 11;
    // Train the estimator once: memory-estimator training is deliberately
    // outside the parallel region, and reusing it keeps this test fast.
    let (estimator, _, _) = Pipette::new(&cluster, &gpt, 64, opts).train_memory_estimator();

    let run_with = |threads: usize| {
        let mut o = opts;
        o.threads = threads;
        Pipette::new(&cluster, &gpt, 64, o)
            .with_memory_estimator(estimator.clone())
            .run()
            .expect("feasible space")
    };

    let sequential = run_with(1);
    for threads in [2, 4, 8] {
        let parallel = run_with(threads);
        assert_eq!(sequential.config, parallel.config, "threads = {threads}");
        assert_eq!(sequential.plan, parallel.plan);
        assert_eq!(sequential.mapping, parallel.mapping);
        assert_eq!(
            sequential.estimated_seconds.to_bits(),
            parallel.estimated_seconds.to_bits()
        );
        assert_eq!(sequential.examined, parallel.examined);
        assert_eq!(sequential.memory_rejected, parallel.memory_rejected);
        assert_eq!(sequential.alternatives, parallel.alternatives);
        assert_eq!(
            sequential.anneal_stats.map(|s| s.best_cost.to_bits()),
            parallel.anneal_stats.map(|s| s.best_cost.to_bits())
        );
    }
}

/// The alternatives list respects the `top_n` cap and stays ranked.
#[test]
fn alternatives_are_capped_at_top_n() {
    let (cluster, gpt) = setup();
    let mut opts = PipetteOptions::fast_test();
    opts.seed = 11;
    let (estimator, _, _) = Pipette::new(&cluster, &gpt, 64, opts).train_memory_estimator();

    let rec = Pipette::new(&cluster, &gpt, 64, opts)
        .with_memory_estimator(estimator.clone())
        .run()
        .unwrap();
    assert!(rec.alternatives.len() <= opts.top_n);

    let mut tight = opts;
    tight.top_n = 2;
    let rec2 = Pipette::new(&cluster, &gpt, 64, tight)
        .with_memory_estimator(estimator)
        .run()
        .unwrap();
    assert!(rec2.alternatives.len() <= 2);
    // Same search, shorter list: the cap must truncate, not re-rank.
    assert_eq!(
        rec.alternatives[..rec2.alternatives.len()],
        rec2.alternatives[..]
    );
}
