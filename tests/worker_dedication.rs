//! Integration tests of fine-grained worker dedication: the simulated
//! annealer's improvements in the *estimator* must transfer to the
//! *simulator* (otherwise SA optimizes a fiction), and the move set must
//! preserve mapping invariants under real workloads.

use pipette::latency::PipetteLatencyModel;
use pipette::mapping::{Annealer, AnnealerConfig};
use pipette_cluster::presets;
use pipette_model::{GptConfig, MicrobatchPlan, ParallelConfig};
use pipette_sim::{ComputeProfiler, IterationSim, Mapping};

struct Bench {
    cluster: pipette_cluster::Cluster,
    gpt: GptConfig,
}

impl Bench {
    fn new(nodes: usize, seed: u64) -> Self {
        Self {
            cluster: presets::mid_range(nodes).build(seed),
            gpt: GptConfig::gpt_1_1b(),
        }
    }

    fn anneal(
        &self,
        cfg: ParallelConfig,
        plan: MicrobatchPlan,
        iterations: usize,
        seed: u64,
    ) -> (Mapping, Mapping, f64, f64) {
        let (profiled, _) = self
            .cluster
            .profiler()
            .profile(self.cluster.bandwidth(), seed);
        let gpu = self.cluster.gpu().clone();
        let compute = ComputeProfiler::default().profile(
            self.cluster.bandwidth(),
            &gpu,
            &self.gpt,
            cfg,
            plan,
            seed,
        );
        let model = PipetteLatencyModel::new(&profiled, &self.gpt);
        let identity = Mapping::identity(cfg, *self.cluster.topology());
        let annealer = Annealer::new(AnnealerConfig {
            iterations,
            seed,
            ..Default::default()
        });
        let (best, best_cost, stats) =
            annealer.anneal(&identity, |m| model.estimate(cfg, m, plan, &compute));
        assert!(best_cost <= stats.initial_cost);
        (identity, best, stats.initial_cost, best_cost)
    }

    fn simulate(&self, cfg: ParallelConfig, plan: MicrobatchPlan, mapping: &Mapping) -> f64 {
        let gpu = self.cluster.gpu().clone();
        IterationSim::new(self.cluster.bandwidth(), &gpu, &self.gpt)
            .simulate(cfg, mapping, plan)
            .total_seconds
    }
}

#[test]
fn estimator_gains_transfer_to_the_simulator() {
    // The §IV claim, end to end: annealing on the estimator makes the
    // *simulated* iteration faster. Averaged across configurations to
    // be robust to individual noise.
    let bench = Bench::new(8, 41);
    let cases = [
        (
            ParallelConfig::new(2, 8, 4),
            MicrobatchPlan::new(64, 2).unwrap(),
        ),
        (
            ParallelConfig::new(2, 4, 8),
            MicrobatchPlan::new(32, 1).unwrap(),
        ),
        (
            ParallelConfig::new(4, 8, 2),
            MicrobatchPlan::new(128, 2).unwrap(),
        ),
    ];
    let mut est_gain = 0.0;
    let mut sim_gain = 0.0;
    for (cfg, plan) in cases {
        let (identity, best, est_id, est_best) = bench.anneal(cfg, plan, 15_000, 5);
        let t_id = bench.simulate(cfg, plan, &identity);
        let t_best = bench.simulate(cfg, plan, &best);
        est_gain += 1.0 - est_best / est_id;
        sim_gain += 1.0 - t_best / t_id;
    }
    est_gain /= cases.len() as f64;
    sim_gain /= cases.len() as f64;
    assert!(
        est_gain > 0.01,
        "annealer should find estimator gains: {est_gain:.4}"
    );
    assert!(
        sim_gain > est_gain * 0.3,
        "estimator gains ({est_gain:.4}) must mostly transfer to the simulator ({sim_gain:.4})"
    );
}

#[test]
fn annealed_mappings_preserve_tensor_group_locality() {
    // Block moves must keep each tensor group inside one node, so TP
    // all-reduces stay on NVLink.
    let bench = Bench::new(4, 9);
    let cfg = ParallelConfig::new(2, 4, 4);
    let plan = MicrobatchPlan::new(32, 2).unwrap();
    let (_, best, _, _) = bench.anneal(cfg, plan, 8_000, 3);
    assert!(best.is_permutation());
    let topo = bench.cluster.topology();
    for stage in 0..cfg.pp {
        for data in 0..cfg.dp {
            let group = best.tensor_group(stage, data);
            let node = topo.node_of(group[0]);
            assert!(
                group.iter().all(|&g| topo.node_of(g) == node),
                "tensor group ({stage},{data}) split across nodes: {group:?}"
            );
        }
    }
}

#[test]
fn dedication_gains_grow_with_cluster_size() {
    // Fig. 8's observation: heterogeneity "appears less" on smaller
    // clusters, so dedication gains shrink. Compare relative estimator
    // gains at 2 vs 8 nodes (sim-transfer is tested separately).
    let small = Bench::new(2, 23);
    let large = Bench::new(8, 23);
    let plan_small = MicrobatchPlan::new(32, 2).unwrap();
    let plan_large = MicrobatchPlan::new(32, 2).unwrap();
    let (_, _, id_s, best_s) = small.anneal(ParallelConfig::new(2, 8, 1), plan_small, 10_000, 3);
    let (_, _, id_l, best_l) = large.anneal(ParallelConfig::new(2, 8, 4), plan_large, 10_000, 3);
    let gain_small = 1.0 - best_s / id_s;
    let gain_large = 1.0 - best_l / id_l;
    assert!(
        gain_large >= gain_small,
        "more nodes, more heterogeneity to exploit: {gain_large:.4} vs {gain_small:.4}"
    );
}

#[test]
fn reverse_move_earns_its_place() {
    // The paper motivates the `reverse` move by near-symmetric link
    // bandwidths. With the same budget, the full move set must do at
    // least as well as migration+swap alone on a pipeline-heavy config.
    let bench = Bench::new(8, 51);
    let cfg = ParallelConfig::new(8, 8, 1);
    let plan = MicrobatchPlan::new(256, 1).unwrap();
    let (profiled, _) = bench
        .cluster
        .profiler()
        .profile(bench.cluster.bandwidth(), 3);
    let gpu = bench.cluster.gpu().clone();
    let compute = ComputeProfiler::default().profile(
        bench.cluster.bandwidth(),
        &gpu,
        &bench.gpt,
        cfg,
        plan,
        3,
    );
    let model = PipetteLatencyModel::new(&profiled, &bench.gpt);
    let identity = Mapping::identity(cfg, *bench.cluster.topology());
    let objective = |m: &Mapping| model.estimate(cfg, m, plan, &compute);

    let mut costs = Vec::new();
    for enable_reverse in [false, true] {
        let mut best = f64::INFINITY;
        for seed in 0..3u64 {
            let sa = Annealer::new(AnnealerConfig {
                iterations: 6_000,
                seed,
                enable_reverse,
                ..Default::default()
            });
            let (_, cost, _) = sa.anneal(&identity, objective);
            best = best.min(cost);
        }
        costs.push(best);
    }
    assert!(
        costs[1] <= costs[0] * 1.01,
        "full move set ({:.4}) should not lose to migration+swap ({:.4})",
        costs[1],
        costs[0]
    );
}

#[test]
fn dedication_helps_even_from_an_adversarial_start() {
    // Start from a deliberately bad mapping (pipeline zig-zagged across
    // the cluster) and check SA recovers most of the loss.
    let bench = Bench::new(4, 33);
    let cfg = ParallelConfig::new(4, 8, 1);
    let plan = MicrobatchPlan::new(64, 1).unwrap();
    let topo = bench.cluster.topology();

    // Adversarial: stages hop 0 → 2 → 1 → 3.
    let mut assign = Vec::new();
    for node in [0usize, 2, 1, 3] {
        for r in 0..8 {
            assign.push(topo.gpu(node, r));
        }
    }
    let bad = Mapping::from_assignment(cfg, assign);
    let t_bad = bench.simulate(cfg, plan, &bad);

    let (profiled, _) = bench
        .cluster
        .profiler()
        .profile(bench.cluster.bandwidth(), 3);
    let gpu = bench.cluster.gpu().clone();
    let compute = ComputeProfiler::default().profile(
        bench.cluster.bandwidth(),
        &gpu,
        &bench.gpt,
        cfg,
        plan,
        3,
    );
    let model = PipetteLatencyModel::new(&profiled, &bench.gpt);
    let sa = Annealer::new(AnnealerConfig {
        iterations: 10_000,
        seed: 1,
        ..Default::default()
    });
    let (fixed, _, _) = sa.anneal(&bad, |m| model.estimate(cfg, m, plan, &compute));
    let t_fixed = bench.simulate(cfg, plan, &fixed);
    assert!(
        t_fixed <= t_bad * 1.001,
        "SA must not leave an adversarial start worse: {t_fixed:.3} vs {t_bad:.3}"
    );
}
