//! Cross-crate property tests: invariants that must hold for *any* valid
//! configuration, batch shape, and mapping — the relationships the
//! configurator's correctness rests on.

use pipette::latency::PipetteLatencyModel;
use pipette_cluster::{presets, Cluster, ProfiledBandwidth};
use pipette_model::{BatchConfig, GptConfig, MicrobatchPlan, ParallelConfig};
use pipette_sim::{
    ActivationMode, ClusterRun, CommModel, ComputeProfiler, IterationSim, Mapping, MemorySim,
    TrainingOptions,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn cluster() -> Cluster {
    presets::mid_range(2).build(99)
}

fn small_gpt() -> GptConfig {
    GptConfig::new(8, 1024, 16, 2048, 51200)
}

/// Strategy: a valid `(cfg, plan)` for a 16-GPU cluster.
fn config_strategy() -> impl Strategy<Value = (ParallelConfig, MicrobatchPlan)> {
    let configs: Vec<ParallelConfig> = ParallelConfig::enumerate(16, 8, 8);
    (0..configs.len(), 0usize..3).prop_map(move |(ci, mi)| {
        let cfg = configs[ci];
        let mini = BatchConfig::new(64)
            .minibatch(cfg.dp)
            .expect("64 divisible");
        let plans = MicrobatchPlan::enumerate(mini, 4);
        let plan = plans[mi.min(plans.len() - 1)];
        (cfg, plan)
    })
}

/// A random block-respecting mapping for `cfg`.
fn random_mapping(cfg: ParallelConfig, cluster: &Cluster, seed: u64) -> Mapping {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut mapping = Mapping::identity(cfg, *cluster.topology());
    let block = cfg.tp;
    let blocks = mapping.as_slice().len() / block;
    for i in (1..blocks).rev() {
        let j = rng.gen_range(0..=i);
        if i != j {
            pipette::mapping::Move::Swap { a: i, b: j }.apply(mapping.as_mut_slice(), block);
        }
    }
    mapping
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The simulated iteration can never beat its busiest stage's work.
    #[test]
    fn simulation_respects_busy_lower_bound((cfg, plan) in config_strategy(), seed in 0u64..50) {
        let cluster = cluster();
        let gpt = small_gpt();
        let gpu = cluster.gpu().clone();
        let mapping = random_mapping(cfg, &cluster, seed);
        let report = IterationSim::new(cluster.bandwidth(), &gpu, &gpt)
            .simulate(cfg, &mapping, plan);
        prop_assert!(report.total_seconds >= report.critical_busy_seconds - 1e-12);
        prop_assert!(report.pipeline_seconds <= report.total_seconds);
        prop_assert!(report.dp_exposed_seconds >= -1e-12);
    }

    /// Estimator and simulator stay within a bounded band for any mapping.
    #[test]
    fn estimator_tracks_simulator_for_any_mapping((cfg, plan) in config_strategy(), seed in 0u64..50) {
        let cluster = cluster();
        let gpt = small_gpt();
        let gpu = cluster.gpu().clone();
        let mapping = random_mapping(cfg, &cluster, seed);
        let profiled = ProfiledBandwidth::exact(cluster.bandwidth().clone());
        let compute = ComputeProfiler::new(0.0)
            .profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 1);
        let est = PipetteLatencyModel::new(&profiled, &gpt)
            .estimate(cfg, &mapping, plan, &compute);
        let truth = IterationSim::new(cluster.bandwidth(), &gpu, &gpt)
            .simulate(cfg, &mapping, plan)
            .total_seconds;
        let err = (est - truth).abs() / truth;
        prop_assert!(err < 0.25, "{cfg} micro={} err {err:.3}", plan.micro_batch);
    }

    /// Peak memory is monotone in the microbatch size.
    #[test]
    fn memory_monotone_in_microbatch((cfg, _) in config_strategy(), seed in 0u64..10) {
        let gpt = small_gpt();
        let truth = MemorySim::new(seed);
        let mini = BatchConfig::new(64).minibatch(cfg.dp).unwrap();
        let mut last = 0u64;
        for plan in MicrobatchPlan::enumerate(mini, 4) {
            let peak = truth.report(&gpt, cfg, plan).peak_bytes;
            // Jitter is ±3 %, so allow a hair of slack.
            prop_assert!(peak as f64 > last as f64 * 0.93,
                "{cfg} micro={}: {peak} after {last}", plan.micro_batch);
            last = last.max(peak);
        }
    }

    /// Activation policies order memory the same way for every config.
    #[test]
    fn activation_policy_ordering_is_universal((cfg, plan) in config_strategy()) {
        let gpt = small_gpt();
        let peak = |mode| {
            MemorySim::new(1)
                .with_options(TrainingOptions::new().with_activation(mode))
                .report(&gpt, cfg, plan)
                .peak_bytes as f64
        };
        let full = peak(ActivationMode::Full);
        let selective = peak(ActivationMode::Selective);
        let ckpt = peak(ActivationMode::FullRecompute);
        prop_assert!(selective <= full * 1.05);
        prop_assert!(ckpt <= selective * 1.05);
    }

    /// The all-reduce time scales (weakly) monotonically with payload and
    /// never beats the point-to-point lower bound.
    #[test]
    fn allreduce_scaling(bytes_exp in 18u32..30, seed in 0u64..30) {
        let cluster = cluster();
        let comm = CommModel::new(cluster.bandwidth());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let size = rng.gen_range(2..=8usize);
        let mut group = Vec::new();
        while group.len() < size {
            let g = pipette_cluster::GpuId(rng.gen_range(0..16));
            if !group.contains(&g) {
                group.push(g);
            }
        }
        let small = comm.ring_allreduce(&group, 1 << bytes_exp);
        let large = comm.ring_allreduce(&group, 1 << (bytes_exp + 1));
        prop_assert!(large > small);
        let hier = comm.hierarchical_allreduce(&group, 1 << bytes_exp);
        prop_assert!(hier > 0.0);
    }

    /// Execution is invariant under the trivial relabeling of tensor ranks
    /// within a node when tp equals the node size (the group set does not
    /// change, only rank order within the node's NVLink clique).
    #[test]
    fn iteration_deterministic_and_mapping_valid((cfg, plan) in config_strategy(), seed in 0u64..20) {
        let cluster = cluster();
        let gpt = small_gpt();
        let gpu = cluster.gpu().clone();
        let mapping = random_mapping(cfg, &cluster, seed);
        prop_assert!(mapping.is_permutation());
        let a = IterationSim::new(cluster.bandwidth(), &gpu, &gpt)
            .simulate(cfg, &mapping, plan)
            .total_seconds;
        let b = IterationSim::new(cluster.bandwidth(), &gpu, &gpt)
            .simulate(cfg, &mapping, plan)
            .total_seconds;
        prop_assert_eq!(a, b);
    }

    /// OOM classification agrees between `peak_memory` and `execute`.
    #[test]
    fn oom_classification_is_consistent((cfg, plan) in config_strategy()) {
        let cluster = cluster();
        let gpt = GptConfig::new(8, 2048, 16, 2048, 51200); // bigger: some OOM
        let runner = ClusterRun::new(&cluster, &gpt);
        let mapping = Mapping::identity(cfg, *cluster.topology());
        let fits = runner.peak_memory(cfg, plan).peak_bytes <= cluster.gpu().memory_bytes;
        let ran = runner.execute(cfg, &mapping, plan).is_ok();
        prop_assert_eq!(fits, ran);
    }
}
