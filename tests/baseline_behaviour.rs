//! Integration tests of the baseline configurators (AMP, Varuna,
//! Megatron-LM) against the simulated cluster — the Fig. 5b / Fig. 6
//! behaviours at test scale.

use pipette::baselines::{
    count_oom_in_top_k, first_runnable, AmpConfigurator, MegatronTuner, VarunaConfigurator,
};
use pipette::configurator::{Pipette, PipetteOptions};
use pipette_cluster::presets;
use pipette_model::GptConfig;
use pipette_sim::ClusterRun;

#[test]
fn amp_and_varuna_recommend_oom_configs_pipette_does_not() {
    // A model near the cluster's memory limit, so memory-unaware rankers
    // walk into OOM recommendations.
    let cluster = presets::mid_range(4).build(2);
    let gpt = GptConfig::new(24, 2048, 16, 2048, 51200); // ~1.3B on 16 GiB V100s
    let runner = ClusterRun::new(&cluster, &gpt);
    let runner_recompute = ClusterRun::new(&cluster, &gpt).with_recompute(true);

    let amp = AmpConfigurator::new(&cluster, &gpt, 128).top_k(10);
    let vr = VarunaConfigurator::new(&cluster, &gpt, 128).top_k(10);
    let amp_oom = count_oom_in_top_k(&amp, &runner, 10);
    let vr_oom = count_oom_in_top_k(&vr, &runner_recompute, 10);
    assert!(
        amp_oom >= 3,
        "AMP should recommend several OOM configs: {amp_oom}"
    );
    assert!(
        vr_oom >= 3,
        "Varuna should recommend several OOM configs: {vr_oom}"
    );

    let mut options = PipetteOptions::fast_test();
    options.memory.train.iterations = 2_500;
    let rec = Pipette::new(&cluster, &gpt, 128, options)
        .run()
        .expect("feasible");
    assert!(
        runner.execute(rec.config, &rec.mapping, rec.plan).is_ok(),
        "Pipette's top recommendation must run"
    );
}

#[test]
fn walking_the_amp_list_finds_a_runnable_config_eventually() {
    let cluster = presets::mid_range(4).build(2);
    let gpt = GptConfig::new(24, 2048, 16, 2048, 51200);
    let runner = ClusterRun::new(&cluster, &gpt);
    let ranked = AmpConfigurator::new(&cluster, &gpt, 128).rank();
    let hit = first_runnable(&ranked, &runner).expect("something must run");
    assert!(hit.attempts >= 1);
    assert_eq!(hit.attempts, hit.rank + 1);
    assert!(hit.measured.iteration_seconds > 0.0);
}

#[test]
fn varuna_needs_recomputation_for_deep_pipelines() {
    // Without recomputation, Varuna's pipeline-only configs hold full
    // activations for many in-flight microbatches and mostly OOM; with
    // recomputation they run.
    let cluster = presets::mid_range(4).build(6);
    let gpt = GptConfig::gpt_1_1b();
    let plain = ClusterRun::new(&cluster, &gpt);
    let recompute = ClusterRun::new(&cluster, &gpt).with_recompute(true);
    let ranked = VarunaConfigurator::new(&cluster, &gpt, 256).rank();
    let oom_plain = count_oom_in_top_k(&ranked, &plain, ranked.len());
    let oom_recompute = count_oom_in_top_k(&ranked, &recompute, ranked.len());
    assert!(
        oom_recompute < oom_plain,
        "recomputation should unlock configs: {oom_recompute} vs {oom_plain}"
    );
    assert!(first_runnable(&ranked, &recompute).is_some());
}

#[test]
fn varuna_is_slower_than_tensor_parallel_methods() {
    let cluster = presets::mid_range(4).build(6);
    let gpt = GptConfig::gpt_1_1b();
    let runner = ClusterRun::new(&cluster, &gpt);
    let recompute = ClusterRun::new(&cluster, &gpt).with_recompute(true);

    let vr = first_runnable(
        &VarunaConfigurator::new(&cluster, &gpt, 256).rank(),
        &recompute,
    )
    .expect("varuna runs with recomputation");
    let mlm = MegatronTuner::new(&cluster, &gpt, 256)
        .tune(&runner)
        .expect("mlm runs");
    assert!(
        vr.measured.iteration_seconds > 1.2 * mlm.measured.iteration_seconds,
        "pipeline-only should pay for skipping tensor parallelism: VR {:.3} vs MLM {:.3}",
        vr.measured.iteration_seconds,
        mlm.measured.iteration_seconds
    );
}

#[test]
fn megatron_tuner_beats_or_matches_every_family_member_it_tried() {
    let cluster = presets::high_end(2).build(4);
    let gpt = GptConfig::new(8, 1024, 16, 2048, 51200);
    let runner = ClusterRun::new(&cluster, &gpt);
    let tuner = MegatronTuner::new(&cluster, &gpt, 64);
    let best = tuner.tune(&runner).expect("runnable family");
    assert_eq!(best.config.tp, cluster.topology().gpus_per_node());
    assert_eq!(best.trials, tuner.candidates().len());
}

#[test]
fn pipette_matches_or_beats_amp_on_measured_time() {
    let cluster = presets::mid_range(4).build(12);
    let gpt = GptConfig::gpt_1_1b();
    let runner = ClusterRun::new(&cluster, &gpt);
    let amp = first_runnable(&AmpConfigurator::new(&cluster, &gpt, 256).rank(), &runner)
        .expect("amp finds something");
    let mut options = PipetteOptions::fast_test();
    options.annealer.iterations = 6_000;
    options.seed = 12;
    let rec = Pipette::new(&cluster, &gpt, 256, options)
        .run()
        .expect("feasible");
    let ppt = runner
        .execute(rec.config, &rec.mapping, rec.plan)
        .expect("runnable");
    assert!(
        ppt.iteration_seconds <= amp.measured.iteration_seconds * 1.03,
        "Pipette {:.3}s should not lose to AMP {:.3}s",
        ppt.iteration_seconds,
        amp.measured.iteration_seconds
    );
}
