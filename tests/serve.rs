//! End-to-end tests of the `pipette serve` loop with the real
//! configurator handler: byte-determinism at any worker count, deadline
//! expiry with best-so-far results, deterministic load-shedding, and the
//! circuit breaker's trip/degrade/recover cycle.

use pipette_cli::jsonscan::{self, JsonValue};
use pipette_cli::{run_drill_serve, PipetteHandler};
use pipette_serve::{
    run_pipe, BreakerConfig, ExecContext, ParseOutcome, RequestHandler, ServerConfig,
};

/// A deliberately small job so each configure request stays fast.
const JOB: &str = r#"{"cluster":{"preset":"mid-range","nodes":1,"seed":5},"model":{"layers":6,"hidden":512,"heads":8},"global_batch":32,"max_micro":2,"worker_dedication":true,"sa_iterations":300,"memory_training_iterations":150,"seed":3}"#;

fn configure_line(id: &str, extra: &str) -> String {
    format!("{{\"id\":\"{id}\",\"op\":\"configure\",\"job\":{JOB}{extra}}}")
}

fn run_server(input: &str, config: ServerConfig) -> (Vec<String>, pipette_serve::ServeSummary) {
    let handler = PipetteHandler::new();
    let mut out: Vec<u8> = Vec::new();
    let summary = run_pipe(&handler, config, input.as_bytes(), &mut out).expect("serve loop runs");
    let lines = String::from_utf8(out)
        .expect("responses are UTF-8")
        .lines()
        .map(str::to_owned)
        .collect();
    (lines, summary)
}

fn get<'a>(doc: &'a JsonValue, key: &str) -> &'a JsonValue {
    doc.get(key)
        .unwrap_or_else(|| panic!("response missing {key:?}: {doc:?}"))
}

fn number(doc: &JsonValue, key: &str) -> f64 {
    match get(doc, key) {
        JsonValue::Number(n) => *n,
        other => panic!("{key} is not a number: {other:?}"),
    }
}

#[test]
fn identical_requests_are_byte_identical_at_any_worker_count() {
    let line = configure_line("req", ",\"trace\":true");
    let input = format!("{line}\n{line}\n{line}\n{{\"op\":\"shutdown\"}}\n");

    let mut streams = Vec::new();
    for workers in [1, 2, 8] {
        let config = ServerConfig {
            workers,
            ..ServerConfig::default()
        };
        let (lines, summary) = run_server(&input, config);
        assert_eq!(lines.len(), 3, "three responses at workers={workers}");
        assert_eq!(summary.admitted, 3);
        assert_eq!(summary.completed, 3);
        assert!(summary.shutdown, "shutdown drains cleanly");
        streams.push(lines);
    }
    assert_eq!(
        streams[0], streams[1],
        "workers=1 and workers=2 streams differ"
    );
    assert_eq!(
        streams[0], streams[2],
        "workers=1 and workers=8 streams differ"
    );

    // The N responses are byte-identical to *each other* once the
    // per-request sequence number is masked (it is the only field that
    // distinguishes identical requests).
    let masked: Vec<String> = streams[0]
        .iter()
        .enumerate()
        .map(|(i, l)| l.replacen(&format!("\"seq\":{i},"), "\"seq\":N,", 1))
        .collect();
    assert_eq!(masked[0], masked[1]);
    assert_eq!(masked[0], masked[2]);

    // ... and identical to a one-shot execution of the same request
    // through the handler directly (no server loop at all).
    let handler = PipetteHandler::new();
    let ParseOutcome::Job { job, .. } = handler.parse(&line) else {
        panic!("request line must parse as a job");
    };
    let one_shot = handler.execute(
        job,
        &ExecContext {
            seq: 0,
            degraded: false,
        },
    );
    assert_eq!(one_shot.response, streams[0][0]);
    assert_eq!(one_shot.outcome, "ok");

    // Every response embeds a balanced per-request trace with the same
    // spans a one-shot `--trace-out` run records.
    let doc = jsonscan::parse(&streams[0][0]).expect("response is valid JSON");
    let JsonValue::Array(trace_lines) = get(&doc, "trace") else {
        panic!("trace must be an array of JSONL lines");
    };
    let jsonl: Vec<String> = trace_lines
        .iter()
        .map(|l| match l {
            JsonValue::String(s) => s.clone(),
            other => panic!("trace line is not a string: {other:?}"),
        })
        .collect();
    let joined = jsonl.join("\n");
    let tree = pipette_obs::analysis::span_tree_from_jsonl(&joined)
        .expect("embedded trace parses as a balanced span tree");
    for span in [
        "profile",
        "mem_train",
        "mem_screen",
        "estimates",
        "finalize",
    ] {
        assert!(
            tree.rollups().iter().any(|r| r.name == span),
            "per-request trace missing span {span:?} in:\n{joined}"
        );
    }
    // The estimator arrived pretrained from the shared cache, so the
    // trace says so — this is what makes the first and the N-th request
    // byte-identical.
    assert!(
        joined.contains("\"cached\":true"),
        "mem_train must record the pre-trained estimator"
    );
}

#[test]
fn deadline_truncates_to_best_so_far_and_expires_typed() {
    // First learn the candidate-space size from an unbounded run...
    let free = configure_line("free", "");
    let input = format!("{free}\n{{\"op\":\"shutdown\"}}\n");
    let (lines, _) = run_server(&input, ServerConfig::default());
    let doc = jsonscan::parse(&lines[0]).expect("valid JSON");
    assert_eq!(get(&doc, "status"), &JsonValue::String("ok".into()));
    let result = get(&doc, "result");
    let examined = number(result, "examined") as u64;
    let rejected = number(result, "memory_rejected") as u64;
    let accepted = examined - rejected;
    assert!(examined > 0 && accepted > 0);

    // ... then grant a budget that survives screening and estimation but
    // covers only half of the first SA pass: the run must finish with a
    // best-so-far recommendation and `truncated = true`.
    let budget = examined + accepted + 150;
    let truncating = configure_line("tight", &format!(",\"deadline_units\":{budget}"));
    let input = format!("{truncating}\n{{\"op\":\"shutdown\"}}\n");
    let (lines, _) = run_server(&input, ServerConfig::default());
    let doc = jsonscan::parse(&lines[0]).expect("valid JSON");
    assert_eq!(
        get(&doc, "status"),
        &JsonValue::String("deadline".into()),
        "truncated run reports a deadline status: {}",
        lines[0]
    );
    let result = get(&doc, "result");
    assert!(
        matches!(result, JsonValue::Object(_)),
        "truncated run still carries a best-so-far result"
    );
    assert!(number(result, "pp") >= 1.0);
    let deadline = get(&doc, "deadline");
    assert_eq!(number(deadline, "budget_units") as u64, budget);
    assert_eq!(get(&deadline.clone(), "truncated"), &JsonValue::Bool(true));
    assert!(number(deadline, "spent_units") <= budget as f64);

    // A budget too small to even finish screening is the one hard case:
    // a typed deadline response with a null result, never a panic.
    let hopeless = configure_line("none", ",\"deadline_units\":1");
    let input = format!("{hopeless}\n{{\"op\":\"shutdown\"}}\n");
    let (lines, summary) = run_server(&input, ServerConfig::default());
    let doc = jsonscan::parse(&lines[0]).expect("valid JSON");
    assert_eq!(get(&doc, "status"), &JsonValue::String("deadline".into()));
    assert_eq!(get(&doc, "result"), &JsonValue::Null);
    assert_eq!(
        get(&doc, "deadline").get("truncated"),
        Some(&JsonValue::Bool(true))
    );
    assert_eq!(summary.completed, 1, "expiry still commits a response");
}

#[test]
fn overload_sheds_deterministically_with_typed_rejections() {
    // Low-level API: admit a burst before any worker runs, so the queue
    // depth at each admission is exact.
    let handler = PipetteHandler::new();
    let config = ServerConfig {
        workers: 1,
        queue_limit: 1,
        ..ServerConfig::default()
    };
    let server = pipette_serve::Server::new(config);
    for id in ["a", "b", "c"] {
        assert!(server.admit(&handler, &configure_line(id, "")));
    }
    server.finish_input();
    server.worker_loop(&handler);
    let mut out: Vec<u8> = Vec::new();
    server.commit_loop(&mut out).expect("commit to a Vec");
    let summary = server.into_summary();
    let text = String::from_utf8(out).expect("UTF-8 responses");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3);
    // Request 0 ran; 1 and 2 arrived at a full queue and got the typed
    // rejection, byte-for-byte.
    assert!(lines[0].contains("\"id\":\"a\"") && lines[0].contains("\"status\":\"ok\""));
    assert_eq!(
        lines[1],
        "{\"seq\":1,\"status\":\"overloaded\",\"queue_len\":1,\"limit\":1,\"retry_after_units\":4096}"
    );
    assert_eq!(
        lines[2],
        "{\"seq\":2,\"status\":\"overloaded\",\"queue_len\":1,\"limit\":1,\"retry_after_units\":4096}"
    );
    assert_eq!(summary.shed, 2);
    assert_eq!(summary.completed, 3);
}

#[test]
fn breaker_trips_serves_degraded_and_recovers() {
    // sample_loss_rate 1.0 destroys the profiling corpus: the drill is
    // forced onto the analytic memory model, which the handler reports
    // as an estimator failure.
    let faults = r#"{"seed":1,"sample_loss_rate":1.0}"#;
    let trip = format!("{{\"id\":\"trip\",\"op\":\"drill\",\"job\":{JOB},\"faults\":{faults}}}");
    let input = format!(
        "{trip}\n{}\n{}\n{}\n{{\"op\":\"shutdown\"}}\n",
        configure_line("deg", ""),
        configure_line("probe", ""),
        configure_line("ok", "")
    );
    let config = ServerConfig {
        workers: 1,
        breaker: BreakerConfig {
            failure_threshold: 1,
            cooldown_requests: 1,
            halfopen_successes: 1,
        },
        ..ServerConfig::default()
    };
    let (lines, summary) = run_server(&input, config);
    assert_eq!(lines.len(), 4);

    let trip_doc = jsonscan::parse(&lines[0]).expect("valid JSON");
    assert_eq!(get(&trip_doc, "status"), &JsonValue::String("ok".into()));
    assert_eq!(
        get(&trip_doc, "result").get("analytic_memory_fallback"),
        Some(&JsonValue::Bool(true)),
        "total sample loss must force the analytic fallback"
    );

    // The failure tripped the breaker: the next request is served in
    // degraded (analytic) mode without touching the estimator...
    let deg = jsonscan::parse(&lines[1]).expect("valid JSON");
    assert_eq!(get(&deg, "degraded"), &JsonValue::Bool(true));
    assert_eq!(get(&deg, "status"), &JsonValue::String("ok".into()));
    assert!(
        matches!(get(&deg, "result"), JsonValue::Object(_)),
        "degraded mode still answers with a real recommendation"
    );

    // ... which exhausts the cooldown; the half-open probe runs the full
    // path, succeeds, and closes the breaker again.
    let probe = jsonscan::parse(&lines[2]).expect("valid JSON");
    assert_eq!(get(&probe, "degraded"), &JsonValue::Bool(false));
    let ok = jsonscan::parse(&lines[3]).expect("valid JSON");
    assert_eq!(get(&ok, "degraded"), &JsonValue::Bool(false));
    assert_eq!(get(&ok, "status"), &JsonValue::String("ok".into()));

    assert_eq!(summary.breaker_trips, 1);
    assert_eq!(summary.degraded_requests, 1);

    // A degraded response and a healthy one really differ (analytic
    // screening is more conservative than the learned estimator — at
    // minimum the responses must not be byte-identical).
    assert_ne!(
        lines[1].replacen("\"id\":\"deg\",\"seq\":1,", "", 1),
        lines[3].replacen("\"id\":\"ok\",\"seq\":3,", "", 1)
    );
}

#[test]
fn drill_serve_replays_the_drift_timeline() {
    let faults = r#"{"seed":2,"drift":{"day":1,"daily_sigma":0.05},"sample_loss_rate":1.0}"#;
    let (lines, summary) = run_drill_serve(JOB, faults).expect("replay runs");
    assert_eq!(lines.len(), 2, "one response per drift day 0..=1");
    for (day, line) in lines.iter().enumerate() {
        let doc = jsonscan::parse(line).expect("valid JSON");
        assert_eq!(
            get(&doc, "id"),
            &JsonValue::String(format!("day-{day}")),
            "responses commit in timeline order"
        );
        assert_eq!(get(&doc, "op"), &JsonValue::String("drill".into()));
        assert_eq!(get(&doc, "status"), &JsonValue::String("ok".into()));
    }
    assert_eq!(summary.admitted, 2);
    assert!(summary.shutdown);
    // Day 0 and day 1 see different drifted bandwidth matrices, so their
    // reports may differ — but both days' fault handling is identical,
    // and with total sample loss both fall back to analytic screening.
    let day0 = jsonscan::parse(&lines[0]).expect("valid JSON");
    assert_eq!(
        get(&day0, "result").get("analytic_memory_fallback"),
        Some(&JsonValue::Bool(true))
    );
}
