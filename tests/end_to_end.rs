//! End-to-end integration tests: the full Pipette pipeline (profiling →
//! memory estimator → candidate enumeration → worker dedication) against
//! the ground-truth simulator, across both cluster presets.

use pipette::configurator::{Pipette, PipetteOptions, Recommendation};
use pipette::ConfigureError;
use pipette_cluster::{presets, Cluster};
use pipette_model::GptConfig;
use pipette_sim::{ClusterRun, SimError};

fn small_gpt() -> GptConfig {
    GptConfig::new(8, 1024, 16, 2048, 51200)
}

fn configure(cluster: &Cluster, gpt: &GptConfig, batch: u64, seed: u64) -> Recommendation {
    let mut options = PipetteOptions::fast_test();
    options.seed = seed;
    Pipette::new(cluster, gpt, batch, options)
        .run()
        .expect("feasible space")
}

#[test]
fn recommendation_runs_on_both_clusters() {
    for (preset, batch) in [(presets::mid_range(2), 64), (presets::high_end(2), 64)] {
        let cluster = preset.build(5);
        let gpt = small_gpt();
        let rec = configure(&cluster, &gpt, batch, 1);
        let runner = ClusterRun::new(&cluster, &gpt);
        let measured = runner
            .execute(rec.config, &rec.mapping, rec.plan)
            .expect("Pipette recommendations must be runnable");
        assert!(measured.iteration_seconds > 0.0);
        assert!(measured.peak_memory_bytes <= cluster.gpu().memory_bytes);
        // The batch decomposition must reconstruct the global batch.
        assert_eq!(
            rec.plan.minibatch() * rec.config.dp as u64,
            batch,
            "batch arithmetic must hold"
        );
    }
}

#[test]
fn estimate_matches_measurement_within_tolerance() {
    let cluster = presets::mid_range(2).build(9);
    let gpt = small_gpt();
    let rec = configure(&cluster, &gpt, 64, 2);
    let runner = ClusterRun::new(&cluster, &gpt);
    let measured = runner
        .execute(rec.config, &rec.mapping, rec.plan)
        .expect("runnable");
    let err =
        (rec.estimated_seconds - measured.iteration_seconds).abs() / measured.iteration_seconds;
    assert!(
        err < 0.15,
        "estimate {} vs measured {} (err {err:.3})",
        rec.estimated_seconds,
        measured.iteration_seconds
    );
}

#[test]
fn configurator_is_deterministic() {
    let cluster = presets::mid_range(2).build(3);
    let gpt = small_gpt();
    let a = configure(&cluster, &gpt, 64, 7);
    let b = configure(&cluster, &gpt, 64, 7);
    assert_eq!(a.config, b.config);
    assert_eq!(a.plan, b.plan);
    assert_eq!(a.mapping, b.mapping);
    assert_eq!(a.estimated_seconds, b.estimated_seconds);
}

#[test]
fn worker_dedication_is_no_worse_end_to_end() {
    // PPT-LF's recommendation must not run slower than PPT-L's on the
    // actual cluster (they may tie when the annealer finds nothing).
    let cluster = presets::high_end(2).build(17);
    let gpt = small_gpt();
    let mut options = PipetteOptions::fast_test();
    options.seed = 3;
    options.annealer.iterations = 6_000;

    let pip = Pipette::new(&cluster, &gpt, 64, options);
    let (estimator, _, _) = pip.train_memory_estimator();
    let runner = ClusterRun::new(&cluster, &gpt);

    let with_sa = Pipette::new(&cluster, &gpt, 64, options)
        .with_memory_estimator(estimator.clone())
        .run()
        .expect("feasible");
    let without = Pipette::new(&cluster, &gpt, 64, options.latency_only())
        .with_memory_estimator(estimator)
        .run()
        .expect("feasible");

    let t_sa = runner
        .execute(with_sa.config, &with_sa.mapping, with_sa.plan)
        .expect("runnable")
        .iteration_seconds;
    let t_plain = runner
        .execute(without.config, &without.mapping, without.plan)
        .expect("runnable")
        .iteration_seconds;
    assert!(
        t_sa <= t_plain * 1.05,
        "dedication should not materially hurt: {t_sa:.3} vs {t_plain:.3}"
    );
}

#[test]
fn oversized_model_reports_no_feasible_config() {
    let cluster = presets::mid_range(2).build(3);
    // ~51B parameters cannot fit on 16 V100s under any 3D split.
    let huge = GptConfig::new(16, 16384, 32, 2048, 51200);
    let mut options = PipetteOptions::fast_test();
    options.seed = 5;
    let err = Pipette::new(&cluster, &huge, 256, options)
        .run()
        .expect_err("must not fit");
    assert!(matches!(err, ConfigureError::NoFeasibleConfig { .. }));

    // Ground truth agrees: even the most aggressive split OOMs.
    let runner = ClusterRun::new(&cluster, &huge);
    let cfg = pipette_model::ParallelConfig::new(2, 8, 1);
    let mapping = pipette_sim::Mapping::identity(cfg, *cluster.topology());
    let plan = pipette_model::MicrobatchPlan::new(256, 1).unwrap();
    assert!(matches!(
        runner.execute(cfg, &mapping, plan),
        Err(SimError::OutOfMemory { .. })
    ));
}

#[test]
fn overhead_report_accounts_every_phase() {
    let cluster = presets::mid_range(2).build(3);
    let gpt = small_gpt();
    let rec = configure(&cluster, &gpt, 64, 11);
    let o = rec.overhead;
    // Bandwidth profiling models the Table II cost for 2 nodes.
    assert!(o.bandwidth_profiling.as_secs_f64() > 30.0);
    // SA ran (fast_test budget) and took some host time.
    assert!(o.simulated_annealing.as_secs_f64() > 0.0);
    // Amortized estimator training happened (no pretrained estimator).
    assert!(o.memory_training.as_secs_f64() > 0.0);
    // Total overhead is negligible against a 300K-iteration run.
    let frac = o.overhead_fraction(rec.estimated_seconds, 300_000);
    assert!(frac < 0.01, "overhead fraction {frac}");
}

#[test]
fn alternatives_are_ordered_and_exclude_winner() {
    let cluster = presets::mid_range(2).build(3);
    let gpt = small_gpt();
    let rec = configure(&cluster, &gpt, 64, 13);
    assert!(
        !rec.alternatives.is_empty(),
        "a small model has many feasible configs"
    );
    assert!(
        !rec.alternatives
            .iter()
            .any(|a| a.config == rec.config && a.plan == rec.plan),
        "winner must not appear among alternatives"
    );
    // Ranked best-first by identity-mapping estimate.
    assert!(rec
        .alternatives
        .windows(2)
        .all(|w| w[0].estimated_seconds <= w[1].estimated_seconds));
}
