//! Trace-analytics integration tests: the offline toolkit (`parse`,
//! `diff`, `check`) against real configurator traces, and the committed
//! `trace_budgets.json` against the perf-baseline reference job — the
//! same gate CI runs, so a budget regression fails here first.

use pipette::configurator::{Pipette, PipetteOptions};
use pipette_cluster::presets;
use pipette_model::GptConfig;
use pipette_obs::analysis::{
    diff_jsonl, render_diff, span_tree_from_jsonl, BudgetManifest, JsonValue, ParsedTrace,
};
use pipette_obs::{Trace, TraceConfig};

/// The perf-baseline reference job: fixed shape, identical to
/// `perf_baseline`'s `BENCH_trace.jsonl` producer, so the committed
/// budget manifest is exercised against the exact trace CI gates on.
fn reference_run() -> Trace {
    let cluster = presets::mid_range(2).build(5);
    let gpt = GptConfig::new(8, 1024, 16, 2048, 51200);
    let mut options = PipetteOptions::fast_test();
    options.seed = 21;
    let mut trace = Trace::new(TraceConfig::default());
    Pipette::new(&cluster, &gpt, 64, options)
        .run_traced(&mut trace)
        .expect("feasible space");
    trace
}

#[test]
fn identical_seed_runs_diff_to_zero_drift() {
    let a = reference_run().to_jsonl();
    let b = reference_run().to_jsonl();
    let diff = diff_jsonl(&a, &b).expect("both traces parse");
    assert!(
        !diff.has_drift(),
        "identical-seed runs drifted:\n{}",
        render_diff(&diff)
    );
    assert!(render_diff(&diff).contains("zero drift"));
    // The structural deltas agree side for side too.
    for delta in &diff.spans {
        assert!(!delta.changed(), "span '{}' changed", delta.name);
    }
    for delta in &diff.kinds {
        assert_eq!(delta.count.0, delta.count.1, "kind '{}'", delta.kind);
    }
}

#[test]
fn canonical_jsonl_round_trips_through_the_analyzer() {
    let trace = reference_run();
    let jsonl = trace.to_jsonl();
    let parsed = ParsedTrace::from_jsonl(&jsonl).expect("canonical output parses");
    assert_eq!(parsed.events().len(), trace.len());
    // seq fields are line indices; every line has a kind the writer knows.
    for event in parsed.events() {
        assert_eq!(
            event.field("seq").and_then(JsonValue::as_u64),
            Some(event.line as u64)
        );
    }
    // The reparsed span tree matches the in-memory one.
    let from_text = parsed.span_tree().expect("balanced");
    let from_mem = pipette_obs::SpanTree::from_trace(&trace).expect("balanced");
    assert_eq!(from_mem.nodes(), from_text.nodes());
    assert_eq!(from_mem.kind_counts(), from_text.kind_counts());
}

#[test]
fn committed_budget_manifest_passes_on_the_reference_trace() {
    // The same evaluation CI runs: perf_baseline's reference trace
    // against the repo's committed ceilings.
    let manifest_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../trace_budgets.json");
    let manifest_text =
        std::fs::read_to_string(manifest_path).expect("trace_budgets.json is committed");
    let manifest = BudgetManifest::parse(&manifest_text).expect("manifest is well-formed");
    let tree = span_tree_from_jsonl(&reference_run().to_jsonl()).expect("balanced");
    let report = manifest.check(&tree);
    assert!(
        report.ok(),
        "committed budgets violated: {:?}",
        report
            .violations()
            .iter()
            .map(|v| format!("{}: {} > {}", v.label, v.actual, v.limit))
            .collect::<Vec<_>>()
    );
    // The manifest is not vacuous: it pins every phase span and checks
    // both cost and count ceilings. The `serve` entry is ceiling-only
    // (pipette-serve traces carry it; batch traces must still pass).
    assert!(report.checks.len() >= 20, "manifest too thin");
    assert!(manifest
        .spans
        .iter()
        .filter(|s| s.span != "serve")
        .all(|s| s.require));
    assert!(manifest
        .spans
        .iter()
        .any(|s| s.span == "serve" && !s.require));
}

#[test]
fn tightened_manifest_trips_on_the_reference_trace() {
    // The negative control CI also runs: a ceiling below the reference
    // cost must be reported as a violation.
    let manifest = BudgetManifest::parse(
        r#"{"schema":"pipette-trace-budgets/v1","spans":[{"span":"anneal","max_cost":1}]}"#,
    )
    .expect("valid manifest");
    let tree = span_tree_from_jsonl(&reference_run().to_jsonl()).expect("balanced");
    let report = manifest.check(&tree);
    assert!(!report.ok(), "a 1-eval anneal ceiling must trip");
}
