//! Integration tests of the two estimators against the ground-truth
//! simulator — the Fig. 5a / Fig. 7 claims at test scale.

use pipette::latency::{AmpLatencyModel, Eq1Flavor, PipetteLatencyModel};
use pipette::memory::{
    collect_samples, AnalyticMemoryEstimator, MemoryEstimator, MemoryEstimatorConfig, SampleSpec,
};
use pipette_cluster::presets;
use pipette_model::{BatchConfig, GptConfig, MicrobatchPlan, ParallelConfig};
use pipette_sim::{ClusterRun, ComputeProfiler, IterationSim, Mapping, MemorySim};

/// Sweep every runnable configuration of a small cluster and return
/// `(pipette_errs, amp_errs)` against the simulator.
fn latency_error_population(nodes: usize, flavor: Eq1Flavor) -> (Vec<f64>, Vec<f64>) {
    let cluster = presets::mid_range(nodes).build(31);
    let gpt = GptConfig::new(16, 2048, 16, 2048, 51200);
    let runner = ClusterRun::new(&cluster, &gpt);
    let gpu = cluster.gpu().clone();
    let (profiled, _) = cluster.profiler().profile(cluster.bandwidth(), 4);
    let ppt = PipetteLatencyModel::new(&profiled, &gpt);
    let amp = AmpLatencyModel::from_specs_of(cluster.bandwidth(), &gpt).with_flavor(flavor);
    let profiler = ComputeProfiler::default();
    let topo = cluster.topology();
    let mut ppt_errs = Vec::new();
    let mut amp_errs = Vec::new();
    for cfg in ParallelConfig::enumerate(topo.num_gpus(), 8, gpt.n_layers) {
        let Ok(mini) = BatchConfig::new(128).minibatch(cfg.dp) else {
            continue;
        };
        for plan in MicrobatchPlan::enumerate(mini, 4) {
            if runner.peak_memory(cfg, plan).peak_bytes > cluster.gpu().memory_bytes {
                continue;
            }
            let mapping = Mapping::identity(cfg, *topo);
            let truth = IterationSim::new(cluster.bandwidth(), &gpu, &gpt)
                .simulate(cfg, &mapping, plan)
                .total_seconds;
            let compute = profiler.profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 8);
            ppt_errs.push((ppt.estimate(cfg, &mapping, plan, &compute) - truth).abs() / truth);
            amp_errs.push((amp.estimate(cfg, plan, &compute) - truth).abs() / truth);
        }
    }
    (ppt_errs, amp_errs)
}

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len() as f64
}

#[test]
fn pipette_latency_mape_is_single_digit() {
    let (ppt, _) = latency_error_population(4, Eq1Flavor::Scalar);
    assert!(ppt.len() >= 10, "population too small: {}", ppt.len());
    let mape = mean(&ppt);
    assert!(
        mape < 0.06,
        "Pipette latency MAPE {mape:.3} should be single-digit"
    );
    // And no single configuration is estimated wildly wrong.
    let worst = ppt.iter().cloned().fold(0.0, f64::max);
    assert!(worst < 0.20, "worst-case error {worst:.3}");
}

#[test]
fn eq1_scalar_flavor_is_much_worse_than_pipette() {
    // Fig. 5a's comparison: Eq. 1 as written vs Eqs. 3-6.
    let (ppt, amp) = latency_error_population(4, Eq1Flavor::Scalar);
    assert!(
        mean(&amp) > 3.0 * mean(&ppt),
        "Eq.1 scalar MAPE {:.3} should dwarf Pipette's {:.3}",
        mean(&amp),
        mean(&ppt)
    );
}

#[test]
fn eq1_per_stage_flavor_still_loses_to_pipette() {
    let (ppt, amp) = latency_error_population(4, Eq1Flavor::PerStage);
    assert!(
        mean(&amp) > mean(&ppt),
        "even the charitable Eq.1 reading ({:.4}) should lose to Pipette ({:.4})",
        mean(&amp),
        mean(&ppt)
    );
}

#[test]
fn amp_errors_are_underestimates() {
    // The paper's diagnosis: Eq. 1 misses latency (hidden path + ideal
    // bandwidths), so its errors skew toward underestimation.
    let cluster = presets::mid_range(4).build(31);
    let gpt = GptConfig::new(16, 2048, 16, 2048, 51200);
    let gpu = cluster.gpu().clone();
    let amp =
        AmpLatencyModel::from_specs_of(cluster.bandwidth(), &gpt).with_flavor(Eq1Flavor::Scalar);
    let profiler = ComputeProfiler::new(0.0);
    let mut under = 0;
    let mut total = 0;
    for cfg in [
        ParallelConfig::new(4, 8, 1),
        ParallelConfig::new(8, 4, 1),
        ParallelConfig::new(2, 8, 2),
    ] {
        let plan = MicrobatchPlan::new(128 / cfg.dp as u64, 1).unwrap();
        let mapping = Mapping::identity(cfg, *cluster.topology());
        let truth = IterationSim::new(cluster.bandwidth(), &gpu, &gpt)
            .simulate(cfg, &mapping, plan)
            .total_seconds;
        let est = amp.estimate(
            cfg,
            plan,
            &profiler.profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 1),
        );
        total += 1;
        if est < truth {
            under += 1;
        }
    }
    assert_eq!(
        under, total,
        "Eq.1 should underestimate every pipeline-parallel config"
    );
}

#[test]
fn memory_estimator_extrapolates_to_more_gpus() {
    // Train on 8/16-GPU profiles, evaluate on 32-GPU configurations of the
    // same models — the §VI extrapolation claim at test scale.
    let models = vec![
        GptConfig::new(8, 1024, 16, 2048, 51200),
        GptConfig::new(16, 1536, 16, 2048, 51200),
    ];
    let truth = MemorySim::new(77);
    let train = collect_samples(
        &SampleSpec {
            gpu_counts: vec![8, 16],
            gpus_per_node: 8,
            models: models.clone(),
            global_batches: vec![64, 128],
            max_micro: 4,
        },
        &truth,
    );
    let eval = collect_samples(
        &SampleSpec {
            gpu_counts: vec![32],
            gpus_per_node: 8,
            models,
            global_batches: vec![128],
            max_micro: 4,
        },
        &truth,
    );
    // A shallower net with a longer Adam budget extrapolates markedly
    // better here than the deeper default (depth 3 overfits the 8/16-GPU
    // training envelope and drifts at 32 GPUs; MAPE stays < 0.13 across
    // init seeds with this shape).
    let config = MemoryEstimatorConfig {
        train: pipette_mlp::TrainConfig {
            iterations: 24_000,
            learning_rate: 2e-3,
            batch_size: 64,
            record_every: 1_000,
            seed: 0,
        },
        hidden: 64,
        depth: 2,
        soft_margin: 0.04,
        seed: 1,
    };
    let est = MemoryEstimator::train(&train, &config);
    let mape = est.mape(&eval);
    assert!(mape < 0.15, "extrapolation MAPE {mape:.3}");
}

#[test]
fn analytic_baseline_underestimates_systematically() {
    let gpt = GptConfig::gpt_1_1b();
    let truth = MemorySim::new(3);
    let analytic = AnalyticMemoryEstimator::new();
    let mut under = 0;
    let mut total = 0;
    for cfg in ParallelConfig::enumerate(32, 8, gpt.n_layers) {
        let Ok(mini) = BatchConfig::new(64).minibatch(cfg.dp) else {
            continue;
        };
        for plan in MicrobatchPlan::enumerate(mini, 4) {
            let actual = truth.report(&gpt, cfg, plan).peak_bytes;
            let est = analytic.estimate_bytes(&gpt, cfg, plan);
            total += 1;
            if est < actual {
                under += 1;
            }
        }
    }
    assert!(total > 20);
    assert_eq!(
        under, total,
        "the analytic baseline must underestimate everywhere"
    );
}
