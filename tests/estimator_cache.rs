//! Integration tests for the fast memory-estimator layer: batched
//! screening is bit-identical to row-by-row screening, and `configure()`
//! gives bit-identical recommendations with the trained-estimator cache
//! cold vs. warm and at any thread count.

use pipette::configurator::{Pipette, PipetteOptions, Recommendation};
use pipette::memory::{collect_samples, MemoryEstimator, SampleSpec, TrainedEstimatorCache};
use pipette_cluster::{presets, Cluster};
use pipette_model::GptConfig;
use pipette_sim::MemorySim;

fn setup() -> (Cluster, GptConfig) {
    (
        presets::mid_range(2).build(3),
        GptConfig::new(8, 1024, 16, 2048, 51200),
    )
}

fn assert_identical(a: &Recommendation, b: &Recommendation, what: &str) {
    assert_eq!(a.config, b.config, "{what}: config");
    assert_eq!(a.plan, b.plan, "{what}: plan");
    assert_eq!(a.mapping, b.mapping, "{what}: mapping");
    assert_eq!(
        a.estimated_seconds.to_bits(),
        b.estimated_seconds.to_bits(),
        "{what}: estimate {} vs {}",
        a.estimated_seconds,
        b.estimated_seconds
    );
    assert_eq!(a.examined, b.examined, "{what}: examined");
    assert_eq!(a.memory_rejected, b.memory_rejected, "{what}: rejected");
    assert_eq!(a.alternatives, b.alternatives, "{what}: alternatives");
}

#[test]
fn batch_screen_is_bit_identical_to_rowwise() {
    let gpt = GptConfig::new(8, 1024, 16, 2048, 51200);
    let spec = SampleSpec {
        gpu_counts: vec![8, 16],
        gpus_per_node: 8,
        models: vec![gpt],
        global_batches: vec![64],
        max_micro: 4,
    };
    let samples = collect_samples(&spec, &MemorySim::new(1));
    let mut config = pipette::memory::MemoryEstimatorConfig::default();
    config.train.iterations = 600;
    config.hidden = 24;
    config.depth = 2;
    let estimator = MemoryEstimator::train(&samples, &config);

    let features: Vec<[f64; 10]> = samples.iter().map(|s| s.features).collect();
    let limit = 16 * (1u64 << 30);
    for threads in [1usize, 4, 8] {
        let batch = estimator.predict_bytes_batch(&features, threads);
        let runnable = estimator.is_runnable_batch(&features, limit, threads);
        assert_eq!(batch.len(), features.len());
        for (i, f) in features.iter().enumerate() {
            assert_eq!(
                batch[i],
                estimator.predict_bytes(f),
                "threads {threads}, row {i}"
            );
            assert_eq!(
                runnable[i],
                estimator.is_runnable(f, limit),
                "threads {threads}, row {i}"
            );
        }
    }
    assert!(estimator.predict_bytes_batch(&[], 4).is_empty());
}

#[test]
fn configure_is_identical_cold_vs_warm_cache() {
    let (cluster, gpt) = setup();
    let opts = PipetteOptions::fast_test();

    // Baseline: no cache at all.
    let plain = Pipette::new(&cluster, &gpt, 64, opts).run().unwrap();

    let dir = std::env::temp_dir().join("pipette-estimator-cache-integration");
    let _ = std::fs::remove_dir_all(&dir);

    // Cold: trains, stores in memory + on disk.
    let cache = TrainedEstimatorCache::with_dir(&dir);
    let cold = Pipette::new(&cluster, &gpt, 64, opts)
        .with_estimator_cache(&cache)
        .run()
        .unwrap();
    assert_eq!((cache.hits(), cache.misses()), (0, 1));
    assert_identical(&cold, &plain, "cold cache vs no cache");

    // Warm, same cache value: in-memory hit, no retraining.
    let warm = Pipette::new(&cluster, &gpt, 64, opts)
        .with_estimator_cache(&cache)
        .run()
        .unwrap();
    assert_eq!((cache.hits(), cache.misses()), (1, 1));
    assert_identical(&warm, &cold, "warm (memory) vs cold");

    // Warm, fresh process simulation: a new cache over the same directory
    // must reload the bit-exact estimator from disk.
    let disk_cache = TrainedEstimatorCache::with_dir(&dir);
    let from_disk = Pipette::new(&cluster, &gpt, 64, opts)
        .with_estimator_cache(&disk_cache)
        .run()
        .unwrap();
    assert_eq!((disk_cache.hits(), disk_cache.misses()), (1, 0));
    assert_identical(&from_disk, &cold, "warm (disk) vs cold");

    // A different soft margin is a different estimator: the cache must
    // not serve the old entry.
    let mut other = opts;
    other.memory.soft_margin = 0.25;
    let _ = Pipette::new(&cluster, &gpt, 64, other)
        .with_estimator_cache(&disk_cache)
        .run()
        .unwrap();
    assert_eq!(disk_cache.misses(), 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn configure_is_identical_across_thread_counts() {
    let (cluster, gpt) = setup();
    let mut one = PipetteOptions::fast_test();
    one.threads = 1;
    let mut eight = PipetteOptions::fast_test();
    eight.threads = 8;
    let r1 = Pipette::new(&cluster, &gpt, 64, one).run().unwrap();
    let r8 = Pipette::new(&cluster, &gpt, 64, eight).run().unwrap();
    assert_identical(&r1, &r8, "threads 1 vs 8");
}
