//! Fault-drill integration tests: the degradation ladder end to end.
//!
//! Pins the two contractual properties of the robustness layer — the
//! zero-fault path is bit-identical to the plain configurator, and every
//! injected fault degrades gracefully into a typed error or a valid
//! recommendation (never a panic).

use pipette::configurator::{Pipette, PipetteOptions};
use pipette::degraded::run_under_faults;
use pipette::ConfigureError;
use pipette_cluster::{
    presets, Cluster, CorruptPair, FaultPlan, GpuId, RobustProfilingPolicy, StragglerGpu,
};
use pipette_model::GptConfig;
use pipette_obs::Trace;
use pipette_sim::ClusterRun;

fn small_gpt() -> GptConfig {
    GptConfig::new(8, 1024, 16, 2048, 51200)
}

fn options(seed: u64) -> PipetteOptions {
    let mut options = PipetteOptions::fast_test();
    options.seed = seed;
    options
}

#[test]
fn zero_fault_drill_is_bit_identical_to_plain_run() {
    let cluster = presets::mid_range(2).build(42);
    let gpt = small_gpt();
    let plain = Pipette::new(&cluster, &gpt, 64, options(7))
        .run()
        .expect("plain run");
    let outcome = run_under_faults(
        &cluster,
        &gpt,
        64,
        options(7),
        &FaultPlan::default(),
        &RobustProfilingPolicy::default(),
        None,
    )
    .expect("zero-fault drill");

    let rec = &outcome.recommendation;
    assert_eq!(rec.config, plain.config);
    assert_eq!(rec.plan, plain.plan);
    assert_eq!(rec.mapping, plain.mapping);
    assert_eq!(
        rec.estimated_seconds.to_bits(),
        plain.estimated_seconds.to_bits(),
        "zero-fault estimate must be bit-identical"
    );
    assert_eq!(
        rec.memory.predicted_bytes, plain.memory.predicted_bytes,
        "zero-fault memory screen must use a bit-identical estimator"
    );
    assert_eq!(rec.examined, plain.examined);
    assert_eq!(rec.memory_rejected, plain.memory_rejected);
    assert_eq!(rec.alternatives.len(), plain.alternatives.len());

    assert!(outcome.report.is_clean());
    assert!(outcome.excluded_gpus.is_empty());
    assert!(outcome.reconfiguration.is_none());
    assert!(!outcome.used_analytic_fallback);
    assert_eq!(outcome.survivor.topology().num_gpus(), 16);
}

#[test]
fn node_dropout_reconfigures_on_the_survivors() {
    let cluster = presets::mid_range(3).build(11);
    let gpt = small_gpt();
    let plan = FaultPlan {
        failed_gpus: vec![9], // node 1 hosts GPUs 8..16 → cordoned whole
        ..FaultPlan::default()
    };
    let mut trace = Trace::default();
    let outcome = run_under_faults(
        &cluster,
        &gpt,
        64,
        options(3),
        &plan,
        &RobustProfilingPolicy::default(),
        Some(&mut trace),
    )
    .expect("degraded run");

    assert_eq!(outcome.excluded_gpus.len(), 8);
    assert_eq!(outcome.survivor.topology().num_nodes(), 2);
    let rec = &outcome.recommendation;
    assert_eq!(rec.config.num_workers(), 16, "16 GPUs survive");

    // The recommendation must actually run on the surviving subcluster.
    let measured = ClusterRun::new(&outcome.survivor, &gpt)
        .execute(rec.config, &rec.mapping, rec.plan)
        .expect("degraded recommendation must be runnable on survivors");
    assert!(measured.peak_memory_bytes <= outcome.survivor.gpu().memory_bytes);

    let reconf = outcome.reconfiguration.expect("GPUs were lost");
    assert_eq!(reconf.healthy_gpus, 24);
    assert_eq!(reconf.surviving_gpus, 16);
    assert_eq!(reconf.healthy.config.num_workers(), 24);
    assert!(reconf.slowdown_factor.is_finite() && reconf.slowdown_factor > 0.0);

    let kinds: Vec<&str> = trace.events().iter().map(|e| e.kind.kind()).collect();
    assert!(kinds.contains(&"fault_plan"));
    assert!(kinds.iter().filter(|&&k| k == "gpu_excluded").count() == 8);
    assert!(kinds.contains(&"reconfiguration"));
}

#[test]
fn total_sample_loss_falls_back_to_the_analytic_estimator() {
    let cluster = presets::mid_range(2).build(5);
    let gpt = small_gpt();
    let plan = FaultPlan {
        sample_loss_rate: 1.0,
        ..FaultPlan::default()
    };
    let mut trace = Trace::default();
    let outcome = run_under_faults(
        &cluster,
        &gpt,
        64,
        options(1),
        &plan,
        &RobustProfilingPolicy::default(),
        Some(&mut trace),
    )
    .expect("fallback run still completes");

    assert!(outcome.used_analytic_fallback);
    let kinds: Vec<&str> = trace.events().iter().map(|e| e.kind.kind()).collect();
    assert!(kinds.contains(&"fallback"));
    // The analytic screen is conservative but must still admit a config.
    let rec = &outcome.recommendation;
    let measured = ClusterRun::new(&outcome.survivor, &gpt)
        .execute(rec.config, &rec.mapping, rec.plan)
        .expect("analytic-screened recommendation must be runnable");
    assert!(measured.peak_memory_bytes <= cluster.gpu().memory_bytes);
}

#[test]
fn exhausting_every_node_is_a_typed_error() {
    let cluster = presets::mid_range(2).build(5);
    let gpt = small_gpt();
    let plan = FaultPlan {
        failed_nodes: vec![0, 1],
        ..FaultPlan::default()
    };
    let err = run_under_faults(
        &cluster,
        &gpt,
        64,
        options(1),
        &plan,
        &RobustProfilingPolicy::default(),
        None,
    )
    .expect_err("no survivors");
    assert!(matches!(
        err,
        ConfigureError::ClusterExhausted {
            failed_gpus: 16,
            total_gpus: 16
        }
    ));
}

#[test]
fn malformed_plans_surface_as_cluster_errors() {
    let cluster = presets::mid_range(2).build(5);
    let gpt = small_gpt();
    let plan = FaultPlan {
        corrupt_pairs: vec![CorruptPair {
            from_gpu: 0,
            to_gpu: 1,
            kind: "gamma-ray".into(),
        }],
        ..FaultPlan::default()
    };
    let err = run_under_faults(
        &cluster,
        &gpt,
        64,
        options(1),
        &plan,
        &RobustProfilingPolicy::default(),
        None,
    )
    .expect_err("unknown corruption kind");
    assert!(matches!(err, ConfigureError::Cluster(_)));
    assert!(err.to_string().contains("gamma-ray"));
}

#[test]
fn invalid_inputs_are_rejected_before_the_search() {
    let cluster = presets::mid_range(2).build(5);
    let gpt = small_gpt();

    // A negative link smuggled in through deserialization — `set()`
    // rejects bad values, but a serialized cluster is not revalidated on
    // load, so the configurator must catch it. Plant a unique sentinel,
    // then corrupt it in the JSON text.
    let mut matrix = cluster.bandwidth().clone();
    matrix.set(GpuId(2), GpuId(7), 123456.75);
    let tagged = Cluster::new(
        "poisoned",
        cluster.gpu().clone(),
        matrix,
        cluster.profiler(),
    );
    let json = tagged.to_json().expect("serialize");
    assert!(json.contains("123456.75"), "sentinel must serialize");
    let poisoned = Cluster::from_json(&json.replace("123456.75", "-3.0")).expect("parses");
    let err = Pipette::new(&poisoned, &gpt, 64, options(1))
        .run()
        .expect_err("NaN bandwidth");
    assert!(matches!(
        err,
        ConfigureError::InvalidBandwidth { from: 2, to: 7, .. }
    ));

    // A GPU spec with no memory at all.
    let mut gpu = cluster.gpu().clone();
    gpu.memory_bytes = 0;
    let hollow = Cluster::new(
        "hollow",
        gpu,
        cluster.bandwidth().clone(),
        cluster.profiler(),
    );
    let err = Pipette::new(&hollow, &gpt, 64, options(1))
        .run()
        .expect_err("zero-memory GPUs");
    assert!(matches!(err, ConfigureError::InvalidCluster { .. }));
}

/// No fault mix may panic: every plan either configures the survivors or
/// returns a typed error.
#[test]
fn fault_plan_fuzz_seeds_never_panic() {
    let cluster = presets::mid_range(2).build(5);
    let gpt = small_gpt();
    let plans = [
        FaultPlan {
            seed: 1,
            measurement_failure_rate: 0.9,
            ..FaultPlan::default()
        },
        FaultPlan {
            seed: 2,
            straggler_gpus: vec![StragglerGpu {
                gpu: 3,
                slowdown: 4.0,
            }],
            corrupt_pairs: vec![
                CorruptPair {
                    from_gpu: 0,
                    to_gpu: 8,
                    kind: "nan".into(),
                },
                CorruptPair {
                    from_gpu: 8,
                    to_gpu: 0,
                    kind: "outlier".into(),
                },
            ],
            ..FaultPlan::default()
        },
        FaultPlan {
            seed: 3,
            failed_nodes: vec![1],
            sample_loss_rate: 0.5,
            measurement_failure_rate: 0.25,
            ..FaultPlan::default()
        },
        FaultPlan {
            seed: 4,
            failed_gpus: vec![0, 15],
            ..FaultPlan::default()
        },
    ];
    for plan in &plans {
        let mut trace = Trace::default();
        let result = run_under_faults(
            &cluster,
            &gpt,
            64,
            options(plan.seed),
            plan,
            &RobustProfilingPolicy::default(),
            Some(&mut trace),
        );
        match result {
            Ok(outcome) => {
                assert!(outcome.recommendation.estimated_seconds > 0.0);
            }
            Err(e) => {
                // Typed, displayable errors only.
                assert!(!e.to_string().is_empty());
            }
        }
    }
}
