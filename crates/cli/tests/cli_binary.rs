//! End-to-end tests driving the compiled `pipette-cli` binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pipette-cli"))
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = bin().output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn example_spec_is_valid_json() {
    let out = bin().arg("example-spec").output().expect("binary runs");
    assert!(out.status.success());
    let spec: pipette_cli::JobSpec =
        serde_json::from_slice(&out.stdout).expect("printed spec must parse");
    assert_eq!(spec.global_batch, 256);
}

#[test]
fn configure_runs_end_to_end_from_a_file() {
    let dir = std::env::temp_dir().join("pipette_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("job.json");
    std::fs::write(
        &path,
        r#"{
            "cluster": {"preset": "mid-range", "nodes": 2, "seed": 3},
            "model": {"layers": 8, "hidden": 1024, "heads": 16},
            "global_batch": 64,
            "max_micro": 2,
            "sa_iterations": 800,
            "memory_training_iterations": 1200
        }"#,
    )
    .unwrap();
    let out = bin()
        .args(["configure", path.to_str().unwrap(), "--json"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report: pipette_cli::CliReport = serde_json::from_slice(&out.stdout).expect("json report");
    assert_eq!(report.pp * report.tp * report.dp, 16);
}

#[test]
fn import_mpigraph_produces_a_loadable_cluster() {
    let dir = std::env::temp_dir().join("pipette_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("table.txt");
    std::fs::write(&path, "0 9500 11000\n9600 0 10000\n11100 9900 0\n").unwrap();
    let out = bin()
        .args(["import-mpigraph", path.to_str().unwrap(), "8"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let cluster =
        pipette_cluster::Cluster::from_json(&String::from_utf8_lossy(&out.stdout)).expect("json");
    assert_eq!(cluster.topology().num_nodes(), 3);
    assert_eq!(cluster.topology().gpus_per_node(), 8);
}

#[test]
fn explain_with_trace_out_writes_parseable_jsonl() {
    let dir = std::env::temp_dir().join("pipette_cli_test_explain");
    std::fs::create_dir_all(&dir).unwrap();
    let job = dir.join("job.json");
    std::fs::write(
        &job,
        r#"{
            "cluster": {"preset": "mid-range", "nodes": 2, "seed": 3},
            "model": {"layers": 8, "hidden": 1024, "heads": 16},
            "global_batch": 64,
            "max_micro": 2,
            "sa_iterations": 800,
            "memory_training_iterations": 1200
        }"#,
    )
    .unwrap();
    let trace_path = dir.join("trace.jsonl");
    let out = bin()
        .args([
            "explain",
            job.to_str().unwrap(),
            "--trace-out",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("latency breakdown"), "{stdout}");
    assert!(stdout.contains("recommendation:"), "{stdout}");

    // Every line must parse as a JSON object carrying at least the seq
    // and kind envelope fields (extra payload fields are ignored here).
    #[derive(serde::Deserialize)]
    struct TraceLine {
        seq: u64,
        kind: String,
    }
    let jsonl = std::fs::read_to_string(&trace_path).expect("trace written");
    let mut kinds = std::collections::BTreeSet::new();
    for (i, line) in jsonl.lines().enumerate() {
        let v: TraceLine = serde_json::from_str(line).expect("each line is JSON");
        assert_eq!(v.seq, i as u64, "seq is the line index");
        kinds.insert(v.kind);
    }
    for kind in [
        "run_start",
        "mem_train",
        "latency_estimate",
        "recommendation",
    ] {
        assert!(kinds.contains(kind), "missing {kind} in {kinds:?}");
    }
}

#[test]
fn trace_out_without_a_path_is_an_error() {
    let out = bin()
        .args(["configure", "job.json", "--trace-out"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--trace-out"));
}

#[test]
fn drill_replays_a_fault_plan_end_to_end() {
    let dir = std::env::temp_dir().join("pipette_cli_test_drill");
    std::fs::create_dir_all(&dir).unwrap();
    let job = dir.join("job.json");
    std::fs::write(
        &job,
        r#"{
            "cluster": {"preset": "mid-range", "nodes": 3, "seed": 3},
            "model": {"layers": 8, "hidden": 1024, "heads": 16},
            "global_batch": 64,
            "max_micro": 2,
            "sa_iterations": 800,
            "memory_training_iterations": 1200
        }"#,
    )
    .unwrap();
    let plan = dir.join("faults.json");
    std::fs::write(
        &plan,
        r#"{
            "seed": 5,
            "failed_nodes": [2],
            "corrupt_pairs": [ { "from_gpu": 0, "to_gpu": 8, "kind": "nan" } ]
        }"#,
    )
    .unwrap();
    let trace_path = dir.join("trace.jsonl");
    let out = bin()
        .args([
            "drill",
            job.to_str().unwrap(),
            "--faults",
            plan.to_str().unwrap(),
            "--json",
            "--trace-out",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report: pipette_cli::DrillReport = serde_json::from_slice(&out.stdout).expect("json");
    assert_eq!(report.healthy_gpus, 24);
    assert_eq!(report.surviving_gpus, 16);
    assert_eq!(report.excluded_gpus.len(), 8);
    assert!(report.profiler_retries >= 1, "the corrupt pair retries");
    assert_eq!(
        report.recommendation.pp * report.recommendation.tp * report.recommendation.dp,
        16
    );

    let jsonl = std::fs::read_to_string(&trace_path).expect("trace written");
    for kind in [
        "fault_plan",
        "gpu_excluded",
        "profiler_retry",
        "reconfiguration",
    ] {
        assert!(
            jsonl.contains(&format!("\"kind\":\"{kind}\"")),
            "missing {kind} event in trace"
        );
    }
}

#[test]
fn trace_subcommands_summarize_diff_and_check_a_real_run() {
    let dir = std::env::temp_dir().join("pipette_cli_test_trace");
    std::fs::create_dir_all(&dir).unwrap();
    let job = dir.join("job.json");
    std::fs::write(
        &job,
        r#"{
            "cluster": {"preset": "mid-range", "nodes": 2, "seed": 3},
            "model": {"layers": 8, "hidden": 1024, "heads": 16},
            "global_batch": 64,
            "max_micro": 2,
            "sa_iterations": 800,
            "memory_training_iterations": 1200
        }"#,
    )
    .unwrap();
    // Two identical-seed runs.
    let (a, b) = (dir.join("a.jsonl"), dir.join("b.jsonl"));
    for path in [&a, &b] {
        let out = bin()
            .args([
                "configure",
                job.to_str().unwrap(),
                "--trace-out",
                path.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // summarize: span rollups over a real trace.
    let out = bin()
        .args(["trace", "summarize", a.to_str().unwrap(), "--top", "3"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in ["spans:", "mem_train", "estimates", "anneal", "hot spans"] {
        assert!(stdout.contains(needle), "missing {needle:?} in:\n{stdout}");
    }

    // flame: indented span forest.
    let out = bin()
        .args(["trace", "flame", a.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let flame = String::from_utf8_lossy(&out.stdout);
    assert!(flame.contains("sa_chain"), "{flame}");

    // diff of identical-seed runs: zero drift, exit 0.
    let out = bin()
        .args(["trace", "diff", a.to_str().unwrap(), b.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "identical-seed traces must not drift: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("zero drift"));

    // diff against a genuinely different run: drift, exit 1.
    let other_job = dir.join("job2.json");
    std::fs::write(
        &other_job,
        r#"{
            "cluster": {"preset": "mid-range", "nodes": 2, "seed": 3},
            "model": {"layers": 8, "hidden": 1024, "heads": 16},
            "global_batch": 64,
            "max_micro": 2,
            "sa_iterations": 900,
            "memory_training_iterations": 1200
        }"#,
    )
    .unwrap();
    let c = dir.join("c.jsonl");
    let out = bin()
        .args([
            "configure",
            other_job.to_str().unwrap(),
            "--trace-out",
            c.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = bin()
        .args(["trace", "diff", a.to_str().unwrap(), c.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success(), "drift must exit nonzero");
    assert!(String::from_utf8_lossy(&out.stdout).contains("drift detected"));

    // check: a loose manifest passes (exit 0), a tight one fails (exit 1).
    let loose = dir.join("loose.json");
    std::fs::write(
        &loose,
        r#"{"schema":"pipette-trace-budgets/v1","spans":[{"span":"anneal","unit":"evals","max_count":1,"require":true}]}"#,
    )
    .unwrap();
    let out = bin()
        .args([
            "trace",
            "check",
            a.to_str().unwrap(),
            "--budgets",
            loose.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "loose budgets must pass: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("PASS"));
    let tight = dir.join("tight.json");
    std::fs::write(
        &tight,
        r#"{"schema":"pipette-trace-budgets/v1","spans":[{"span":"anneal","max_cost":1}]}"#,
    )
    .unwrap();
    let out = bin()
        .args([
            "trace",
            "check",
            a.to_str().unwrap(),
            "--budgets",
            tight.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "violated budget must exit nonzero");
    assert!(String::from_utf8_lossy(&out.stdout).contains("FAIL"));
}

#[test]
fn trace_check_without_budgets_is_rejected() {
    let out = bin()
        .args(["trace", "check", "whatever.jsonl"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--budgets"));
}

#[test]
fn explain_prints_the_metrics_section() {
    let dir = std::env::temp_dir().join("pipette_cli_test_metrics");
    std::fs::create_dir_all(&dir).unwrap();
    let job = dir.join("job.json");
    std::fs::write(
        &job,
        r#"{
            "cluster": {"preset": "mid-range", "nodes": 2, "seed": 3},
            "model": {"layers": 8, "hidden": 1024, "heads": 16},
            "global_batch": 64,
            "max_micro": 2,
            "sa_iterations": 800,
            "memory_training_iterations": 1200
        }"#,
    )
    .unwrap();
    let out = bin()
        .args(["explain", job.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "run metrics (from the telemetry trace):",
        "candidates_examined",
        "sa_evaluations",
        "candidate_estimate_seconds",
    ] {
        assert!(stdout.contains(needle), "missing {needle:?} in:\n{stdout}");
    }
}

#[test]
fn drill_without_faults_is_rejected() {
    let out = bin().args(["drill", "job.json"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--faults"));
}

#[test]
fn unknown_spec_fields_fail_with_an_actionable_message() {
    let dir = std::env::temp_dir().join("pipette_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("typo.json");
    std::fs::write(
        &path,
        r#"{
            "cluster": {"preset": "mid-range", "nodes": 2},
            "model": {"preset": "gpt-1.1b"},
            "global_bacth": 64
        }"#,
    )
    .unwrap();
    let out = bin()
        .args(["configure", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("global_bacth"), "{stderr}");
    assert!(
        stderr.contains("global_batch"),
        "must suggest valid fields: {stderr}"
    );
}

#[test]
fn example_fault_plan_round_trips_through_the_strict_parser() {
    let out = bin()
        .args(["example-spec", "--faults"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let plan = pipette_cli::parse_fault_plan_strict(&text).expect("example plan is valid");
    assert_eq!(plan.failed_gpus, vec![12]);
    assert_eq!(plan.corrupt_pairs.len(), 1);
}

#[test]
fn malformed_spec_fails_cleanly() {
    let dir = std::env::temp_dir().join("pipette_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.json");
    std::fs::write(&path, "{ not json").unwrap();
    let out = bin()
        .args(["configure", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}
