//! The `pipette trace` analytics subcommands.
//!
//! Everything here operates offline on JSONL trace files written with
//! `--trace-out` (or by the perf baseline): no cluster, no search, just
//! deterministic text reports over the span stream.
//!
//! - `summarize` — stream totals, per-name span rollups, hot spans,
//!   per-kind event counts.
//! - `flame` — the span forest with bars proportional to enclosed
//!   events.
//! - `diff` — structural comparison of two traces; exits nonzero on
//!   drift, so two identical-seed runs gate bit-reproducibility.
//! - `check` — evaluates a committed budget manifest
//!   (`trace_budgets.json`) against a trace; exits nonzero on any
//!   violated ceiling, which is the CI perf gate.

use crate::jsonscan::{self, JsonValue};
use pipette_obs::analysis::{
    diff_jsonl, render_budget_report, render_diff, render_flame, render_summary,
    span_tree_from_jsonl, BudgetManifest,
};
use std::error::Error;
use std::fmt::Write as _;

/// What a `trace` subcommand produced: the report text plus whether the
/// invocation should exit nonzero (drift found, budget violated).
#[derive(Debug, Clone)]
pub struct TraceCmdOutput {
    /// The rendered report, ready to print.
    pub text: String,
    /// `false` when the command found drift or a budget violation.
    pub ok: bool,
}

fn read(path: &str) -> Result<String, Box<dyn Error>> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read trace {path}: {e}").into())
}

/// `trace summarize <trace.jsonl> [--top N]`.
///
/// # Errors
///
/// I/O, JSON, or span-balance errors from the trace file.
pub fn trace_summarize(path: &str, top: usize) -> Result<TraceCmdOutput, Box<dyn Error>> {
    let text = read(path)?;
    let tree = span_tree_from_jsonl(&text)?;
    let mut rendered = render_summary(&tree, top);
    rendered.push_str(&render_counters(&text));
    Ok(TraceCmdOutput {
        text: rendered,
        ok: true,
    })
}

/// Renders the trace's `counter` events as a `name = value` section —
/// how serve-loop accounting (`serve_degraded_requests`,
/// `serve_breaker_trips`, …) surfaces in `trace summarize`. Counters are
/// sorted by name; empty when the trace carries none.
fn render_counters(text: &str) -> String {
    let mut counters: Vec<(String, u64)> = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let Ok(doc) = jsonscan::parse(line) else {
            continue;
        };
        if !matches!(doc.get("kind"), Some(JsonValue::String(k)) if k == "counter") {
            continue;
        }
        if let (Some(JsonValue::String(name)), Some(JsonValue::Number(value))) =
            (doc.get("name"), doc.get("value"))
        {
            counters.push((name.clone(), *value as u64));
        }
    }
    if counters.is_empty() {
        return String::new();
    }
    counters.sort();
    let width = counters.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    let mut out = String::from("\ncounters:\n");
    for (name, value) in &counters {
        let _ = writeln!(out, "  {name:<width$} = {value}");
    }
    out
}

/// `trace flame <trace.jsonl>`.
///
/// # Errors
///
/// I/O, JSON, or span-balance errors from the trace file.
pub fn trace_flame(path: &str) -> Result<TraceCmdOutput, Box<dyn Error>> {
    let tree = span_tree_from_jsonl(&read(path)?)?;
    Ok(TraceCmdOutput {
        text: render_flame(&tree),
        ok: true,
    })
}

/// `trace diff <a.jsonl> <b.jsonl>`: `ok` is false when the stripped
/// streams differ anywhere.
///
/// # Errors
///
/// I/O, JSON, or span-balance errors from either trace file.
pub fn trace_diff(left: &str, right: &str) -> Result<TraceCmdOutput, Box<dyn Error>> {
    let diff = diff_jsonl(&read(left)?, &read(right)?)?;
    Ok(TraceCmdOutput {
        text: render_diff(&diff),
        ok: !diff.has_drift(),
    })
}

/// `trace check <trace.jsonl> --budgets <manifest.json>`: `ok` is false
/// when any ceiling is violated.
///
/// # Errors
///
/// I/O, JSON, span-balance, or manifest-format errors.
pub fn trace_check(path: &str, budgets: &str) -> Result<TraceCmdOutput, Box<dyn Error>> {
    let manifest_text = std::fs::read_to_string(budgets)
        .map_err(|e| format!("cannot read budget manifest {budgets}: {e}"))?;
    let manifest = BudgetManifest::parse(&manifest_text)?;
    let tree = span_tree_from_jsonl(&read(path)?)?;
    let report = manifest.check(&tree);
    Ok(TraceCmdOutput {
        text: render_budget_report(&report),
        ok: report.ok(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipette_obs::{CostUnit, EventKind, Trace, TraceConfig};

    fn write_sample(dir: &std::path::Path, name: &str, iterations: usize) -> String {
        let mut t = Trace::new(TraceConfig::default());
        t.push(EventKind::RunStart {
            schema: 1,
            seed: 7,
            gpus: 8,
            global_batch: 32,
        });
        let span = t.open_span("mem_train");
        for i in 0..iterations {
            t.push(EventKind::MemLoss {
                iteration: i,
                loss: 1.0 / (i + 1) as f64,
            });
        }
        t.close_span(span, CostUnit::Iterations, iterations as u64);
        let path = dir.join(name);
        t.write_jsonl(&path).expect("writable tempdir");
        path.display().to_string()
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pipette-trace-cmd-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tempdir");
        dir
    }

    #[test]
    fn summarize_and_flame_render() {
        let dir = tempdir("summarize");
        let path = write_sample(&dir, "a.jsonl", 4);
        let summary = trace_summarize(&path, 5).expect("valid trace");
        assert!(summary.ok);
        assert!(summary.text.contains("mem_train"));
        let flame = trace_flame(&path).expect("valid trace");
        assert!(flame.ok);
        assert!(flame.text.contains("mem_train"));
    }

    #[test]
    fn summarize_surfaces_counters() {
        let dir = tempdir("counters");
        let mut t = Trace::new(TraceConfig::default());
        let span = t.open_span("serve");
        t.push(EventKind::Counter {
            name: "serve_degraded_requests".to_string(),
            value: 3,
        });
        t.push(EventKind::Counter {
            name: "serve_breaker_trips".to_string(),
            value: 1,
        });
        t.close_span(span, CostUnit::Requests, 5);
        let path = dir.join("serve.jsonl");
        t.write_jsonl(&path).expect("writable tempdir");
        let summary = trace_summarize(&path.display().to_string(), 5).expect("valid trace");
        assert!(summary.text.contains("counters:"), "{}", summary.text);
        assert!(
            summary.text.contains("serve_degraded_requests = 3"),
            "{}",
            summary.text
        );
        assert!(
            summary.text.contains("serve_breaker_trips"),
            "{}",
            summary.text
        );
        // A trace without counter events keeps the old shape.
        let plain = write_sample(&dir, "plain.jsonl", 2);
        let plain_summary = trace_summarize(&plain, 5).expect("valid trace");
        assert!(!plain_summary.text.contains("counters:"));
    }

    #[test]
    fn diff_flags_drift_and_clears_identical() {
        let dir = tempdir("diff");
        let a = write_sample(&dir, "a.jsonl", 4);
        let b = write_sample(&dir, "b.jsonl", 4);
        let c = write_sample(&dir, "c.jsonl", 6);
        let same = trace_diff(&a, &b).expect("valid traces");
        assert!(same.ok, "identical traces must report zero drift");
        assert!(same.text.contains("zero drift"));
        let drift = trace_diff(&a, &c).expect("valid traces");
        assert!(!drift.ok);
        assert!(drift.text.contains("drift detected"));
    }

    #[test]
    fn check_passes_and_fails_by_manifest() {
        let dir = tempdir("check");
        let trace = write_sample(&dir, "a.jsonl", 4);
        let loose = dir.join("loose.json");
        std::fs::write(
            &loose,
            r#"{"schema":"pipette-trace-budgets/v1","spans":[{"span":"mem_train","max_cost":100,"require":true}]}"#,
        )
        .expect("writable tempdir");
        let tight = dir.join("tight.json");
        std::fs::write(
            &tight,
            r#"{"schema":"pipette-trace-budgets/v1","spans":[{"span":"mem_train","max_cost":1}]}"#,
        )
        .expect("writable tempdir");
        let pass = trace_check(&trace, &loose.display().to_string()).expect("valid");
        assert!(pass.ok);
        assert!(pass.text.contains("PASS"));
        let fail = trace_check(&trace, &tight.display().to_string()).expect("valid");
        assert!(!fail.ok);
        assert!(fail.text.contains("FAIL"));
    }
}
