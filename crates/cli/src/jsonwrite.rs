//! Deterministic hand-rolled JSON writing.
//!
//! The vendored `serde_json` pretty-printer is fine for humans but its
//! output is not something we want CI or the serving loop to depend on:
//! machine-readable surfaces (`drill --json`, the `pipette serve`
//! response stream) need byte-stable output under a writer this repo
//! controls. This module renders with a fixed field order, shortest
//! round-trip floats, and no whitespace — the same conventions as the
//! `pipette-obs` event writer — so identical inputs always produce
//! byte-identical JSON.

use crate::jsonscan::JsonValue;
use crate::report::DrillReport;
use std::fmt::Write as _;

/// Minimal JSON object writer with a fixed field order.
pub(crate) struct Obj<'a> {
    out: &'a mut String,
}

impl<'a> Obj<'a> {
    pub(crate) fn open(out: &'a mut String) -> Self {
        out.push('{');
        Self { out }
    }

    pub(crate) fn key(&mut self, name: &str) {
        if !self.out.ends_with('{') {
            self.out.push(',');
        }
        push_json_string(self.out, name);
        self.out.push(':');
    }

    pub(crate) fn uint(&mut self, name: &str, v: u64) {
        self.key(name);
        let _ = write!(self.out, "{v}");
    }

    pub(crate) fn float(&mut self, name: &str, v: f64) {
        self.key(name);
        push_f64(self.out, v);
    }

    pub(crate) fn boolean(&mut self, name: &str, v: bool) {
        self.key(name);
        self.out.push_str(if v { "true" } else { "false" });
    }

    pub(crate) fn string(&mut self, name: &str, v: &str) {
        self.key(name);
        push_json_string(self.out, v);
    }

    /// Writes a pre-rendered JSON value (object, array, `null`) verbatim.
    pub(crate) fn raw(&mut self, name: &str, v: &str) {
        self.key(name);
        self.out.push_str(v);
    }

    pub(crate) fn close(self) {
        self.out.push('}');
    }
}

/// Shortest-round-trip float; non-finite values become `null` (JSON has
/// no NaN/Inf).
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders a parsed [`JsonValue`] back to canonical single-line JSON:
/// source key order, no whitespace, shortest round-trip numbers. Used to
/// re-render envelope subtrees (`job`, `faults`) into standalone
/// documents for the strict spec parsers, and as the canonical form
/// hashed for the profiled-bandwidth store.
pub fn render_value(value: &JsonValue) -> String {
    let mut out = String::new();
    push_value(&mut out, value);
    out
}

fn push_value(out: &mut String, value: &JsonValue) {
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Number(n) => push_f64(out, *n),
        JsonValue::String(s) => push_json_string(out, s),
        JsonValue::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_value(out, item);
            }
            out.push(']');
        }
        JsonValue::Object(members) => {
            out.push('{');
            for (i, (k, v)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_json_string(out, k);
                out.push(':');
                push_value(out, v);
            }
            out.push('}');
        }
    }
}

/// Renders a [`CliReport`](crate::report::CliReport) as one
/// deterministic JSON object — the `result` payload of serve responses
/// and the `recommendation` member of the drill report.
pub fn cli_report_json(rec: &crate::report::CliReport) -> String {
    let mut rec_json = String::new();
    let mut o = Obj::open(&mut rec_json);
    o.uint("pp", rec.pp as u64);
    o.uint("tp", rec.tp as u64);
    o.uint("dp", rec.dp as u64);
    o.uint("micro_batch", rec.micro_batch);
    o.uint("n_microbatches", rec.n_microbatches);
    o.float("estimated_seconds", rec.estimated_seconds);
    o.float("measured_seconds", rec.measured_seconds);
    o.float("peak_memory_gib", rec.peak_memory_gib);
    o.uint("examined", rec.examined as u64);
    o.uint("memory_rejected", rec.memory_rejected as u64);
    let mut mapping = String::from("[");
    for (i, g) in rec.mapping.iter().enumerate() {
        if i > 0 {
            mapping.push(',');
        }
        let _ = write!(mapping, "{g}");
    }
    mapping.push(']');
    o.raw("mapping", &mapping);
    o.uint("replicas", rec.replicas as u64);
    match &rec.estimator_cache {
        Some(c) => {
            let mut cache = String::new();
            let mut co = Obj::open(&mut cache);
            co.uint("hits", c.hits);
            co.uint("misses", c.misses);
            co.uint("corrupt", c.corrupt);
            co.close();
            o.raw("estimator_cache", &cache);
        }
        None => o.raw("estimator_cache", "null"),
    }
    o.close();
    rec_json
}

/// Renders a [`DrillReport`] as one deterministic JSON line — the
/// machine-readable `pipette drill --json` output CI parses.
pub fn drill_report_json(report: &DrillReport) -> String {
    let mut out = String::new();
    let mut o = Obj::open(&mut out);
    o.raw("recommendation", &cli_report_json(&report.recommendation));
    o.uint("healthy_gpus", report.healthy_gpus as u64);
    o.uint("surviving_gpus", report.surviving_gpus as u64);
    let mut excluded = String::from("[");
    for (i, g) in report.excluded_gpus.iter().enumerate() {
        if i > 0 {
            excluded.push(',');
        }
        let _ = write!(excluded, "{g}");
    }
    excluded.push(']');
    o.raw("excluded_gpus", &excluded);
    o.uint("profiler_retries", report.profiler_retries as u64);
    o.uint("imputed_pairs", report.imputed_pairs as u64);
    o.uint("corrupt_samples", report.corrupt_samples as u64);
    o.boolean("analytic_memory_fallback", report.analytic_memory_fallback);
    match report.slowdown_factor {
        Some(f) => o.float("slowdown_factor", f),
        None => o.raw("slowdown_factor", "null"),
    }
    o.uint("degraded_requests", report.degraded_requests);
    o.close();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonscan;

    #[test]
    fn render_value_round_trips_canonically() {
        let src = r#"{"b": 1, "a": [true, null, "x\n"], "n": -2.5}"#;
        let parsed = jsonscan::parse(src).unwrap();
        let rendered = render_value(&parsed);
        // Source key order, no whitespace, shortest floats.
        assert_eq!(rendered, r#"{"b":1,"a":[true,null,"x\n"],"n":-2.5}"#);
        // Canonical form is a fixed point.
        let reparsed = jsonscan::parse(&rendered).unwrap();
        assert_eq!(render_value(&reparsed), rendered);
    }

    #[test]
    fn drill_report_renders_every_ci_field() {
        use crate::report::CliReport;
        let report = DrillReport {
            recommendation: CliReport {
                pp: 2,
                tp: 2,
                dp: 3,
                micro_batch: 4,
                n_microbatches: 8,
                estimated_seconds: 1.25,
                measured_seconds: 1.5,
                peak_memory_gib: 10.0,
                examined: 30,
                memory_rejected: 5,
                mapping: vec![0, 2, 1],
                replicas: 1,
                estimator_cache: None,
            },
            healthy_gpus: 16,
            surviving_gpus: 12,
            excluded_gpus: vec![3, 7, 11, 15],
            profiler_retries: 2,
            imputed_pairs: 4,
            corrupt_samples: 9,
            analytic_memory_fallback: true,
            slowdown_factor: Some(1.4),
            degraded_requests: 0,
        };
        let json = drill_report_json(&report);
        for needle in [
            r#""recommendation":{"pp":2,"tp":2,"dp":3"#,
            r#""mapping":[0,2,1]"#,
            r#""estimator_cache":null"#,
            r#""healthy_gpus":16"#,
            r#""surviving_gpus":12"#,
            r#""excluded_gpus":[3,7,11,15]"#,
            r#""analytic_memory_fallback":true"#,
            r#""slowdown_factor":1.4"#,
            r#""degraded_requests":0"#,
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        // The writer's output parses back under the strict scanner.
        assert!(jsonscan::parse(&json).is_ok());
    }
}
