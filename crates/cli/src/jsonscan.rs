//! A minimal JSON reader for *shape* validation.
//!
//! The vendored `serde_json` deliberately omits a dynamic `Value` type
//! and `deny_unknown_fields`, so the CLI validates job specs itself: this
//! module parses JSON text into a tiny tree the spec layer walks to
//! reject unknown fields before the lenient serde pass fills in
//! defaults. It accepts exactly the JSON grammar (RFC 8259) minus no
//! extensions; anything it rejects, `serde_json::from_str` would too.

use std::fmt;

/// A parsed JSON value, just enough structure to walk keys and ranges.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as `f64`; specs carry nothing needing more).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order (duplicate keys are a parse error).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The member keys of an object (empty for non-objects).
    pub fn keys(&self) -> Vec<&str> {
        match self {
            JsonValue::Object(members) => members.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// A short name for the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "boolean",
            JsonValue::Number(_) => "number",
            JsonValue::String(_) => "string",
            JsonValue::Array(_) => "array",
            JsonValue::Object(_) => "object",
        }
    }
}

/// A syntax error with byte offset, so spec errors can point at the spot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (one value plus trailing whitespace).
///
/// # Errors
///
/// [`JsonError`] describing the first syntax problem.
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect_byte(b'{')?;
        let mut members: Vec<(String, JsonValue)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are rejected rather than
                            // combined: spec files have no use for them.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| b & 0b1100_0000 == 0b1000_0000)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        // pipette-lint: allow(D2) -- the range spans whole chars of
                        // an input that arrived as &str, so it is valid UTF-8
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input was a &str"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|v| v.is_finite())
            .map(JsonValue::Number)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, -2.5, "x\n"], "b": {"c": true, "d": null}}"#).unwrap();
        assert_eq!(v.keys(), vec!["a", "b"]);
        assert_eq!(
            v.get("a"),
            Some(&JsonValue::Array(vec![
                JsonValue::Number(1.0),
                JsonValue::Number(-2.5),
                JsonValue::String("x\n".into()),
            ]))
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\": 1,}",
            "[1 2]",
            "{\"a\": 1} trailing",
            "{\"a\": 1, \"a\": 2}",
            "\"unterminated",
            "01a",
            "{\"a\": Infinity}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn reports_offsets() {
        let err = parse("{\"a\": nope}").unwrap_err();
        assert!(err.offset > 0);
        assert!(err.to_string().contains("byte"));
    }
}
