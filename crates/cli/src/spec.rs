//! The JSON job specification the CLI consumes.
//!
//! ```json
//! {
//!   "cluster": { "preset": "mid-range", "nodes": 8, "seed": 42 },
//!   "model":   { "preset": "gpt-1.1b" },
//!   "global_batch": 256,
//!   "max_micro": 8,
//!   "worker_dedication": true,
//!   "sa_iterations": 30000,
//!   "seed": 7
//! }
//! ```
//!
//! `model` may instead spell out hyperparameters:
//! `{ "layers": 24, "hidden": 1920, "heads": 24, "seq_len": 2048,
//!    "vocab": 51200 }`.

use crate::jsonscan::{self, JsonValue};
use pipette_cluster::{presets, Cluster, FaultPlan};
use pipette_model::GptConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which synthetic cluster to build.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// `"mid-range"` (V100/EDR) or `"high-end"` (A100/HDR).
    pub preset: String,
    /// Number of 8-GPU nodes.
    pub nodes: usize,
    /// Seed realizing the heterogeneous bandwidth matrix.
    #[serde(default)]
    pub seed: u64,
}

/// The model to train: a named preset or explicit hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(untagged)]
pub enum ModelSpec {
    /// A named preset, e.g. `{"preset": "gpt-3.1b"}`.
    Preset {
        /// One of `gpt-1.1b`, `gpt-3.1b`, `gpt-8.1b`, `gpt-11.1b`.
        preset: String,
    },
    /// Explicit hyperparameters.
    Custom {
        /// Transformer layers.
        layers: usize,
        /// Hidden dimension.
        hidden: usize,
        /// Attention heads.
        heads: usize,
        /// Sequence length (default 2048).
        #[serde(default = "default_seq")]
        seq_len: usize,
        /// Vocabulary size (default 51200).
        #[serde(default = "default_vocab")]
        vocab: usize,
    },
}

fn default_seq() -> usize {
    2048
}

fn default_vocab() -> usize {
    51200
}

/// The full job specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobSpec {
    /// Cluster to configure for.
    pub cluster: ClusterSpec,
    /// Model to train.
    pub model: ModelSpec,
    /// Samples per optimizer step.
    pub global_batch: u64,
    /// Largest microbatch considered (default 8).
    #[serde(default = "default_micro")]
    pub max_micro: u64,
    /// Enable fine-grained worker dedication (default true).
    #[serde(default = "default_true")]
    pub worker_dedication: bool,
    /// Simulated-annealing iterations per candidate (default 30000).
    #[serde(default = "default_sa")]
    pub sa_iterations: usize,
    /// Search seed (default 0).
    #[serde(default)]
    pub seed: u64,
    /// Parallel-tempering replicas per SA pass (default 1 = classic
    /// single chain). More replicas search a temperature ladder with
    /// deterministic state exchange; results stay machine-independent
    /// because this is an explicit choice, never derived from core count.
    #[serde(default = "default_replicas")]
    pub replicas: usize,
    /// Iterations between tempering exchange rounds (default 512;
    /// ignored when `replicas` is 1).
    #[serde(default = "default_exchange_interval")]
    pub exchange_interval: usize,
    /// Memory-estimator training iterations (default 12000; lower for
    /// quick runs).
    #[serde(default = "default_mem_iterations")]
    pub memory_training_iterations: usize,
    /// Directory for the on-disk trained-estimator cache. When set,
    /// repeated `configure` runs with identical training inputs reload
    /// the estimator (bit-exact) instead of retraining.
    #[serde(default)]
    pub estimator_cache_dir: Option<String>,
}

fn default_mem_iterations() -> usize {
    12_000
}

fn default_micro() -> u64 {
    8
}

fn default_true() -> bool {
    true
}

fn default_sa() -> usize {
    30_000
}

fn default_replicas() -> usize {
    1
}

fn default_exchange_interval() -> usize {
    512
}

/// Errors turning a spec into concrete objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// Unknown cluster preset name.
    UnknownCluster(String),
    /// Unknown model preset name.
    UnknownModel(String),
    /// A field the spec schema does not define (usually a typo).
    UnknownField {
        /// Where the field appeared, e.g. `"cluster"`.
        context: String,
        /// The offending key.
        field: String,
        /// The keys that are accepted there.
        allowed: &'static str,
    },
    /// A required field is absent.
    MissingField {
        /// Where the field was expected.
        context: String,
        /// The missing key.
        field: &'static str,
    },
    /// A field parsed but its value is outside the supported range.
    OutOfRange {
        /// The offending field.
        field: String,
        /// What the value must satisfy.
        reason: String,
    },
    /// The document is not valid JSON (or not an object).
    Malformed(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownCluster(name) => {
                write!(f, "unknown cluster preset {name:?} (try \"mid-range\" or \"high-end\")")
            }
            SpecError::UnknownModel(name) => write!(
                f,
                "unknown model preset {name:?} (try \"gpt-1.1b\", \"gpt-3.1b\", \"gpt-8.1b\", \"gpt-11.1b\")"
            ),
            SpecError::UnknownField {
                context,
                field,
                allowed,
            } => write!(
                f,
                "unknown field {field:?} in {context} (accepted fields: {allowed})"
            ),
            SpecError::MissingField { context, field } => {
                write!(f, "{context} is missing required field {field:?}")
            }
            SpecError::OutOfRange { field, reason } => {
                write!(f, "invalid {field}: {reason}")
            }
            SpecError::Malformed(reason) => write!(f, "malformed spec: {reason}"),
        }
    }
}

impl std::error::Error for SpecError {}

const TOP_FIELDS: &str = "cluster, model, global_batch, max_micro, worker_dedication, \
     sa_iterations, seed, replicas, exchange_interval, memory_training_iterations, \
     estimator_cache_dir";
const CLUSTER_FIELDS: &str = "preset, nodes, seed";
const MODEL_FIELDS: &str = "preset — or layers, hidden, heads, seq_len, vocab";
const PLAN_FIELDS: &str = "seed, degraded_links, straggler_gpus, failed_gpus, failed_nodes, \
     corrupt_pairs, measurement_failure_rate, sample_loss_rate, drift";

/// Checks that every key of `value` (which must be an object) is in
/// `allowed`, and that every `required` key is present.
fn check_fields(
    value: &JsonValue,
    context: &str,
    allowed: &[&str],
    allowed_msg: &'static str,
    required: &[&'static str],
) -> Result<(), SpecError> {
    if !matches!(value, JsonValue::Object(_)) {
        return Err(SpecError::Malformed(format!(
            "{context} must be an object, got {}",
            value.type_name()
        )));
    }
    for key in value.keys() {
        if !allowed.contains(&key) {
            return Err(SpecError::UnknownField {
                context: context.to_owned(),
                field: key.to_owned(),
                allowed: allowed_msg,
            });
        }
    }
    for &field in required {
        if value.get(field).is_none() {
            return Err(SpecError::MissingField {
                context: context.to_owned(),
                field,
            });
        }
    }
    Ok(())
}

/// Walks the parsed shape of a job spec, rejecting unknown fields before
/// the (default-filling, unknown-tolerating) serde pass runs.
fn check_job_shape(doc: &JsonValue) -> Result<(), SpecError> {
    check_fields(
        doc,
        "job spec",
        &[
            "cluster",
            "model",
            "global_batch",
            "max_micro",
            "worker_dedication",
            "sa_iterations",
            "seed",
            "replicas",
            "exchange_interval",
            "memory_training_iterations",
            "estimator_cache_dir",
        ],
        TOP_FIELDS,
        &["cluster", "model", "global_batch"],
    )?;
    let Some(cluster) = doc.get("cluster") else {
        return Err(SpecError::MissingField {
            context: "spec".to_string(),
            field: "cluster",
        });
    };
    check_fields(
        cluster,
        "cluster",
        &["preset", "nodes", "seed"],
        CLUSTER_FIELDS,
        &["preset", "nodes"],
    )?;
    let Some(model) = doc.get("model") else {
        return Err(SpecError::MissingField {
            context: "spec".to_string(),
            field: "model",
        });
    };
    if model.get("preset").is_some() {
        check_fields(model, "model", &["preset"], MODEL_FIELDS, &["preset"])?;
    } else {
        check_fields(
            model,
            "model",
            &["layers", "hidden", "heads", "seq_len", "vocab"],
            MODEL_FIELDS,
            &["layers", "hidden", "heads"],
        )?;
    }
    Ok(())
}

impl JobSpec {
    /// Parses a job spec strictly: valid JSON only, no unknown fields
    /// anywhere, all required fields present, all values in range. The
    /// plain serde path stays lenient (defaults fill gaps, unknown keys
    /// are ignored) for programmatic use; the CLI goes through here so a
    /// typo like `"global_bacth"` fails with an actionable message
    /// instead of silently running with a default.
    ///
    /// # Errors
    ///
    /// [`SpecError::Malformed`], [`SpecError::UnknownField`],
    /// [`SpecError::MissingField`], or [`SpecError::OutOfRange`] naming
    /// the first problem.
    pub fn parse_strict(text: &str) -> Result<Self, SpecError> {
        let doc = jsonscan::parse(text).map_err(|e| SpecError::Malformed(e.to_string()))?;
        check_job_shape(&doc)?;
        let spec: JobSpec =
            serde_json::from_str(text).map_err(|e| SpecError::Malformed(e.to_string()))?;
        spec.validate()?;
        Ok(spec)
    }

    /// Range-checks a spec's values (called by [`Self::parse_strict`];
    /// also usable on programmatically built specs).
    ///
    /// # Errors
    ///
    /// [`SpecError::OutOfRange`] naming the first offending field.
    pub fn validate(&self) -> Result<(), SpecError> {
        let range_err = |field: &str, reason: String| {
            Err(SpecError::OutOfRange {
                field: field.to_owned(),
                reason,
            })
        };
        if !(1..=64).contains(&self.cluster.nodes) {
            return range_err(
                "cluster.nodes",
                format!("{} not in 1..=64", self.cluster.nodes),
            );
        }
        if self.global_batch == 0 {
            return range_err("global_batch", "must be at least 1".into());
        }
        if self.max_micro == 0 {
            return range_err("max_micro", "must be at least 1".into());
        }
        if self.sa_iterations == 0 {
            return range_err("sa_iterations", "must be at least 1".into());
        }
        if self.memory_training_iterations == 0 {
            return range_err("memory_training_iterations", "must be at least 1".into());
        }
        if !(1..=64).contains(&self.replicas) {
            return range_err(
                "replicas",
                format!(
                    "{} not in 1..=64 (1 = single chain; a few chains per core is the useful range)",
                    self.replicas
                ),
            );
        }
        if self.exchange_interval == 0 {
            return range_err(
                "exchange_interval",
                "must be at least 1 (iterations between tempering exchange rounds)".into(),
            );
        }
        if let ModelSpec::Custom {
            layers,
            hidden,
            heads,
            seq_len,
            vocab,
        } = &self.model
        {
            for (name, value) in [
                ("model.layers", *layers),
                ("model.hidden", *hidden),
                ("model.heads", *heads),
                ("model.seq_len", *seq_len),
                ("model.vocab", *vocab),
            ] {
                if value == 0 {
                    return range_err(name, "must be at least 1".into());
                }
            }
            if hidden % heads != 0 {
                return range_err(
                    "model.hidden",
                    format!("{hidden} not divisible by {heads} heads"),
                );
            }
        }
        Ok(())
    }

    /// Realizes the cluster.
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownCluster`] for unrecognized preset names.
    pub fn build_cluster(&self) -> Result<Cluster, SpecError> {
        let preset = match self.cluster.preset.as_str() {
            "mid-range" | "mid_range" | "midrange" => presets::mid_range(self.cluster.nodes),
            "high-end" | "high_end" | "highend" => presets::high_end(self.cluster.nodes),
            other => return Err(SpecError::UnknownCluster(other.to_owned())),
        };
        Ok(preset.build(self.cluster.seed))
    }

    /// Realizes the model.
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownModel`] for unrecognized preset names.
    pub fn build_model(&self) -> Result<GptConfig, SpecError> {
        match &self.model {
            ModelSpec::Preset { preset } => match preset.as_str() {
                "gpt-1.1b" => Ok(GptConfig::gpt_1_1b()),
                "gpt-3.1b" => Ok(GptConfig::gpt_3_1b()),
                "gpt-8.1b" => Ok(GptConfig::gpt_8_1b()),
                "gpt-11.1b" => Ok(GptConfig::gpt_11_1b()),
                other => Err(SpecError::UnknownModel(other.to_owned())),
            },
            ModelSpec::Custom {
                layers,
                hidden,
                heads,
                seq_len,
                vocab,
            } => Ok(GptConfig::new(*layers, *hidden, *heads, *seq_len, *vocab)),
        }
    }
}

/// Parses a [`FaultPlan`] strictly: no unknown fields at any level. The
/// plan's *semantic* validity (GPU indices in range, rates in `[0, 1]`)
/// is checked against the actual topology by `FaultPlan::validate` when
/// the drill runs.
///
/// # Errors
///
/// [`SpecError::Malformed`] or [`SpecError::UnknownField`].
pub fn parse_fault_plan_strict(text: &str) -> Result<FaultPlan, SpecError> {
    let doc = jsonscan::parse(text).map_err(|e| SpecError::Malformed(e.to_string()))?;
    check_fields(
        &doc,
        "fault plan",
        &[
            "seed",
            "degraded_links",
            "straggler_gpus",
            "failed_gpus",
            "failed_nodes",
            "corrupt_pairs",
            "measurement_failure_rate",
            "sample_loss_rate",
            "drift",
        ],
        PLAN_FIELDS,
        &[],
    )?;
    if let Some(drift) = doc.get("drift") {
        check_fields(
            drift,
            "drift",
            &["day", "daily_sigma", "reversion"],
            "day, daily_sigma, reversion",
            &["day"],
        )?;
    }
    let item_fields: [(&str, &[&'static str], &'static str); 3] = [
        (
            "degraded_links",
            &["from_node", "to_node", "factor"],
            "from_node, to_node, factor",
        ),
        ("straggler_gpus", &["gpu", "slowdown"], "gpu, slowdown"),
        (
            "corrupt_pairs",
            &["from_gpu", "to_gpu", "kind"],
            "from_gpu, to_gpu, kind",
        ),
    ];
    for (list, fields, msg) in item_fields {
        if let Some(JsonValue::Array(items)) = doc.get(list) {
            for (i, item) in items.iter().enumerate() {
                check_fields(item, &format!("{list}[{i}]"), fields, msg, fields)?;
            }
        }
    }
    serde_json::from_str(text).map_err(|e| SpecError::Malformed(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_spec() {
        let json = r#"{
            "cluster": {"preset": "mid-range", "nodes": 4},
            "model": {"preset": "gpt-1.1b"},
            "global_batch": 256
        }"#;
        let spec: JobSpec = serde_json::from_str(json).unwrap();
        assert_eq!(spec.max_micro, 8);
        assert!(spec.worker_dedication);
        assert_eq!(spec.sa_iterations, 30_000);
        let cluster = spec.build_cluster().unwrap();
        assert_eq!(cluster.topology().num_gpus(), 32);
        let model = spec.build_model().unwrap();
        assert_eq!(model.n_layers, 24);
    }

    #[test]
    fn parses_custom_model() {
        let json = r#"{
            "cluster": {"preset": "high-end", "nodes": 2, "seed": 9},
            "model": {"layers": 12, "hidden": 768, "heads": 12},
            "global_batch": 64,
            "worker_dedication": false
        }"#;
        let spec: JobSpec = serde_json::from_str(json).unwrap();
        let model = spec.build_model().unwrap();
        assert_eq!(model.hidden, 768);
        assert_eq!(model.seq_len, 2048);
        assert!(!spec.worker_dedication);
    }

    #[test]
    fn unknown_presets_are_reported() {
        let json = r#"{
            "cluster": {"preset": "quantum", "nodes": 4},
            "model": {"preset": "gpt-9000b"},
            "global_batch": 256
        }"#;
        let spec: JobSpec = serde_json::from_str(json).unwrap();
        assert!(matches!(
            spec.build_cluster(),
            Err(SpecError::UnknownCluster(_))
        ));
        assert!(matches!(
            spec.build_model(),
            Err(SpecError::UnknownModel(_))
        ));
    }

    #[test]
    fn strict_parse_accepts_valid_specs() {
        let json = r#"{
            "cluster": {"preset": "mid-range", "nodes": 4},
            "model": {"layers": 12, "hidden": 768, "heads": 12},
            "global_batch": 256,
            "seed": 3
        }"#;
        let spec = JobSpec::parse_strict(json).unwrap();
        assert_eq!(spec.global_batch, 256);
        assert_eq!(spec.max_micro, 8, "defaults still fill in");
    }

    #[test]
    fn strict_parse_rejects_unknown_fields() {
        let top = r#"{
            "cluster": {"preset": "mid-range", "nodes": 4},
            "model": {"preset": "gpt-1.1b"},
            "global_batch": 256,
            "global_bacth": 512
        }"#;
        let err = JobSpec::parse_strict(top).unwrap_err();
        assert!(matches!(err, SpecError::UnknownField { .. }));
        assert!(err.to_string().contains("global_bacth"));
        assert!(err.to_string().contains("global_batch"));

        let nested = r#"{
            "cluster": {"preset": "mid-range", "nodes": 4, "gpus": 8},
            "model": {"preset": "gpt-1.1b"},
            "global_batch": 256
        }"#;
        let err = JobSpec::parse_strict(nested).unwrap_err();
        assert!(err.to_string().contains("gpus") && err.to_string().contains("cluster"));

        let model = r#"{
            "cluster": {"preset": "mid-range", "nodes": 4},
            "model": {"preset": "gpt-1.1b", "layers": 24},
            "global_batch": 256
        }"#;
        assert!(JobSpec::parse_strict(model).is_err());
    }

    #[test]
    fn strict_parse_reports_missing_and_out_of_range_fields() {
        let missing = r#"{
            "cluster": {"preset": "mid-range"},
            "model": {"preset": "gpt-1.1b"},
            "global_batch": 256
        }"#;
        let err = JobSpec::parse_strict(missing).unwrap_err();
        assert!(matches!(
            err,
            SpecError::MissingField { field: "nodes", .. }
        ));

        for (json, needle) in [
            (
                r#"{"cluster": {"preset": "mid-range", "nodes": 0},
                    "model": {"preset": "gpt-1.1b"}, "global_batch": 256}"#,
                "cluster.nodes",
            ),
            (
                r#"{"cluster": {"preset": "mid-range", "nodes": 4},
                    "model": {"preset": "gpt-1.1b"}, "global_batch": 0}"#,
                "global_batch",
            ),
            (
                r#"{"cluster": {"preset": "mid-range", "nodes": 4},
                    "model": {"layers": 12, "hidden": 770, "heads": 12},
                    "global_batch": 256}"#,
                "not divisible",
            ),
        ] {
            let err = JobSpec::parse_strict(json).unwrap_err();
            assert!(matches!(err, SpecError::OutOfRange { .. }), "{json}");
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn strict_parse_rejects_non_json() {
        assert!(matches!(
            JobSpec::parse_strict("{ not json").unwrap_err(),
            SpecError::Malformed(_)
        ));
        assert!(matches!(
            JobSpec::parse_strict("[1, 2]").unwrap_err(),
            SpecError::Malformed(_)
        ));
    }

    #[test]
    fn fault_plans_parse_strictly() {
        let plan = parse_fault_plan_strict(
            r#"{"seed": 9, "failed_nodes": [1],
                "straggler_gpus": [{"gpu": 2, "slowdown": 1.5}],
                "measurement_failure_rate": 0.1}"#,
        )
        .unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.failed_nodes, vec![1]);

        let err = parse_fault_plan_strict(r#"{"failed_node": [1]}"#).unwrap_err();
        assert!(err.to_string().contains("failed_node"));
        let err = parse_fault_plan_strict(r#"{"straggler_gpus": [{"gpu": 2, "slow": 1.5}]}"#)
            .unwrap_err();
        assert!(err.to_string().contains("slow"));
        assert!(parse_fault_plan_strict("{}").is_ok(), "zero-fault plan");
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = JobSpec {
            cluster: ClusterSpec {
                preset: "mid-range".into(),
                nodes: 8,
                seed: 1,
            },
            model: ModelSpec::Preset {
                preset: "gpt-3.1b".into(),
            },
            global_batch: 512,
            max_micro: 4,
            worker_dedication: true,
            sa_iterations: 10_000,
            seed: 5,
            replicas: 4,
            exchange_interval: 256,
            memory_training_iterations: 12_000,
            estimator_cache_dir: None,
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: JobSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.global_batch, 512);
        assert_eq!(back.max_micro, 4);
        assert_eq!(back.replicas, 4);
        assert_eq!(back.exchange_interval, 256);
    }

    #[test]
    fn tempering_fields_parse_with_defaults_and_range_checks() {
        let defaulted = JobSpec::parse_strict(
            r#"{"cluster": {"preset": "mid-range", "nodes": 4},
                "model": {"preset": "gpt-1.1b"}, "global_batch": 256}"#,
        )
        .unwrap();
        assert_eq!(defaulted.replicas, 1, "single chain is the default");
        assert_eq!(defaulted.exchange_interval, 512);

        let tempered = JobSpec::parse_strict(
            r#"{"cluster": {"preset": "mid-range", "nodes": 4},
                "model": {"preset": "gpt-1.1b"}, "global_batch": 256,
                "replicas": 4, "exchange_interval": 128}"#,
        )
        .unwrap();
        assert_eq!(tempered.replicas, 4);
        assert_eq!(tempered.exchange_interval, 128);

        for (json, needle) in [
            (
                r#"{"cluster": {"preset": "mid-range", "nodes": 4},
                    "model": {"preset": "gpt-1.1b"}, "global_batch": 256,
                    "replicas": 0}"#,
                "1..=64",
            ),
            (
                r#"{"cluster": {"preset": "mid-range", "nodes": 4},
                    "model": {"preset": "gpt-1.1b"}, "global_batch": 256,
                    "replicas": 65}"#,
                "1..=64",
            ),
            (
                r#"{"cluster": {"preset": "mid-range", "nodes": 4},
                    "model": {"preset": "gpt-1.1b"}, "global_batch": 256,
                    "exchange_interval": 0}"#,
                "exchange_interval",
            ),
        ] {
            let err = JobSpec::parse_strict(json).unwrap_err();
            assert!(matches!(err, SpecError::OutOfRange { .. }), "{json}");
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
