//! The JSON job specification the CLI consumes.
//!
//! ```json
//! {
//!   "cluster": { "preset": "mid-range", "nodes": 8, "seed": 42 },
//!   "model":   { "preset": "gpt-1.1b" },
//!   "global_batch": 256,
//!   "max_micro": 8,
//!   "worker_dedication": true,
//!   "sa_iterations": 30000,
//!   "seed": 7
//! }
//! ```
//!
//! `model` may instead spell out hyperparameters:
//! `{ "layers": 24, "hidden": 1920, "heads": 24, "seq_len": 2048,
//!    "vocab": 51200 }`.

use pipette_cluster::{presets, Cluster};
use pipette_model::GptConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which synthetic cluster to build.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// `"mid-range"` (V100/EDR) or `"high-end"` (A100/HDR).
    pub preset: String,
    /// Number of 8-GPU nodes.
    pub nodes: usize,
    /// Seed realizing the heterogeneous bandwidth matrix.
    #[serde(default)]
    pub seed: u64,
}

/// The model to train: a named preset or explicit hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(untagged)]
pub enum ModelSpec {
    /// A named preset, e.g. `{"preset": "gpt-3.1b"}`.
    Preset {
        /// One of `gpt-1.1b`, `gpt-3.1b`, `gpt-8.1b`, `gpt-11.1b`.
        preset: String,
    },
    /// Explicit hyperparameters.
    Custom {
        /// Transformer layers.
        layers: usize,
        /// Hidden dimension.
        hidden: usize,
        /// Attention heads.
        heads: usize,
        /// Sequence length (default 2048).
        #[serde(default = "default_seq")]
        seq_len: usize,
        /// Vocabulary size (default 51200).
        #[serde(default = "default_vocab")]
        vocab: usize,
    },
}

fn default_seq() -> usize {
    2048
}

fn default_vocab() -> usize {
    51200
}

/// The full job specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobSpec {
    /// Cluster to configure for.
    pub cluster: ClusterSpec,
    /// Model to train.
    pub model: ModelSpec,
    /// Samples per optimizer step.
    pub global_batch: u64,
    /// Largest microbatch considered (default 8).
    #[serde(default = "default_micro")]
    pub max_micro: u64,
    /// Enable fine-grained worker dedication (default true).
    #[serde(default = "default_true")]
    pub worker_dedication: bool,
    /// Simulated-annealing iterations per candidate (default 30000).
    #[serde(default = "default_sa")]
    pub sa_iterations: usize,
    /// Search seed (default 0).
    #[serde(default)]
    pub seed: u64,
    /// Memory-estimator training iterations (default 12000; lower for
    /// quick runs).
    #[serde(default = "default_mem_iterations")]
    pub memory_training_iterations: usize,
    /// Directory for the on-disk trained-estimator cache. When set,
    /// repeated `configure` runs with identical training inputs reload
    /// the estimator (bit-exact) instead of retraining.
    #[serde(default)]
    pub estimator_cache_dir: Option<String>,
}

fn default_mem_iterations() -> usize {
    12_000
}

fn default_micro() -> u64 {
    8
}

fn default_true() -> bool {
    true
}

fn default_sa() -> usize {
    30_000
}

/// Errors turning a spec into concrete objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// Unknown cluster preset name.
    UnknownCluster(String),
    /// Unknown model preset name.
    UnknownModel(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownCluster(name) => {
                write!(f, "unknown cluster preset {name:?} (try \"mid-range\" or \"high-end\")")
            }
            SpecError::UnknownModel(name) => write!(
                f,
                "unknown model preset {name:?} (try \"gpt-1.1b\", \"gpt-3.1b\", \"gpt-8.1b\", \"gpt-11.1b\")"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

impl JobSpec {
    /// Realizes the cluster.
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownCluster`] for unrecognized preset names.
    pub fn build_cluster(&self) -> Result<Cluster, SpecError> {
        let preset = match self.cluster.preset.as_str() {
            "mid-range" | "mid_range" | "midrange" => presets::mid_range(self.cluster.nodes),
            "high-end" | "high_end" | "highend" => presets::high_end(self.cluster.nodes),
            other => return Err(SpecError::UnknownCluster(other.to_owned())),
        };
        Ok(preset.build(self.cluster.seed))
    }

    /// Realizes the model.
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownModel`] for unrecognized preset names.
    pub fn build_model(&self) -> Result<GptConfig, SpecError> {
        match &self.model {
            ModelSpec::Preset { preset } => match preset.as_str() {
                "gpt-1.1b" => Ok(GptConfig::gpt_1_1b()),
                "gpt-3.1b" => Ok(GptConfig::gpt_3_1b()),
                "gpt-8.1b" => Ok(GptConfig::gpt_8_1b()),
                "gpt-11.1b" => Ok(GptConfig::gpt_11_1b()),
                other => Err(SpecError::UnknownModel(other.to_owned())),
            },
            ModelSpec::Custom {
                layers,
                hidden,
                heads,
                seq_len,
                vocab,
            } => Ok(GptConfig::new(*layers, *hidden, *heads, *seq_len, *vocab)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_spec() {
        let json = r#"{
            "cluster": {"preset": "mid-range", "nodes": 4},
            "model": {"preset": "gpt-1.1b"},
            "global_batch": 256
        }"#;
        let spec: JobSpec = serde_json::from_str(json).unwrap();
        assert_eq!(spec.max_micro, 8);
        assert!(spec.worker_dedication);
        assert_eq!(spec.sa_iterations, 30_000);
        let cluster = spec.build_cluster().unwrap();
        assert_eq!(cluster.topology().num_gpus(), 32);
        let model = spec.build_model().unwrap();
        assert_eq!(model.n_layers, 24);
    }

    #[test]
    fn parses_custom_model() {
        let json = r#"{
            "cluster": {"preset": "high-end", "nodes": 2, "seed": 9},
            "model": {"layers": 12, "hidden": 768, "heads": 12},
            "global_batch": 64,
            "worker_dedication": false
        }"#;
        let spec: JobSpec = serde_json::from_str(json).unwrap();
        let model = spec.build_model().unwrap();
        assert_eq!(model.hidden, 768);
        assert_eq!(model.seq_len, 2048);
        assert!(!spec.worker_dedication);
    }

    #[test]
    fn unknown_presets_are_reported() {
        let json = r#"{
            "cluster": {"preset": "quantum", "nodes": 4},
            "model": {"preset": "gpt-9000b"},
            "global_batch": 256
        }"#;
        let spec: JobSpec = serde_json::from_str(json).unwrap();
        assert!(matches!(
            spec.build_cluster(),
            Err(SpecError::UnknownCluster(_))
        ));
        assert!(matches!(
            spec.build_model(),
            Err(SpecError::UnknownModel(_))
        ));
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = JobSpec {
            cluster: ClusterSpec {
                preset: "mid-range".into(),
                nodes: 8,
                seed: 1,
            },
            model: ModelSpec::Preset {
                preset: "gpt-3.1b".into(),
            },
            global_batch: 512,
            max_micro: 4,
            worker_dedication: true,
            sa_iterations: 10_000,
            seed: 5,
            memory_training_iterations: 12_000,
            estimator_cache_dir: None,
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: JobSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.global_batch, 512);
        assert_eq!(back.max_micro, 4);
    }
}
