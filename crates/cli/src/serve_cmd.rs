//! The `pipette serve` request handler: plugs the full configurator into
//! the hardened `pipette-serve` loop.
//!
//! One [`PipetteHandler`] multiplexes every request over two shared,
//! amortized resources:
//!
//! - a [`TrainedEstimatorCache`]: estimators are pre-trained *outside*
//!   the per-request run (keyed by training-input fingerprint) and
//!   attached pretrained, so the first and the thousandth identical
//!   request produce byte-identical responses — neither charges
//!   training against its deadline budget, and both record
//!   `mem_train … cached=true`;
//! - a profiled-bandwidth store: the `gpus·(gpus−1)`-pair sweep runs
//!   once per distinct cluster and is attached via `with_profiled`; a
//!   synthetic `profile` span (with the full pair cost) keeps each
//!   per-request trace shaped like a one-shot run's.
//!
//! Degradation: when the serve loop's circuit breaker is open, requests
//! arrive with `ctx.degraded = true` and `configure` ops are forced onto
//! the analytic memory model (`with_analytic_memory`) — no estimator
//! work at all. `drill` ops carry their own fault-driven fallback; their
//! `analytic_memory_fallback` outcome is what feeds the breaker.
//!
//! Every response is one line of deterministic JSON (fixed field order,
//! shortest-round-trip floats): identical request lines yield
//! byte-identical responses at any worker count.

use crate::jsonscan::{self, JsonValue};
use crate::jsonwrite::{self, push_json_string, Obj};
use crate::report::{self, CliReport};
use crate::spec::{parse_fault_plan_strict, JobSpec};
use pipette::memory::{SweepReport, TrainedEstimatorCache};
use pipette::{ConfigureError, DeadlineReport, Pipette};
use pipette_cluster::{FaultPlan, ProfiledBandwidth, ProfilingCost};
use pipette_obs::{CostUnit, Trace, TraceConfig};
use pipette_serve::{
    run_pipe, Control, ExecContext, Execution, ParseOutcome, RequestHandler, ServeSummary,
    ServerConfig,
};
use pipette_sim::ClusterRun;
use std::collections::BTreeMap;
use std::error::Error;
use std::path::PathBuf;
use std::sync::Mutex;

/// Which operation a request asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Configure,
    Drill,
}

/// A parsed serve request, ready for a worker thread.
#[derive(Debug)]
pub struct ServeJob {
    id: Option<String>,
    kind: OpKind,
    spec: JobSpec,
    faults: Option<FaultPlan>,
    deadline_units: Option<u64>,
    want_trace: bool,
    profile_key: u64,
}

/// The configurator-backed [`RequestHandler`].
pub struct PipetteHandler {
    cache: TrainedEstimatorCache,
    profiled: Mutex<BTreeMap<u64, (ProfiledBandwidth, ProfilingCost)>>,
}

impl PipetteHandler {
    /// A handler with a purely in-memory estimator cache.
    pub fn new() -> Self {
        Self {
            cache: TrainedEstimatorCache::in_memory(),
            profiled: Mutex::new(BTreeMap::new()),
        }
    }

    /// A handler persisting trained estimators under `dir`. Startup is
    /// crash-only: the directory is swept eagerly — corrupt entries
    /// quarantined, defective index snapshots rebuilt — before the first
    /// request is admitted.
    pub fn with_cache_dir(dir: impl Into<PathBuf>) -> (Self, SweepReport) {
        let cache = TrainedEstimatorCache::with_dir(dir);
        let sweep = cache.sweep();
        (
            Self {
                cache,
                profiled: Mutex::new(BTreeMap::new()),
            },
            sweep,
        )
    }

    /// The profiled bandwidth matrix for this job's cluster, measured at
    /// most once per distinct `(cluster, seed)` and shared across
    /// requests. Profiling is deterministic in the seed, so a racing
    /// double-measure inserts identical values.
    fn profiled_for(
        &self,
        cluster: &pipette_cluster::Cluster,
        job: &ServeJob,
    ) -> (ProfiledBandwidth, ProfilingCost) {
        if let Some(found) = self
            .lock_profiled()
            .get(&job.profile_key)
            .map(|(p, c)| (p.clone(), *c))
        {
            return found;
        }
        let measured = cluster
            .profiler()
            .profile(cluster.bandwidth(), job.spec.seed);
        self.lock_profiled()
            .insert(job.profile_key, (measured.0.clone(), measured.1));
        measured
    }

    fn lock_profiled(
        &self,
    ) -> std::sync::MutexGuard<'_, BTreeMap<u64, (ProfiledBandwidth, ProfilingCost)>> {
        // A panicking worker cannot half-write the map (inserts are
        // single calls), so recovery is sound (rule D2).
        self.profiled
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Lookup counters of the shared estimator cache.
    pub fn cache_counters(&self) -> pipette::memory::CacheCounters {
        self.cache.counters()
    }

    fn run_configure(&self, job: &ServeJob, ctx: &ExecContext) -> Execution {
        let cluster = match job.spec.build_cluster() {
            Ok(c) => c,
            Err(e) => return exec_error(job, ctx, &format!("cluster: {e}")),
        };
        let gpt = match job.spec.build_model() {
            Ok(m) => m,
            Err(e) => return exec_error(job, ctx, &format!("model: {e}")),
        };
        let (profiled, cost) = self.profiled_for(&cluster, job);
        let mut trace = Trace::new(TraceConfig::default());
        // The shared sweep already paid the gpus·(gpus−1) pair cost once;
        // a synthetic span keeps this request's trace shaped (and
        // budgeted) like a one-shot run that profiled inline.
        let gpus = cluster.topology().num_gpus() as u64;
        let pairs = gpus * gpus.saturating_sub(1);
        let span = trace.open_span("profile");
        trace.close_span(span, CostUnit::Pairs, pairs);

        let options = report::options_for(&job.spec);
        let memory_config = options.memory;
        let threads = options.threads;
        let mut pipette = Pipette::new(&cluster, &gpt, job.spec.global_batch, options)
            .with_profiled(profiled, cost);
        if ctx.degraded {
            pipette = pipette.with_analytic_memory();
        } else {
            let (sample_spec, truth) = pipette.profiling_spec();
            let estimator =
                self.cache
                    .get_or_train(&sample_spec, &gpt, &memory_config, &truth, threads);
            pipette = pipette.with_memory_estimator(estimator);
        }
        if let Some(budget) = job.deadline_units {
            pipette = pipette.with_deadline_units(budget);
        }
        match pipette.run_traced(&mut trace) {
            Ok(rec) => {
                let runner = ClusterRun::new(&cluster, &gpt);
                let measured = match runner.execute(rec.config, &rec.mapping, rec.plan) {
                    Ok(m) => m,
                    Err(e) => return exec_error(job, ctx, &format!("verification: {e}")),
                };
                let result = CliReport {
                    pp: rec.config.pp,
                    tp: rec.config.tp,
                    dp: rec.config.dp,
                    micro_batch: rec.plan.micro_batch,
                    n_microbatches: rec.plan.n_microbatches,
                    estimated_seconds: rec.estimated_seconds,
                    measured_seconds: measured.iteration_seconds,
                    peak_memory_gib: measured.peak_memory_bytes as f64 / (1u64 << 30) as f64,
                    examined: rec.examined,
                    memory_rejected: rec.memory_rejected,
                    mapping: rec.mapping.as_slice().iter().map(|g| g.0).collect(),
                    replicas: rec.tempering.map_or(1, |t| t.replicas),
                    estimator_cache: rec.cache_counters,
                };
                let truncated = rec.deadline.as_ref().is_some_and(|d| d.truncated);
                let status = if truncated { "deadline" } else { "ok" };
                let response = respond(
                    job,
                    ctx,
                    status,
                    Some(&jsonwrite::cli_report_json(&result)),
                    rec.deadline.as_ref(),
                    None,
                    Some(&trace),
                );
                Execution {
                    response,
                    outcome: status.to_string(),
                    estimator_failure: false,
                    degraded: ctx.degraded,
                }
            }
            Err(ConfigureError::DeadlineExpired {
                budget_units,
                spent_units,
            }) => {
                let deadline = DeadlineReport {
                    budget_units,
                    spent_units,
                    truncated: true,
                };
                let response = respond(job, ctx, "deadline", None, Some(&deadline), None, None);
                Execution {
                    response,
                    outcome: "deadline".to_string(),
                    estimator_failure: false,
                    degraded: ctx.degraded,
                }
            }
            Err(e) => exec_error(job, ctx, &format!("configure: {e}")),
        }
    }

    fn run_drill(&self, job: &ServeJob, ctx: &ExecContext) -> Execution {
        let Some(plan) = job.faults.as_ref() else {
            return exec_error(job, ctx, "drill request lost its fault plan");
        };
        let mut trace = Trace::new(TraceConfig::default());
        match report::run_drill_traced(&job.spec, plan, Some(&mut trace)) {
            Ok((drill, _outcome)) => {
                let estimator_failure = drill.analytic_memory_fallback;
                let response = respond(
                    job,
                    ctx,
                    "ok",
                    Some(&jsonwrite::drill_report_json(&drill)),
                    None,
                    None,
                    Some(&trace),
                );
                Execution {
                    response,
                    outcome: "ok".to_string(),
                    estimator_failure,
                    degraded: ctx.degraded,
                }
            }
            Err(e) => exec_error(job, ctx, &format!("drill: {e}")),
        }
    }
}

impl Default for PipetteHandler {
    fn default() -> Self {
        Self::new()
    }
}

/// FNV-1a over everything the shared profiling sweep depends on: the
/// cluster identity (preset, node count, build seed) and the run seed
/// that drives the profiler's noise.
fn profile_key(spec: &JobSpec) -> u64 {
    fn eat(hash: &mut u64, bytes: &[u8]) {
        for byte in bytes {
            *hash ^= u64::from(*byte);
            *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    eat(&mut hash, spec.cluster.preset.as_bytes());
    eat(&mut hash, &[0x1e]);
    eat(&mut hash, &spec.cluster.nodes.to_le_bytes());
    eat(&mut hash, &spec.cluster.seed.to_le_bytes());
    eat(&mut hash, &spec.seed.to_le_bytes());
    hash
}

/// Renders one response line with the fixed serve field order:
/// `id? seq status op degraded result deadline? message? trace?`.
#[allow(clippy::too_many_arguments)]
fn respond(
    job: &ServeJob,
    ctx: &ExecContext,
    status: &str,
    result: Option<&str>,
    deadline: Option<&DeadlineReport>,
    message: Option<&str>,
    trace: Option<&Trace>,
) -> String {
    let op = match job.kind {
        OpKind::Configure => "configure",
        OpKind::Drill => "drill",
    };
    let mut out = String::new();
    let mut o = Obj::open(&mut out);
    if let Some(id) = &job.id {
        o.string("id", id);
    }
    o.uint("seq", ctx.seq);
    o.string("status", status);
    o.string("op", op);
    o.boolean("degraded", ctx.degraded);
    match result {
        Some(r) => o.raw("result", r),
        None => o.raw("result", "null"),
    }
    if let Some(d) = deadline {
        let mut dj = String::new();
        let mut dobj = Obj::open(&mut dj);
        dobj.uint("budget_units", d.budget_units);
        dobj.uint("spent_units", d.spent_units);
        dobj.boolean("truncated", d.truncated);
        dobj.close();
        o.raw("deadline", &dj);
    }
    if let Some(m) = message {
        o.string("message", m);
    }
    if let Some(t) = trace.filter(|_| job.want_trace) {
        let mut arr = String::from("[");
        for (i, line) in t.to_jsonl_stripped().lines().enumerate() {
            if i > 0 {
                arr.push(',');
            }
            push_json_string(&mut arr, line);
        }
        arr.push(']');
        o.raw("trace", &arr);
    }
    o.close();
    out
}

fn exec_error(job: &ServeJob, ctx: &ExecContext, message: &str) -> Execution {
    Execution {
        response: respond(job, ctx, "error", None, None, Some(message), None),
        outcome: "error".to_string(),
        estimator_failure: false,
        degraded: ctx.degraded,
    }
}

const ENVELOPE_FIELDS: &str = "id, op, job, faults, deadline_units, trace";

impl RequestHandler for PipetteHandler {
    type Job = ServeJob;

    fn parse(&self, line: &str) -> ParseOutcome<ServeJob> {
        let doc = match jsonscan::parse(line) {
            Ok(d) => d,
            Err(e) => return ParseOutcome::Error(format!("invalid JSON: {e}")),
        };
        if !matches!(doc, JsonValue::Object(_)) {
            return ParseOutcome::Error(format!(
                "request must be a JSON object, got {}",
                doc.type_name()
            ));
        }
        for key in doc.keys() {
            if !["id", "op", "job", "faults", "deadline_units", "trace"].contains(&key) {
                return ParseOutcome::Error(format!(
                    "unknown field {key:?} (allowed: {ENVELOPE_FIELDS})"
                ));
            }
        }
        let op = match doc.get("op") {
            Some(JsonValue::String(s)) => s.clone(),
            Some(v) => {
                return ParseOutcome::Error(format!(
                    "\"op\" must be a string, got {}",
                    v.type_name()
                ))
            }
            None => return ParseOutcome::Error("missing required field \"op\"".to_string()),
        };
        if op == "shutdown" {
            return ParseOutcome::Control(Control::Shutdown);
        }
        let kind = match op.as_str() {
            "configure" => OpKind::Configure,
            "drill" => OpKind::Drill,
            other => {
                return ParseOutcome::Error(format!(
                    "unknown op {other:?} (expected \"configure\", \"drill\", or \"shutdown\")"
                ))
            }
        };
        let id = match doc.get("id") {
            None => None,
            Some(JsonValue::String(s)) => Some(s.clone()),
            Some(v) => {
                return ParseOutcome::Error(format!(
                    "\"id\" must be a string, got {}",
                    v.type_name()
                ))
            }
        };
        let Some(job_doc) = doc.get("job") else {
            return ParseOutcome::Error(format!("op {op:?} requires a \"job\" spec"));
        };
        let spec = match JobSpec::parse_strict(&jsonwrite::render_value(job_doc)) {
            Ok(s) => s,
            Err(e) => return ParseOutcome::Error(format!("job: {e}")),
        };
        let faults = match (kind, doc.get("faults")) {
            (OpKind::Drill, Some(f)) => {
                match parse_fault_plan_strict(&jsonwrite::render_value(f)) {
                    Ok(p) => Some(p),
                    Err(e) => return ParseOutcome::Error(format!("faults: {e}")),
                }
            }
            (OpKind::Drill, None) => {
                return ParseOutcome::Error("op \"drill\" requires a \"faults\" plan".to_string())
            }
            (OpKind::Configure, Some(_)) => {
                return ParseOutcome::Error(
                    "op \"configure\" takes no \"faults\" (use op \"drill\")".to_string(),
                )
            }
            (OpKind::Configure, None) => None,
        };
        let deadline_units = match doc.get("deadline_units") {
            None => None,
            Some(JsonValue::Number(n)) if *n >= 0.0 && n.fract() == 0.0 && *n < u64::MAX as f64 => {
                Some(*n as u64)
            }
            Some(_) => {
                return ParseOutcome::Error(
                    "\"deadline_units\" must be a non-negative integer".to_string(),
                )
            }
        };
        let want_trace = match doc.get("trace") {
            None => false,
            Some(JsonValue::Bool(b)) => *b,
            Some(v) => {
                return ParseOutcome::Error(format!(
                    "\"trace\" must be a boolean, got {}",
                    v.type_name()
                ))
            }
        };
        let profile_key = profile_key(&spec);
        ParseOutcome::Job {
            op,
            job: ServeJob {
                id,
                kind,
                spec,
                faults,
                deadline_units,
                want_trace,
                profile_key,
            },
        }
    }

    fn execute(&self, job: ServeJob, ctx: &ExecContext) -> Execution {
        match job.kind {
            OpKind::Configure => self.run_configure(&job, ctx),
            OpKind::Drill => self.run_drill(&job, ctx),
        }
    }

    fn overloaded_response(
        &self,
        seq: u64,
        queue_len: u64,
        limit: u64,
        retry_after_units: u64,
    ) -> String {
        let mut out = String::new();
        let mut o = Obj::open(&mut out);
        o.uint("seq", seq);
        o.string("status", "overloaded");
        o.uint("queue_len", queue_len);
        o.uint("limit", limit);
        o.uint("retry_after_units", retry_after_units);
        o.close();
        out
    }

    fn error_response(&self, seq: u64, message: &str) -> String {
        let mut out = String::new();
        let mut o = Obj::open(&mut out);
        o.uint("seq", seq);
        o.string("status", "error");
        o.string("message", message);
        o.close();
        out
    }
}

/// Deep-copies a parsed fault plan document with `drift.day` set to
/// `day`, leaving everything else byte-identical when re-rendered.
fn with_drift_day(doc: &JsonValue, day: usize) -> JsonValue {
    match doc {
        JsonValue::Object(members) => JsonValue::Object(
            members
                .iter()
                .map(|(k, v)| {
                    if k == "drift" {
                        let drift = match v {
                            JsonValue::Object(fields) => JsonValue::Object(
                                fields
                                    .iter()
                                    .map(|(dk, dv)| {
                                        if dk == "day" {
                                            (dk.clone(), JsonValue::Number(day as f64))
                                        } else {
                                            (dk.clone(), dv.clone())
                                        }
                                    })
                                    .collect(),
                            ),
                            other => other.clone(),
                        };
                        (k.clone(), drift)
                    } else {
                        (k.clone(), v.clone())
                    }
                })
                .collect(),
        ),
        other => other.clone(),
    }
}

/// `pipette drill --serve`: replays the fault plan's drift timeline
/// against a live in-process server — one `drill` request per day from 0
/// through `drift.day` (a single request when the plan has no drift
/// episode), then a clean shutdown. Returns the raw response lines plus
/// the server's drain summary; `degraded` in the summary counts the
/// requests the circuit breaker forced into analytic mode.
///
/// # Errors
///
/// Spec or fault-plan validation errors, or an I/O failure inside the
/// serve loop.
pub fn run_drill_serve(
    spec_text: &str,
    fault_text: &str,
) -> Result<(Vec<String>, ServeSummary), Box<dyn Error>> {
    // Validate up front so a bad file is one clean error, not a typed
    // per-request failure for every day of the timeline.
    JobSpec::parse_strict(spec_text)?;
    let plan = parse_fault_plan_strict(fault_text)?;
    let job_doc = jsonscan::parse(spec_text)?;
    let fault_doc = jsonscan::parse(fault_text)?;
    let job_json = jsonwrite::render_value(&job_doc);

    let days = plan.drift.as_ref().map_or(0, |d| d.day);
    let mut input = String::new();
    for day in 0..=days {
        let faults_json = if plan.drift.is_some() {
            jsonwrite::render_value(&with_drift_day(&fault_doc, day))
        } else {
            jsonwrite::render_value(&fault_doc)
        };
        let mut line = String::new();
        let mut o = Obj::open(&mut line);
        o.string("id", &format!("day-{day}"));
        o.string("op", "drill");
        o.raw("job", &job_json);
        o.raw("faults", &faults_json);
        o.close();
        input.push_str(&line);
        input.push('\n');
    }
    input.push_str("{\"op\":\"shutdown\"}\n");

    let handler = PipetteHandler::new();
    // One worker: the replay is a timeline, not a load test, and a
    // single worker makes the breaker's request-counted transitions
    // exact along it.
    let config = ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    };
    let mut out: Vec<u8> = Vec::new();
    let summary = run_pipe(&handler, config, input.as_bytes(), &mut out)?;
    let lines = String::from_utf8(out)
        .map_err(|e| format!("server emitted non-UTF-8 output: {e}"))?
        .lines()
        .map(str::to_owned)
        .collect();
    Ok((lines, summary))
}

#[cfg(test)]
mod tests {
    use super::*;

    const JOB: &str = r#"{"cluster": {"preset": "mid-range", "nodes": 2, "seed": 3},
        "model": {"layers": 8, "hidden": 1024, "heads": 16},
        "global_batch": 64, "max_micro": 2, "sa_iterations": 400,
        "memory_training_iterations": 200}"#;

    fn envelope(op: &str, extra: &str) -> String {
        let job = jsonwrite::render_value(&jsonscan::parse(JOB).unwrap());
        format!("{{\"op\":\"{op}\",\"job\":{job}{extra}}}")
    }

    #[test]
    fn parse_accepts_the_envelope_and_rejects_typos() {
        let handler = PipetteHandler::new();
        match handler.parse(&envelope(
            "configure",
            ",\"deadline_units\":5000,\"trace\":true",
        )) {
            ParseOutcome::Job { op, job } => {
                assert_eq!(op, "configure");
                assert_eq!(job.deadline_units, Some(5000));
                assert!(job.want_trace);
                assert!(job.id.is_none());
            }
            other => panic!("expected job, got {other:?}"),
        }
        assert!(matches!(
            handler.parse("{\"op\":\"shutdown\"}"),
            ParseOutcome::Control(Control::Shutdown)
        ));
        for (bad, needle) in [
            ("{\"op\":\"configure\"}", "requires a \"job\""),
            ("{\"op\":\"resolve\"}", "unknown op"),
            ("{\"ops\":\"configure\"}", "unknown field"),
            ("not json", "invalid JSON"),
            ("[1]", "must be a JSON object"),
        ] {
            match handler.parse(bad) {
                ParseOutcome::Error(msg) => {
                    assert!(msg.contains(needle), "{bad}: {msg}");
                }
                other => panic!("expected error for {bad}, got {other:?}"),
            }
        }
        // A drill without faults, and a configure with them, are typed
        // errors — not silently reinterpreted.
        assert!(matches!(
            handler.parse(&envelope("drill", "")),
            ParseOutcome::Error(m) if m.contains("requires a \"faults\"")
        ));
        assert!(matches!(
            handler.parse(&envelope("configure", ",\"faults\":{\"seed\":1}")),
            ParseOutcome::Error(m) if m.contains("takes no \"faults\"")
        ));
    }

    #[test]
    fn profile_key_separates_clusters_and_seeds() {
        let spec = JobSpec::parse_strict(JOB).unwrap();
        let base = profile_key(&spec);
        assert_eq!(base, profile_key(&spec));
        let mut other = spec.clone();
        other.cluster.nodes = 4;
        assert_ne!(base, profile_key(&other));
        let mut other = spec.clone();
        other.seed += 1;
        assert_ne!(base, profile_key(&other));
    }

    #[test]
    fn with_drift_day_rewrites_only_the_day() {
        let doc = jsonscan::parse(
            r#"{"seed": 9, "drift": {"day": 7, "daily_sigma": 0.05}, "sample_loss_rate": 0.5}"#,
        )
        .unwrap();
        let rewritten = with_drift_day(&doc, 3);
        assert_eq!(
            jsonwrite::render_value(&rewritten),
            r#"{"seed":9,"drift":{"day":3,"daily_sigma":0.05},"sample_loss_rate":0.5}"#
        );
        // Day 7 stays byte-identical when rewritten to itself.
        assert_eq!(
            jsonwrite::render_value(&with_drift_day(&doc, 7)),
            jsonwrite::render_value(&doc)
        );
    }
}
