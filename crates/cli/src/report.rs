//! Running a job spec and rendering the outcome.

use crate::spec::JobSpec;
use pipette::baselines::{first_runnable, AmpConfigurator, MegatronTuner, VarunaConfigurator};
use pipette::configurator::{Pipette, PipetteOptions, Recommendation};
use pipette::degraded::{run_under_faults, DegradedOutcome};
use pipette::mapping::AnnealerConfig;
use pipette::memory::CacheCounters;
use pipette_cluster::{FaultPlan, RobustProfilingPolicy};
use pipette_obs::{EventKind, Trace};
use pipette_sim::ClusterRun;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt::Write as _;

/// Machine-readable result of a `configure` run (also printed as JSON with
/// `--json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CliReport {
    /// Chosen pipeline ways.
    pub pp: usize,
    /// Chosen tensor ways.
    pub tp: usize,
    /// Chosen data ways.
    pub dp: usize,
    /// Chosen microbatch size.
    pub micro_batch: u64,
    /// Microbatches per iteration per replica.
    pub n_microbatches: u64,
    /// Estimated iteration seconds.
    pub estimated_seconds: f64,
    /// Measured (simulated) iteration seconds.
    pub measured_seconds: f64,
    /// Peak memory of the worst GPU, GiB.
    pub peak_memory_gib: f64,
    /// Candidates examined / rejected by the memory estimator.
    pub examined: usize,
    /// Rejected candidate count.
    pub memory_rejected: usize,
    /// Worker→GPU assignment (worker linear index → GPU id).
    pub mapping: Vec<usize>,
    /// Parallel-tempering replicas the SA passes ran with (1 = classic
    /// single chain).
    #[serde(default = "default_report_replicas")]
    pub replicas: usize,
    /// Trained-estimator cache traffic (absent when no cache directory
    /// was configured).
    #[serde(default)]
    pub estimator_cache: Option<CacheCounters>,
}

fn default_report_replicas() -> usize {
    1
}

pub(crate) fn options_for(spec: &JobSpec) -> PipetteOptions {
    let mut memory = pipette::memory::MemoryEstimatorConfig::default();
    memory.train.iterations = spec.memory_training_iterations;
    PipetteOptions {
        max_micro: spec.max_micro,
        use_worker_dedication: spec.worker_dedication,
        annealer: AnnealerConfig {
            iterations: spec.sa_iterations,
            ..AnnealerConfig::default()
        },
        memory,
        seed: spec.seed,
        replicas: spec.replicas,
        exchange_interval: spec.exchange_interval,
        ..PipetteOptions::default()
    }
}

/// Runs Algorithm 1 for the spec and verifies the answer on the simulated
/// cluster.
///
/// # Errors
///
/// Propagates spec, configuration, and simulation errors.
pub fn run_configure(spec: &JobSpec) -> Result<CliReport, Box<dyn Error>> {
    run_configure_traced(spec, None).map(|(report, _)| report)
}

/// [`run_configure`], optionally recording a structured telemetry trace,
/// and returning the full [`Recommendation`] for explanation rendering.
///
/// # Errors
///
/// Propagates spec, configuration, and simulation errors.
pub fn run_configure_traced(
    spec: &JobSpec,
    trace: Option<&mut Trace>,
) -> Result<(CliReport, Recommendation), Box<dyn Error>> {
    let cluster = spec.build_cluster()?;
    let gpt = spec.build_model()?;
    let cache = spec
        .estimator_cache_dir
        .as_ref()
        .map(pipette::memory::TrainedEstimatorCache::with_dir);
    let mut pipette = Pipette::new(&cluster, &gpt, spec.global_batch, options_for(spec));
    if let Some(cache) = &cache {
        pipette = pipette.with_estimator_cache(cache);
    }
    let rec = match trace {
        Some(trace) => pipette.run_traced(trace)?,
        None => pipette.run()?,
    };
    let runner = ClusterRun::new(&cluster, &gpt);
    let measured = runner.execute(rec.config, &rec.mapping, rec.plan)?;
    let report = CliReport {
        pp: rec.config.pp,
        tp: rec.config.tp,
        dp: rec.config.dp,
        micro_batch: rec.plan.micro_batch,
        n_microbatches: rec.plan.n_microbatches,
        estimated_seconds: rec.estimated_seconds,
        measured_seconds: measured.iteration_seconds,
        peak_memory_gib: measured.peak_memory_bytes as f64 / (1u64 << 30) as f64,
        examined: rec.examined,
        memory_rejected: rec.memory_rejected,
        mapping: rec.mapping.as_slice().iter().map(|g| g.0).collect(),
        replicas: rec.tempering.map_or(1, |t| t.replicas),
        estimator_cache: rec.cache_counters,
    };
    Ok((report, rec))
}

/// Machine-readable result of a `drill` run: the degraded
/// recommendation plus the robustness accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DrillReport {
    /// The recommendation for the surviving subcluster (verified on it).
    pub recommendation: CliReport,
    /// GPUs the healthy cluster had.
    pub healthy_gpus: usize,
    /// GPUs that survived the fault plan.
    pub surviving_gpus: usize,
    /// GPU indices taken out of service.
    pub excluded_gpus: Vec<usize>,
    /// Retry attempts the robust profiler spent.
    pub profiler_retries: usize,
    /// Pairs whose bandwidth had to be imputed from topology priors.
    pub imputed_pairs: usize,
    /// Profiler samples discarded as NaN/zero/implausible.
    pub corrupt_samples: usize,
    /// Whether memory screening fell back to the analytic model.
    pub analytic_memory_fallback: bool,
    /// `degraded_seconds / healthy_seconds` when GPUs were lost.
    #[serde(default)]
    pub slowdown_factor: Option<f64>,
    /// Requests answered in breaker-degraded (analytic-memory) mode.
    /// Zero for one-shot drills; populated by `pipette drill --serve`
    /// replays, where the server's circuit breaker may force analytic
    /// responses mid-timeline.
    #[serde(default)]
    pub degraded_requests: u64,
}

/// Runs the spec's job under a fault plan: robust profiling, exclusion
/// of failed nodes, reconfiguration on the survivors, analytic fallback
/// if estimator training degenerates — then verifies the degraded
/// recommendation on the surviving subcluster.
///
/// # Errors
///
/// Propagates spec, fault-plan, configuration, and simulation errors.
pub fn run_drill_traced(
    spec: &JobSpec,
    plan: &FaultPlan,
    trace: Option<&mut Trace>,
) -> Result<(DrillReport, DegradedOutcome), Box<dyn Error>> {
    let cluster = spec.build_cluster()?;
    let gpt = spec.build_model()?;
    let outcome = run_under_faults(
        &cluster,
        &gpt,
        spec.global_batch,
        options_for(spec),
        plan,
        &RobustProfilingPolicy::default(),
        trace,
    )?;
    let rec = &outcome.recommendation;
    let runner = ClusterRun::new(&outcome.survivor, &gpt);
    let measured = runner.execute(rec.config, &rec.mapping, rec.plan)?;
    let report = DrillReport {
        recommendation: CliReport {
            pp: rec.config.pp,
            tp: rec.config.tp,
            dp: rec.config.dp,
            micro_batch: rec.plan.micro_batch,
            n_microbatches: rec.plan.n_microbatches,
            estimated_seconds: rec.estimated_seconds,
            measured_seconds: measured.iteration_seconds,
            peak_memory_gib: measured.peak_memory_bytes as f64 / (1u64 << 30) as f64,
            examined: rec.examined,
            memory_rejected: rec.memory_rejected,
            mapping: rec.mapping.as_slice().iter().map(|g| g.0).collect(),
            replicas: rec.tempering.map_or(1, |t| t.replicas),
            estimator_cache: rec.cache_counters,
        },
        healthy_gpus: cluster.topology().num_gpus(),
        surviving_gpus: outcome.survivor.topology().num_gpus(),
        excluded_gpus: outcome.excluded_gpus.iter().map(|g| g.0).collect(),
        profiler_retries: outcome.report.retries,
        imputed_pairs: outcome.report.imputed,
        corrupt_samples: outcome.report.corrupt_samples,
        analytic_memory_fallback: outcome.used_analytic_fallback,
        slowdown_factor: outcome.reconfiguration.as_ref().map(|r| r.slowdown_factor),
        degraded_requests: 0,
    };
    Ok((report, outcome))
}

/// Renders the human-readable `drill` transcript.
pub fn render_drill(report: &DrillReport, outcome: &DegradedOutcome) -> String {
    let mut out = String::new();
    let rec = &report.recommendation;
    let _ = writeln!(out, "fault drill on {}", outcome.survivor.name());
    let _ = writeln!(
        out,
        "  gpus              : {} healthy, {} surviving ({} excluded)",
        report.healthy_gpus,
        report.surviving_gpus,
        report.excluded_gpus.len()
    );
    let _ = writeln!(
        out,
        "  robust profiling  : {} retries, {} pairs imputed, {} corrupt samples discarded",
        report.profiler_retries, report.imputed_pairs, report.corrupt_samples
    );
    let _ = writeln!(
        out,
        "  memory estimator  : {}",
        if report.analytic_memory_fallback {
            "analytic fallback (training corpus degenerate)"
        } else {
            "learned MLP (training healthy)"
        }
    );
    let _ = writeln!(
        out,
        "degraded recommendation: (pp={}, tp={}, dp={}) micro={}",
        rec.pp, rec.tp, rec.dp, rec.micro_batch
    );
    let _ = writeln!(
        out,
        "  estimated {:.3} s / measured {:.3} s on the survivors",
        rec.estimated_seconds, rec.measured_seconds
    );
    if let Some(reconf) = &outcome.reconfiguration {
        let h = &reconf.healthy;
        let _ = writeln!(
            out,
            "reconfiguration: healthy (pp={}, tp={}, dp={}) micro={} @ {:.3} s -> {:.2}x slower",
            h.config.pp,
            h.config.tp,
            h.config.dp,
            h.plan.micro_batch,
            h.estimated_seconds,
            reconf.slowdown_factor
        );
    } else {
        let _ = writeln!(out, "reconfiguration: none needed (no GPUs lost)");
    }
    out
}

/// Renders the `explain` report: where the estimated iteration time goes
/// (Eqs. 3–6), which link straggles, how much memory headroom remains,
/// how the annealer converged, and the closest runner-up configurations.
pub fn render_explain(report: &CliReport, rec: &Recommendation, top_k: usize) -> String {
    let mut out = String::new();
    let terms = &rec.breakdown.terms;
    let total = rec.estimated_seconds;
    let pct = |x: f64| if total > 0.0 { 100.0 * x / total } else { 0.0 };
    let _ = writeln!(
        out,
        "recommendation: (pp={}, tp={}, dp={}) micro={} ({} microbatches)",
        report.pp, report.tp, report.dp, report.micro_batch, report.n_microbatches
    );
    let _ = writeln!(out, "estimated iteration time: {total:.3} s\n");

    let _ = writeln!(out, "latency breakdown (critical replica, Eqs. 3-6):");
    let _ = writeln!(
        out,
        "  pipeline bubble   {:>9.3} s  ({:>4.1}%)",
        terms.t_bubble,
        pct(terms.t_bubble)
    );
    let _ = writeln!(
        out,
        "  straggler stages  {:>9.3} s  ({:>4.1}%)  worst: stage {}",
        terms.t_straggler,
        pct(terms.t_straggler),
        terms.straggler_stage
    );
    let _ = writeln!(
        out,
        "  hidden critical   {:>9.3} s  ({:>4.1}%)",
        terms.t_hidden,
        pct(terms.t_hidden)
    );
    let _ = writeln!(
        out,
        "  exposed dp grads  {:>9.3} s  ({:>4.1}%)",
        terms.t_dp,
        pct(terms.t_dp)
    );
    let _ = writeln!(
        out,
        "  optimizer step    {:>9.3} s  ({:>4.1}%)",
        terms.t_optimizer,
        pct(terms.t_optimizer)
    );
    match &rec.breakdown.slow_link {
        Some(link) => {
            let _ = writeln!(
                out,
                "  slowest pp link   GPU {} -> GPU {} (stage {} boundary, {:.1} ms roundtrip)",
                link.from.0,
                link.to.0,
                link.stage,
                link.seconds * 1e3
            );
        }
        None => {
            let _ = writeln!(out, "  slowest pp link   n/a (no pipeline communication)");
        }
    }

    let m = &rec.memory;
    let gib = |b: u64| b as f64 / (1u64 << 30) as f64;
    let _ = writeln!(out, "\nmemory (worst stage, estimator):");
    let _ = writeln!(
        out,
        "  predicted {:.2} GiB of {:.2} GiB ({:.0}% headroom, soft margin {:.0}%)",
        gib(m.predicted_bytes),
        gib(m.limit_bytes),
        100.0 * m.headroom_fraction(),
        100.0 * m.soft_margin
    );
    let _ = writeln!(
        out,
        "  screening: {} candidates examined, {} rejected as OOM risks",
        report.examined, report.memory_rejected
    );
    if let Some(c) = &report.estimator_cache {
        let _ = writeln!(
            out,
            "  estimator cache: {} hits, {} misses, {} corrupt",
            c.hits, c.misses, c.corrupt
        );
    }

    match &rec.anneal_stats {
        Some(sa) => {
            let _ = writeln!(out, "\nworker dedication (simulated annealing):");
            let _ = writeln!(
                out,
                "  {} evaluations, {} accepted, {} improvements",
                sa.evaluations, sa.accepted, sa.improvements
            );
            let _ = writeln!(
                out,
                "  cost {:.3} s -> {:.3} s ({:.2}% better than the identity mapping)",
                sa.initial_cost,
                sa.best_cost,
                100.0 * sa.improvement()
            );
            if let Some(t) = &rec.tempering {
                let _ = writeln!(
                    out,
                    "  tempering: {} replicas, exchange every {} iterations, {}/{} exchanges accepted",
                    t.replicas, t.exchange_interval, t.exchanges_accepted, t.exchanges_attempted
                );
            }
        }
        None => {
            let _ = writeln!(out, "\nworker dedication: disabled (identity mapping)");
        }
    }

    if !rec.alternatives.is_empty() {
        let _ = writeln!(out, "\nrunner-up configurations:");
        for (i, alt) in rec.alternatives.iter().take(top_k).enumerate() {
            let _ = writeln!(
                out,
                "  #{} (pp={}, tp={}, dp={}) micro={}  {:.3} s  (+{:.1}%)",
                i + 2,
                alt.config.pp,
                alt.config.tp,
                alt.config.dp,
                alt.plan.micro_batch,
                alt.estimated_seconds,
                pct(alt.estimated_seconds - total)
            );
        }
    }
    out
}

/// Renders the metrics section of the `explain` report from the trace's
/// `counter` / `histogram` events: the run's own accounting (candidates
/// examined, SA evaluations, per-candidate estimate latency) as the
/// configurator recorded it, not re-derived. Empty when the trace
/// carries no metrics events.
pub fn render_metrics(trace: &Trace) -> String {
    let mut out = String::new();
    let counters: Vec<(&str, u64)> = trace
        .events()
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Counter { name, value } => Some((name.as_str(), *value)),
            _ => None,
        })
        .collect();
    let histograms: Vec<(&str, u64, f64, f64, f64)> = trace
        .events()
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Histogram {
                name,
                count,
                sum,
                min,
                max,
                ..
            } => Some((name.as_str(), *count, *sum, *min, *max)),
            _ => None,
        })
        .collect();
    if counters.is_empty() && histograms.is_empty() {
        return out;
    }
    let _ = writeln!(out, "\nrun metrics (from the telemetry trace):");
    let width = counters
        .iter()
        .map(|(n, _)| n.len())
        .chain(histograms.iter().map(|(n, ..)| n.len()))
        .max()
        .unwrap_or(0);
    for (name, value) in &counters {
        let _ = writeln!(out, "  {name:<width$}  {value}");
    }
    for (name, count, sum, min, max) in &histograms {
        let mean = if *count > 0 { sum / *count as f64 } else { 0.0 };
        let _ = writeln!(
            out,
            "  {name:<width$}  n={count} mean={mean:.6} min={min:.6} max={max:.6}"
        );
    }
    out
}

/// One row of the `--compare` table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompareRow {
    /// Method name.
    pub method: String,
    /// Chosen configuration, rendered.
    pub config: String,
    /// Measured iteration seconds (infinite if nothing ran).
    pub seconds: f64,
    /// Cluster launches spent.
    pub launches: usize,
}

/// Runs Pipette plus the three baselines on the spec's job.
///
/// # Errors
///
/// Propagates spec errors; methods that find nothing runnable produce
/// rows with infinite seconds rather than failing the run.
pub fn run_compare(spec: &JobSpec) -> Result<Vec<CompareRow>, Box<dyn Error>> {
    let cluster = spec.build_cluster()?;
    let gpt = spec.build_model()?;
    let runner = ClusterRun::new(&cluster, &gpt);
    let mut rows = Vec::new();

    if let Some(t) = MegatronTuner::new(&cluster, &gpt, spec.global_batch)
        .with_max_micro(spec.max_micro)
        .tune(&runner)
    {
        rows.push(CompareRow {
            method: "megatron-lm".into(),
            config: format!("{} micro={}", t.config, t.plan.micro_batch),
            seconds: t.measured.iteration_seconds,
            launches: t.trials,
        });
    }

    let vr_runner = ClusterRun::new(&cluster, &gpt).with_recompute(true);
    let vr = VarunaConfigurator::new(&cluster, &gpt, spec.global_batch)
        .with_max_micro(spec.max_micro)
        .rank();
    if let Some(hit) = first_runnable(&vr, &vr_runner) {
        rows.push(CompareRow {
            method: "varuna".into(),
            config: format!(
                "{} micro={}",
                hit.candidate.config, hit.candidate.plan.micro_batch
            ),
            seconds: hit.measured.iteration_seconds,
            launches: hit.attempts,
        });
    }

    let amp = AmpConfigurator::new(&cluster, &gpt, spec.global_batch)
        .with_max_micro(spec.max_micro)
        .rank();
    if let Some(hit) = first_runnable(&amp, &runner) {
        rows.push(CompareRow {
            method: "amp".into(),
            config: format!(
                "{} micro={}",
                hit.candidate.config, hit.candidate.plan.micro_batch
            ),
            seconds: hit.measured.iteration_seconds,
            launches: hit.attempts,
        });
    }

    let report = run_configure(spec)?;
    rows.push(CompareRow {
        method: "pipette".into(),
        config: format!(
            "(pp={}, tp={}, dp={}) micro={}",
            report.pp, report.tp, report.dp, report.micro_batch
        ),
        seconds: report.measured_seconds,
        launches: 1,
    });
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ClusterSpec, ModelSpec};

    fn small_spec() -> JobSpec {
        JobSpec {
            cluster: ClusterSpec {
                preset: "mid-range".into(),
                nodes: 2,
                seed: 3,
            },
            model: ModelSpec::Custom {
                layers: 8,
                hidden: 1024,
                heads: 16,
                seq_len: 2048,
                vocab: 51200,
            },
            global_batch: 64,
            max_micro: 4,
            worker_dedication: true,
            sa_iterations: 1_500,
            seed: 1,
            replicas: 1,
            exchange_interval: 512,
            memory_training_iterations: 1_500,
            estimator_cache_dir: None,
        }
    }

    #[test]
    fn configure_produces_a_runnable_report() {
        let report = run_configure(&small_spec()).expect("feasible job");
        assert_eq!(report.pp * report.tp * report.dp, 16);
        assert!(report.measured_seconds > 0.0);
        assert!(report.peak_memory_gib < 16.0);
        assert_eq!(report.mapping.len(), 16);
    }

    #[test]
    fn compare_includes_all_four_methods() {
        let rows = run_compare(&small_spec()).expect("feasible job");
        let names: Vec<&str> = rows.iter().map(|r| r.method.as_str()).collect();
        assert!(names.contains(&"pipette"));
        assert!(names.contains(&"megatron-lm"));
        assert!(names.contains(&"amp"));
        assert!(names.contains(&"varuna"));
        let pipette = rows.iter().find(|r| r.method == "pipette").unwrap();
        let amp = rows.iter().find(|r| r.method == "amp").unwrap();
        assert!(pipette.seconds <= amp.seconds * 1.03);
    }

    #[test]
    fn explain_report_names_every_section() {
        let mut trace = Trace::new(pipette_obs::TraceConfig::default());
        let (report, rec) =
            run_configure_traced(&small_spec(), Some(&mut trace)).expect("feasible job");
        let text = render_explain(&report, &rec, 5);
        for needle in [
            "recommendation:",
            "latency breakdown",
            "pipeline bubble",
            "straggler stages",
            "hidden critical",
            "optimizer step",
            "memory (worst stage",
            "worker dedication",
            "runner-up configurations:",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // The traced run recorded the recommendation it explains.
        assert_eq!(trace.count_kind("run_start"), 1);
        assert_eq!(trace.count_kind("recommendation"), 1);
        assert!(trace.count_kind("latency_estimate") > 0);
    }

    #[test]
    fn tempered_configure_surfaces_replica_count() {
        let single = run_configure(&small_spec()).expect("feasible job");
        assert_eq!(single.replicas, 1, "single chain reports 1");
        let mut spec = small_spec();
        spec.replicas = 2;
        spec.exchange_interval = 256;
        let report = run_configure(&spec).expect("feasible job");
        assert_eq!(report.replicas, 2);
        assert_eq!(report.pp * report.tp * report.dp, 16);
        // Tempering may find a different mapping but never a worse one
        // than the identity-mapping estimate it started from.
        assert!(report.estimated_seconds > 0.0);
    }

    #[test]
    fn report_serializes_to_json() {
        let report = run_configure(&small_spec()).expect("feasible job");
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"pp\""));
        let back: CliReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.pp, report.pp);
    }
}
