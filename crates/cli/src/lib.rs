//! Library backing the `pipette` command-line tool.
//!
//! The CLI reads a [`JobSpec`] (JSON), runs Algorithm 1, verifies the
//! recommendation on the simulated cluster, and prints a report — or, with
//! `--compare`, a full baseline shoot-out.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod jsonscan;
pub mod jsonwrite;
pub mod report;
pub mod serve_cmd;
pub mod spec;
pub mod trace_cmd;

pub use jsonwrite::{cli_report_json, drill_report_json, render_value};
pub use report::{
    render_drill, render_explain, render_metrics, run_compare, run_configure, run_configure_traced,
    run_drill_traced, CliReport, DrillReport,
};
pub use serve_cmd::{run_drill_serve, PipetteHandler, ServeJob};
pub use spec::{parse_fault_plan_strict, ClusterSpec, JobSpec, ModelSpec, SpecError};
pub use trace_cmd::{trace_check, trace_diff, trace_flame, trace_summarize, TraceCmdOutput};
