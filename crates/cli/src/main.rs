//! `pipette-cli` — configure LLM training from the command line.
//!
//! ```sh
//! pipette-cli configure job.json        # human-readable recommendation
//! pipette-cli configure job.json --json # machine-readable report
//! pipette-cli compare job.json          # shoot-out vs AMP/Varuna/Megatron-LM
//! pipette-cli example-spec              # print a starter job.json
//! ```

use pipette_cli::{
    parse_fault_plan_strict, render_drill, render_explain, render_metrics, run_compare,
    run_configure_traced, run_drill_traced, trace_check, trace_diff, trace_flame, trace_summarize,
    JobSpec, TraceCmdOutput,
};
use pipette_cluster::FaultPlan;
use pipette_obs::{Trace, TraceConfig};
use std::process::ExitCode;

const EXAMPLE_SPEC: &str = r#"{
  "cluster": { "preset": "mid-range", "nodes": 8, "seed": 42 },
  "model":   { "preset": "gpt-1.1b" },
  "global_batch": 256,
  "max_micro": 8,
  "worker_dedication": true,
  "sa_iterations": 30000,
  "seed": 7,
  "replicas": 4,
  "exchange_interval": 512
}"#;

fn usage() -> ExitCode {
    eprintln!("usage: pipette-cli <configure|compare> <job.json> [--json] [--trace-out <path>]");
    eprintln!("       pipette-cli explain <job.json> [--trace-out <path>]");
    eprintln!(
        "       pipette-cli drill <job.json> --faults <plan.json> [--json] [--trace-out <path>]"
    );
    eprintln!("       pipette-cli trace summarize <trace.jsonl> [--top <n>]");
    eprintln!("       pipette-cli trace flame <trace.jsonl>");
    eprintln!("       pipette-cli trace diff <a.jsonl> <b.jsonl>");
    eprintln!("       pipette-cli trace check <trace.jsonl> --budgets <manifest.json>");
    eprintln!("       pipette-cli import-mpigraph <table.txt> <gpus-per-node>");
    eprintln!("       pipette-cli example-spec [--faults]");
    eprintln!();
    eprintln!("  --trace-out writes a deterministic JSONL telemetry trace of the run");
    eprintln!("  drill replays a fault plan: robust profiling, node exclusion, reconfiguration");
    eprintln!("  trace diff exits 1 on drift; trace check exits 1 on a violated budget");
    ExitCode::from(2)
}

const EXAMPLE_FAULT_PLAN: &str = r#"{
  "seed": 1,
  "degraded_links": [ { "from_node": 0, "to_node": 1, "factor": 0.25 } ],
  "straggler_gpus": [ { "gpu": 3, "slowdown": 2.0 } ],
  "failed_gpus": [ 12 ],
  "failed_nodes": [],
  "corrupt_pairs": [ { "from_gpu": 0, "to_gpu": 8, "kind": "nan" } ],
  "measurement_failure_rate": 0.05,
  "sample_loss_rate": 0.0
}"#;

/// Extracts the value of `--<name> <value>` from the argument list.
fn value_arg(args: &[String], name: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .filter(|v| !v.starts_with("--"))
            .cloned()
            .map(Some)
            .ok_or_else(|| format!("{name} needs a file path")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    match command.as_str() {
        "example-spec" => {
            if args.iter().any(|a| a == "--faults") {
                println!("{EXAMPLE_FAULT_PLAN}");
            } else {
                println!("{EXAMPLE_SPEC}");
            }
            ExitCode::SUCCESS
        }
        "import-mpigraph" => {
            let (Some(path), Some(gpn)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let Ok(gpus_per_node) = gpn.parse::<usize>() else {
                return usage();
            };
            match import_mpigraph(path, gpus_per_node) {
                Ok(json) => {
                    println!("{json}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "trace" => trace_command(&args[1..]),
        "configure" | "compare" | "explain" | "drill" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let json_output = args.iter().any(|a| a == "--json");
            let (trace_out, faults_path) = match (
                value_arg(&args, "--trace-out"),
                value_arg(&args, "--faults"),
            ) {
                (Ok(t), Ok(f)) => (t, f),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("error: {e}");
                    return usage();
                }
            };
            if command == "drill" && faults_path.is_none() {
                eprintln!("error: drill needs --faults <plan.json>");
                return usage();
            }
            let spec: JobSpec = match std::fs::read_to_string(path)
                .map_err(|e| e.to_string())
                .and_then(|text| JobSpec::parse_strict(&text).map_err(|e| e.to_string()))
            {
                Ok(spec) => spec,
                Err(e) => {
                    eprintln!("error: cannot read job spec {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let faults = match faults_path.as_deref().map(read_fault_plan).transpose() {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // `configure --faults plan.json` is a synonym for `drill`:
            // a configuration run that degrades gracefully under faults.
            let result = match (command.as_str(), &faults) {
                ("configure", None) => configure(&spec, json_output, trace_out.as_deref()),
                ("configure" | "drill", Some(plan)) => {
                    drill(&spec, plan, json_output, trace_out.as_deref())
                }
                ("explain", _) => explain(&spec, trace_out.as_deref()),
                _ => compare(&spec, json_output),
            };
            match result {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

/// Dispatches the `trace <summarize|flame|diff|check>` analytics family.
/// Reports that find drift or a violated budget exit with failure so CI
/// can gate on them directly.
fn trace_command(args: &[String]) -> ExitCode {
    let Some(verb) = args.first() else {
        return usage();
    };
    let result: Result<TraceCmdOutput, _> = match (verb.as_str(), args.get(1), args.get(2)) {
        ("summarize", Some(path), _) => {
            let top = match value_arg(args, "--top") {
                Ok(None) => 5,
                Ok(Some(n)) => match n.parse::<usize>() {
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("error: --top needs a non-negative integer");
                        return usage();
                    }
                },
                Err(e) => {
                    eprintln!("error: {e}");
                    return usage();
                }
            };
            trace_summarize(path, top)
        }
        ("flame", Some(path), _) => trace_flame(path),
        ("diff", Some(left), Some(right)) => trace_diff(left, right),
        ("check", Some(path), _) => match value_arg(args, "--budgets") {
            Ok(Some(budgets)) => trace_check(path, &budgets),
            Ok(None) => {
                eprintln!("error: trace check needs --budgets <manifest.json>");
                return usage();
            }
            Err(e) => {
                eprintln!("error: {e}");
                return usage();
            }
        },
        _ => return usage(),
    };
    match result {
        Ok(output) => {
            print!("{}", output.text);
            if output.ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Reads and strictly parses a fault plan file.
fn read_fault_plan(path: &str) -> Result<FaultPlan, String> {
    std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read fault plan {path}: {e}"))
        .and_then(|text| {
            parse_fault_plan_strict(&text).map_err(|e| format!("fault plan {path}: {e}"))
        })
}

/// Parses an mpiGraph bandwidth table into a cluster JSON (mid-range
/// nominal link specs, V100 hardware) printed to stdout.
fn import_mpigraph(path: &str, gpus_per_node: usize) -> Result<String, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    let preset = pipette_cluster::presets::mid_range(2);
    let matrix = pipette_cluster::parse_mpigraph(&text, gpus_per_node, preset.intra, preset.inter)?;
    let cluster =
        pipette_cluster::Cluster::new("imported", preset.gpu.clone(), matrix, preset.profiler);
    Ok(cluster.to_json()?)
}

/// Runs the spec, optionally writing the telemetry trace to `trace_out`,
/// and returns both views of the outcome.
fn run_with_optional_trace(
    spec: &JobSpec,
    trace_out: Option<&str>,
) -> Result<(pipette_cli::CliReport, pipette::Recommendation), Box<dyn std::error::Error>> {
    match trace_out {
        None => run_configure_traced(spec, None),
        Some(path) => {
            let mut trace = Trace::new(TraceConfig::default());
            let result = run_configure_traced(spec, Some(&mut trace));
            // Write whatever was recorded even when configuration fails —
            // the trace is most useful for diagnosing exactly that.
            trace.write_jsonl(std::path::Path::new(path))?;
            result
        }
    }
}

fn explain(spec: &JobSpec, trace_out: Option<&str>) -> Result<(), Box<dyn std::error::Error>> {
    // Explain always records a trace: the metrics section reads the
    // run's counter/histogram events back out of it.
    let mut trace = Trace::new(TraceConfig::default());
    let result = run_configure_traced(spec, Some(&mut trace));
    if let Some(path) = trace_out {
        trace.write_jsonl(std::path::Path::new(path))?;
    }
    let (report, rec) = result?;
    print!("{}", render_explain(&report, &rec, 5));
    print!("{}", render_metrics(&trace));
    Ok(())
}

fn configure(
    spec: &JobSpec,
    json: bool,
    trace_out: Option<&str>,
) -> Result<(), Box<dyn std::error::Error>> {
    let (report, _) = run_with_optional_trace(spec, trace_out)?;
    if json {
        println!("{}", serde_json::to_string_pretty(&report)?);
        return Ok(());
    }
    println!(
        "recommended configuration : (pp={}, tp={}, dp={})",
        report.pp, report.tp, report.dp
    );
    println!(
        "microbatch                : {} ({} microbatches/iteration)",
        report.micro_batch, report.n_microbatches
    );
    println!(
        "estimated iteration time  : {:.3} s",
        report.estimated_seconds
    );
    println!(
        "measured iteration time   : {:.3} s (simulated verification)",
        report.measured_seconds
    );
    println!(
        "peak GPU memory           : {:.1} GiB",
        report.peak_memory_gib
    );
    println!(
        "search                    : {} candidates, {} rejected by the memory estimator",
        report.examined, report.memory_rejected
    );
    Ok(())
}

fn drill(
    spec: &JobSpec,
    plan: &FaultPlan,
    json: bool,
    trace_out: Option<&str>,
) -> Result<(), Box<dyn std::error::Error>> {
    let run = |trace: Option<&mut Trace>| run_drill_traced(spec, plan, trace);
    let (report, outcome) = match trace_out {
        None => run(None)?,
        Some(path) => {
            let mut trace = Trace::new(TraceConfig::default());
            let result = run(Some(&mut trace));
            trace.write_jsonl(std::path::Path::new(path))?;
            result?
        }
    };
    if json {
        println!("{}", serde_json::to_string_pretty(&report)?);
    } else {
        print!("{}", render_drill(&report, &outcome));
    }
    Ok(())
}

fn compare(spec: &JobSpec, json: bool) -> Result<(), Box<dyn std::error::Error>> {
    let rows = run_compare(spec)?;
    if json {
        println!("{}", serde_json::to_string_pretty(&rows)?);
        return Ok(());
    }
    println!(
        "{:<14} {:>28} {:>12} {:>9}",
        "method", "config", "iter time", "launches"
    );
    for r in &rows {
        println!(
            "{:<14} {:>28} {:>10.3} s {:>9}",
            r.method, r.config, r.seconds, r.launches
        );
    }
    Ok(())
}
