//! `pipette-cli` — configure LLM training from the command line.
//!
//! ```sh
//! pipette-cli configure job.json        # human-readable recommendation
//! pipette-cli configure job.json --json # machine-readable report
//! pipette-cli compare job.json          # shoot-out vs AMP/Varuna/Megatron-LM
//! pipette-cli example-spec              # print a starter job.json
//! ```

use pipette_cli::{
    drill_report_json, parse_fault_plan_strict, render_drill, render_explain, render_metrics,
    run_compare, run_configure_traced, run_drill_serve, run_drill_traced, trace_check, trace_diff,
    trace_flame, trace_summarize, JobSpec, PipetteHandler, TraceCmdOutput,
};
use pipette_cluster::FaultPlan;
use pipette_obs::{Trace, TraceConfig};
use pipette_serve::{run_pipe, run_unix, ServerConfig};
use std::process::ExitCode;

const EXAMPLE_SPEC: &str = r#"{
  "cluster": { "preset": "mid-range", "nodes": 8, "seed": 42 },
  "model":   { "preset": "gpt-1.1b" },
  "global_batch": 256,
  "max_micro": 8,
  "worker_dedication": true,
  "sa_iterations": 30000,
  "seed": 7,
  "replicas": 4,
  "exchange_interval": 512
}"#;

fn usage() -> ExitCode {
    eprintln!("usage: pipette-cli <configure|compare> <job.json> [--json] [--trace-out <path>]");
    eprintln!("       pipette-cli explain <job.json> [--trace-out <path>]");
    eprintln!(
        "       pipette-cli drill <job.json> --faults <plan.json> [--json] [--trace-out <path>]"
    );
    eprintln!("       pipette-cli drill <job.json> --faults <plan.json> --serve");
    eprintln!(
        "       pipette-cli serve [--socket <path>] [--workers <n>] [--queue-limit <n>] \
         [--retry-after <units>] [--cache-dir <dir>] [--trace-out <path>]"
    );
    eprintln!("       pipette-cli trace summarize <trace.jsonl> [--top <n>]");
    eprintln!("       pipette-cli trace flame <trace.jsonl>");
    eprintln!("       pipette-cli trace diff <a.jsonl> <b.jsonl>");
    eprintln!("       pipette-cli trace check <trace.jsonl> --budgets <manifest.json>");
    eprintln!("       pipette-cli import-mpigraph <table.txt> <gpus-per-node>");
    eprintln!("       pipette-cli example-spec [--faults]");
    eprintln!();
    eprintln!("  --trace-out writes a deterministic JSONL telemetry trace of the run");
    eprintln!("  drill replays a fault plan: robust profiling, node exclusion, reconfiguration");
    eprintln!("  drill --serve replays the plan's drift timeline against a live serve loop");
    eprintln!("  serve answers newline-delimited JSON requests on stdin/stdout (or a unix socket)");
    eprintln!("  trace diff exits 1 on drift; trace check exits 1 on a violated budget");
    ExitCode::from(2)
}

const EXAMPLE_FAULT_PLAN: &str = r#"{
  "seed": 1,
  "degraded_links": [ { "from_node": 0, "to_node": 1, "factor": 0.25 } ],
  "straggler_gpus": [ { "gpu": 3, "slowdown": 2.0 } ],
  "failed_gpus": [ 12 ],
  "failed_nodes": [],
  "corrupt_pairs": [ { "from_gpu": 0, "to_gpu": 8, "kind": "nan" } ],
  "measurement_failure_rate": 0.05,
  "sample_loss_rate": 0.0
}"#;

/// Extracts the value of `--<name> <value>` from the argument list.
fn value_arg(args: &[String], name: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .filter(|v| !v.starts_with("--"))
            .cloned()
            .map(Some)
            .ok_or_else(|| format!("{name} needs a file path")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    match command.as_str() {
        "example-spec" => {
            if args.iter().any(|a| a == "--faults") {
                println!("{EXAMPLE_FAULT_PLAN}");
            } else {
                println!("{EXAMPLE_SPEC}");
            }
            ExitCode::SUCCESS
        }
        "import-mpigraph" => {
            let (Some(path), Some(gpn)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let Ok(gpus_per_node) = gpn.parse::<usize>() else {
                return usage();
            };
            match import_mpigraph(path, gpus_per_node) {
                Ok(json) => {
                    println!("{json}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "trace" => trace_command(&args[1..]),
        "serve" => serve_command(&args[1..]),
        "configure" | "compare" | "explain" | "drill" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let json_output = args.iter().any(|a| a == "--json");
            let (trace_out, faults_path) = match (
                value_arg(&args, "--trace-out"),
                value_arg(&args, "--faults"),
            ) {
                (Ok(t), Ok(f)) => (t, f),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("error: {e}");
                    return usage();
                }
            };
            if command == "drill" && faults_path.is_none() {
                eprintln!("error: drill needs --faults <plan.json>");
                return usage();
            }
            let spec: JobSpec = match std::fs::read_to_string(path)
                .map_err(|e| e.to_string())
                .and_then(|text| JobSpec::parse_strict(&text).map_err(|e| e.to_string()))
            {
                Ok(spec) => spec,
                Err(e) => {
                    eprintln!("error: cannot read job spec {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let faults = match faults_path.as_deref().map(read_fault_plan).transpose() {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // `configure --faults plan.json` is a synonym for `drill`:
            // a configuration run that degrades gracefully under faults.
            let serve_replay = args.iter().any(|a| a == "--serve");
            let result = match (command.as_str(), &faults) {
                ("configure", None) => configure(&spec, json_output, trace_out.as_deref()),
                ("configure" | "drill", Some(plan)) => {
                    if serve_replay {
                        drill_serve(path, faults_path.as_deref().unwrap_or_default())
                    } else {
                        drill(&spec, plan, json_output, trace_out.as_deref())
                    }
                }
                ("explain", _) => explain(&spec, trace_out.as_deref()),
                _ => compare(&spec, json_output),
            };
            match result {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

/// Dispatches the `trace <summarize|flame|diff|check>` analytics family.
/// Reports that find drift or a violated budget exit with failure so CI
/// can gate on them directly.
fn trace_command(args: &[String]) -> ExitCode {
    let Some(verb) = args.first() else {
        return usage();
    };
    let result: Result<TraceCmdOutput, _> = match (verb.as_str(), args.get(1), args.get(2)) {
        ("summarize", Some(path), _) => {
            let top = match value_arg(args, "--top") {
                Ok(None) => 5,
                Ok(Some(n)) => match n.parse::<usize>() {
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("error: --top needs a non-negative integer");
                        return usage();
                    }
                },
                Err(e) => {
                    eprintln!("error: {e}");
                    return usage();
                }
            };
            trace_summarize(path, top)
        }
        ("flame", Some(path), _) => trace_flame(path),
        ("diff", Some(left), Some(right)) => trace_diff(left, right),
        ("check", Some(path), _) => match value_arg(args, "--budgets") {
            Ok(Some(budgets)) => trace_check(path, &budgets),
            Ok(None) => {
                eprintln!("error: trace check needs --budgets <manifest.json>");
                return usage();
            }
            Err(e) => {
                eprintln!("error: {e}");
                return usage();
            }
        },
        _ => return usage(),
    };
    match result {
        Ok(output) => {
            print!("{}", output.text);
            if output.ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Reads and strictly parses a fault plan file.
fn read_fault_plan(path: &str) -> Result<FaultPlan, String> {
    std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read fault plan {path}: {e}"))
        .and_then(|text| {
            parse_fault_plan_strict(&text).map_err(|e| format!("fault plan {path}: {e}"))
        })
}

/// Parses an mpiGraph bandwidth table into a cluster JSON (mid-range
/// nominal link specs, V100 hardware) printed to stdout.
fn import_mpigraph(path: &str, gpus_per_node: usize) -> Result<String, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    let preset = pipette_cluster::presets::mid_range(2);
    let matrix = pipette_cluster::parse_mpigraph(&text, gpus_per_node, preset.intra, preset.inter)?;
    let cluster =
        pipette_cluster::Cluster::new("imported", preset.gpu.clone(), matrix, preset.profiler);
    Ok(cluster.to_json()?)
}

/// Runs the spec, optionally writing the telemetry trace to `trace_out`,
/// and returns both views of the outcome.
fn run_with_optional_trace(
    spec: &JobSpec,
    trace_out: Option<&str>,
) -> Result<(pipette_cli::CliReport, pipette::Recommendation), Box<dyn std::error::Error>> {
    match trace_out {
        None => run_configure_traced(spec, None),
        Some(path) => {
            let mut trace = Trace::new(TraceConfig::default());
            let result = run_configure_traced(spec, Some(&mut trace));
            // Write whatever was recorded even when configuration fails —
            // the trace is most useful for diagnosing exactly that.
            trace.write_jsonl(std::path::Path::new(path))?;
            result
        }
    }
}

fn explain(spec: &JobSpec, trace_out: Option<&str>) -> Result<(), Box<dyn std::error::Error>> {
    // Explain always records a trace: the metrics section reads the
    // run's counter/histogram events back out of it.
    let mut trace = Trace::new(TraceConfig::default());
    let result = run_configure_traced(spec, Some(&mut trace));
    if let Some(path) = trace_out {
        trace.write_jsonl(std::path::Path::new(path))?;
    }
    let (report, rec) = result?;
    print!("{}", render_explain(&report, &rec, 5));
    print!("{}", render_metrics(&trace));
    Ok(())
}

fn configure(
    spec: &JobSpec,
    json: bool,
    trace_out: Option<&str>,
) -> Result<(), Box<dyn std::error::Error>> {
    let (report, _) = run_with_optional_trace(spec, trace_out)?;
    if json {
        println!("{}", serde_json::to_string_pretty(&report)?);
        return Ok(());
    }
    println!(
        "recommended configuration : (pp={}, tp={}, dp={})",
        report.pp, report.tp, report.dp
    );
    println!(
        "microbatch                : {} ({} microbatches/iteration)",
        report.micro_batch, report.n_microbatches
    );
    println!(
        "estimated iteration time  : {:.3} s",
        report.estimated_seconds
    );
    println!(
        "measured iteration time   : {:.3} s (simulated verification)",
        report.measured_seconds
    );
    println!(
        "peak GPU memory           : {:.1} GiB",
        report.peak_memory_gib
    );
    println!(
        "search                    : {} candidates, {} rejected by the memory estimator",
        report.examined, report.memory_rejected
    );
    Ok(())
}

fn drill(
    spec: &JobSpec,
    plan: &FaultPlan,
    json: bool,
    trace_out: Option<&str>,
) -> Result<(), Box<dyn std::error::Error>> {
    let run = |trace: Option<&mut Trace>| run_drill_traced(spec, plan, trace);
    let (report, outcome) = match trace_out {
        None => run(None)?,
        Some(path) => {
            let mut trace = Trace::new(TraceConfig::default());
            let result = run(Some(&mut trace));
            trace.write_jsonl(std::path::Path::new(path))?;
            result?
        }
    };
    if json {
        // The hand-rolled writer, not the serde pretty-printer: CI and
        // downstream tooling get one byte-stable line under a renderer
        // this repo controls.
        println!("{}", drill_report_json(&report));
    } else {
        print!("{}", render_drill(&report, &outcome));
    }
    Ok(())
}

/// `drill --serve`: replay the fault plan's drift timeline against a
/// live in-process server and print one response line per day.
fn drill_serve(spec_path: &str, faults_path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let spec_text = std::fs::read_to_string(spec_path)
        .map_err(|e| format!("cannot read job spec {spec_path}: {e}"))?;
    let fault_text = std::fs::read_to_string(faults_path)
        .map_err(|e| format!("cannot read fault plan {faults_path}: {e}"))?;
    let (lines, summary) = run_drill_serve(&spec_text, &fault_text)?;
    for line in &lines {
        println!("{line}");
    }
    eprintln!(
        "drill --serve: {} requests, {} degraded, {} breaker trips, shutdown={}",
        summary.admitted, summary.degraded_requests, summary.breaker_trips, summary.shutdown
    );
    Ok(())
}

/// Parses `--<name> <n>` as a number, with a default.
fn numeric_arg(args: &[String], name: &str, default: u64) -> Result<u64, String> {
    match value_arg(args, name)? {
        None => Ok(default),
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| format!("{name} needs a non-negative integer, got {v:?}")),
    }
}

/// `pipette serve`: the hardened configurator daemon. Pipe mode (the
/// default) answers newline-delimited JSON requests on stdin/stdout;
/// `--socket` serves connections on a unix socket instead. Responses go
/// to stdout; operational chatter (cache sweep, drain summaries) goes to
/// stderr so the response stream stays machine-readable.
fn serve_command(args: &[String]) -> ExitCode {
    let parsed = (|| -> Result<_, String> {
        let socket = value_arg(args, "--socket")?;
        let cache_dir = value_arg(args, "--cache-dir")?;
        let trace_out = value_arg(args, "--trace-out")?;
        let workers = numeric_arg(args, "--workers", 2)?;
        let queue_limit = numeric_arg(args, "--queue-limit", 64)?;
        let retry_after = numeric_arg(args, "--retry-after", 4096)?;
        if socket.is_some() && trace_out.is_some() {
            return Err("--trace-out is pipe-mode only (one trace per stream)".to_string());
        }
        Ok((
            socket,
            cache_dir,
            trace_out,
            workers,
            queue_limit,
            retry_after,
        ))
    })();
    let (socket, cache_dir, trace_out, workers, queue_limit, retry_after) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let handler = match cache_dir {
        Some(dir) => {
            let (handler, sweep) = PipetteHandler::with_cache_dir(&dir);
            eprintln!(
                "serve: cache sweep of {dir}: {} scanned, {} quarantined, {} indexes healed",
                sweep.scanned, sweep.quarantined, sweep.healed_indexes
            );
            handler
        }
        None => PipetteHandler::new(),
    };
    let config = ServerConfig {
        workers: workers as usize,
        queue_limit: queue_limit as usize,
        retry_after_units: retry_after,
        ..ServerConfig::default()
    };
    let drained = |summary: &pipette_serve::ServeSummary| {
        eprintln!(
            "serve: drained {} requests ({} completed, {} shed, {} errors, {} degraded, {} breaker trips, shutdown={})",
            summary.admitted,
            summary.completed,
            summary.shed,
            summary.errors,
            summary.degraded_requests,
            summary.breaker_trips,
            summary.shutdown
        );
    };
    let result = match socket {
        Some(path) => run_unix(&handler, config, std::path::Path::new(&path)).map(|summaries| {
            for summary in &summaries {
                drained(summary);
            }
        }),
        None => {
            let stdin = std::io::stdin();
            let mut stdout = std::io::stdout();
            run_pipe(&handler, config, stdin.lock(), &mut stdout).and_then(|summary| {
                drained(&summary);
                if let Some(path) = trace_out {
                    summary.trace.write_jsonl(std::path::Path::new(&path))?;
                }
                Ok(())
            })
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn compare(spec: &JobSpec, json: bool) -> Result<(), Box<dyn std::error::Error>> {
    let rows = run_compare(spec)?;
    if json {
        println!("{}", serde_json::to_string_pretty(&rows)?);
        return Ok(());
    }
    println!(
        "{:<14} {:>28} {:>12} {:>9}",
        "method", "config", "iter time", "launches"
    );
    for r in &rows {
        println!(
            "{:<14} {:>28} {:>10.3} s {:>9}",
            r.method, r.config, r.seconds, r.launches
        );
    }
    Ok(())
}
