//! Cooperative cancellation and logical deadline accounting.
//!
//! Long-running phases of Algorithm 1 (sample collection, the SA passes)
//! poll a [`CancelToken`] at the same cadence the wall-clock budget is
//! consulted (`TIME_CHECK_INTERVAL` iterations). Cancellation is
//! best-effort and *best-so-far*: a cancelled annealing pass returns the
//! best mapping found up to the checkpoint, exactly like an expired
//! `time_limit`, and a cancelled sample sweep yields no corpus at all
//! (partial corpora would make the trained weights depend on timing), so
//! the caller falls back to the analytic memory model.
//!
//! Deadlines are *logical*, not wall-clock: [`crate::Pipette`] charges
//! each phase in the same units its trace span reports (profiled pairs,
//! training iterations, candidates, SA evaluations — the Table II cost
//! model) against a fixed budget, and truncates the SA passes
//! deterministically when the budget runs low. Identical request, budget,
//! and seed therefore produce an identical [`DeadlineReport`] at any
//! thread count.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Clones observe the same flag; once set it
/// never resets. Checking is a single relaxed atomic load, cheap enough
/// for the SA step loop's existing checkpoint cadence.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }
}

/// How a logical deadline budget was spent (attached to
/// [`crate::Recommendation::deadline`] when a budget was set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeadlineReport {
    /// The logical budget the run was given.
    pub budget_units: u64,
    /// Logical units charged across all phases (profiling pairs +
    /// training iterations + screened/estimated candidates + SA
    /// iterations).
    pub spent_units: u64,
    /// Whether any phase was cut short (SA passes shortened or skipped,
    /// or estimator training skipped) to fit the budget.
    pub truncated: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_starts_clear_and_latches() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let clone = t.clone();
        t.cancel();
        assert!(t.is_cancelled());
        assert!(clone.is_cancelled(), "clones share the flag");
        t.cancel();
        assert!(t.is_cancelled(), "cancel is idempotent");
    }

    #[test]
    fn independent_tokens_do_not_interfere() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }

    #[test]
    fn report_round_trips_through_serde() {
        let r = DeadlineReport {
            budget_units: 10_000,
            spent_units: 9_999,
            truncated: true,
        };
        let json = serde_json::to_string(&r).unwrap();
        assert_eq!(serde_json::from_str::<DeadlineReport>(&json).unwrap(), r);
    }
}
