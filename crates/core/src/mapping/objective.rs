//! The annealer's objective abstraction and the incremental evaluator.
//!
//! Algorithm 1 spends nearly all of its time inside the SA loop calling
//! the latency estimator, and a full [`PipetteLatencyModel::estimate`]
//! walks every tensor group, pipeline hop, and data-parallel ring of the
//! mapping — `O(pp·tp·dp)` communication-model queries — even though one
//! SA move displaces only a handful of blocks. [`IncrementalObjective`]
//! caches each term at its natural granularity and re-derives only what a
//! move touched:
//!
//! * **per-block ring all-reduce times** (`T_tp`'s expensive factor)
//!   depend only on the GPUs *inside* a block, and SA moves permute whole
//!   blocks — so these values are never recomputed at all, merely permuted
//!   alongside the assignment via [`Move::apply_to`];
//! * **per-hop pipeline transfer times** (Eq. 5) touch two adjacent
//!   blocks — recomputed only for hops bordering a displaced block;
//! * **per-stage data-parallel all-reduce times** (Eq. 6) touch one
//!   stage's replica row — recomputed only for stages owning a displaced
//!   block.
//!
//! The cached terms feed the same [`terms::reduce_latency_s`] reduction the
//! batch estimator uses, so `propose` returns a bit-identical cost to a
//! from-scratch `estimate` of the moved mapping — the annealer's
//! accept/reject trace (and therefore its result for a given seed) is
//! unchanged, only faster.

use crate::latency::{terms, PipetteLatencyModel};
use crate::mapping::arena::{DenseDpMemo, DpMemo, MemoBackend, MemoStats, TouchedSet, UndoLog};
use crate::mapping::moves::Move;
use pipette_cluster::{BandwidthMatrix, GpuId};
use pipette_model::{messages, GptConfig, MicrobatchPlan, ParallelConfig};
use pipette_sim::{HierScratch, Mapping, ProfiledCompute};

/// What the annealer needs from a cost function: a full evaluation for the
/// starting point and a propose/commit/rollback protocol for moves.
///
/// The annealer owns the current mapping and applies each sampled move to
/// it *before* calling [`Objective::propose`]; on rejection it calls
/// [`Objective::rollback`] and un-applies the move itself.
pub trait Objective {
    /// Full cost of `mapping` (called once, for the initial state).
    fn evaluate(&mut self, mapping: &Mapping) -> f64;

    /// Cost of `candidate`, which is the previously evaluated mapping with
    /// `mv` freshly applied.
    fn propose(&mut self, mv: Move, candidate: &Mapping) -> f64;

    /// The proposal was accepted; make its state current.
    fn commit(&mut self) {}

    /// The proposal was rejected; restore the pre-move state.
    fn rollback(&mut self) {}
}

/// Adapter running a plain `Fn(&Mapping) -> f64` closure as an
/// [`Objective`] — the legacy batch path, kept for ablations, toy
/// objectives, and as the reference in bit-identity tests.
#[derive(Debug, Clone)]
pub struct FnObjective<F>(F);

impl<F: Fn(&Mapping) -> f64> FnObjective<F> {
    /// Wraps a closure.
    pub fn new(f: F) -> Self {
        Self(f)
    }
}

impl<F: Fn(&Mapping) -> f64> Objective for FnObjective<F> {
    fn evaluate(&mut self, mapping: &Mapping) -> f64 {
        (self.0)(mapping)
    }

    fn propose(&mut self, _mv: Move, candidate: &Mapping) -> f64 {
        (self.0)(candidate)
    }
}

/// Undo journal of one in-flight proposal.
#[derive(Debug, Clone, Copy)]
struct Pending {
    mv: Move,
    prev_cost: f64,
}

/// Stateful incremental evaluator of Eqs. 3–6 (see the module docs).
#[derive(Debug)]
pub struct IncrementalObjective<'a> {
    matrix: &'a BandwidthMatrix,
    gpt: &'a GptConfig,
    cfg: ParallelConfig,
    plan: MicrobatchPlan,
    msg_pp: u64,
    tp_bytes: u64,
    /// Ring all-reduce time of the tensor group currently at each block
    /// position `b = stage·dp + data`; permuted in lockstep with moves.
    block_allreduce: Vec<f64>,
    /// Round-trip hop time between stages `x` and `x+1` of replica `z`,
    /// indexed `x·dp + z`.
    hops: Vec<f64>,
    /// Per-stage data-parallel all-reduce time.
    dp_times: Vec<f64>,
    /// Content id of the block currently at each position; permuted in
    /// lockstep with moves. Ids name the blocks of the last `rebuild`'s
    /// mapping, whose GPU tuples never change thereafter — every cached
    /// term below is a pure function of content ids.
    block_ids: Vec<u16>,
    /// Hop time for every ordered pair of block contents, indexed
    /// `from_id·num_blocks + to_id`; empty when disabled (see
    /// `HOP_TABLE_MAX_ENTRIES`) or when `pp < 2`. A dirty hop is then a
    /// table read, never a recompute.
    hop_table: Vec<f64>,
    /// Lazily memoized per-stage DP all-reduce times, keyed by
    /// `(stage, packed content-id tuple)`. Values are pure in the key, so
    /// hits are bitwise identical to recomputation — and so is a *miss*
    /// after eviction, which merely recomputes the same bits. The default
    /// backend is the perfect-hash [`DenseDpMemo`] when the key space
    /// fits, otherwise the fixed-capacity open-addressed [`DpMemo`]; the
    /// `BTreeMap` reference path survives behind
    /// [`IncrementalObjective::with_memo_backend`] as the equivalence
    /// oracle. Any observable traversal goes through the ordered drain
    /// (rule D4's intent).
    dp_memo: MemoBackend,
    /// `compute.compute(s)` per stage, hoisted once — static over the
    /// objective's lifetime (the profiled compute never changes).
    stage_compute: Vec<f64>,
    /// Stage of each block position `b = s·dp + z` (`pos_stage[b] = s`),
    /// so `mark_block` never divides by the runtime `dp`.
    pos_stage: Vec<u16>,
    /// `TP_ALLREDUCES_PER_LAYER · layers_of_stage(pp, s)` per stage —
    /// the static factor of the tensor-parallel term (two integer
    /// divisions per evaluation, hoisted out of the per-proposal
    /// reduction).
    tp_factor: Vec<f64>,
    current_cost: f64,
    pending: Option<Pending>,
    /// `(index, old value)` journals for the in-flight proposal — SoA
    /// arenas sized at construction, so steady-state journaling never
    /// allocates.
    hop_undo: UndoLog,
    dp_undo: UndoLog,
    /// Scratch: dirty hop indices / dirty stages of the current proposal —
    /// fixed-capacity buffers sized to the worst case a single move can
    /// touch.
    touched_hops: TouchedSet,
    touched_stages: TouchedSet,
    stage_cost: Vec<f64>,
    group: Vec<GpuId>,
    hier: HierScratch,
}

/// Upper bound on the eager hop table (entries = `num_blocks²`). At the
/// limit the table is 8 MiB and costs ~2·tp·entries point-to-point model
/// evaluations to fill — a few dozen full estimates, amortized over the
/// (typically hundreds of thousands of) SA iterations that follow.
const HOP_TABLE_MAX_ENTRIES: usize = 1 << 20;

/// DP tuples are packed into a `u128` as 16-bit content ids, so stages
/// with more replicas than this fall back to direct recomputation.
const DP_MEMO_MAX_DP: usize = 8;

/// Default slot count of the open-addressed DP memo. 4096 slots hold the
/// working set of every preset in the suite with hit rates ≥90%; under
/// harder churn the seeded-eviction policy degrades to recomputation, not
/// to wrong answers.
const DP_MEMO_DEFAULT_CAPACITY: usize = 1 << 12;

impl<'a> IncrementalObjective<'a> {
    /// Builds the evaluator for one candidate `(cfg, plan)` over the same
    /// inputs the batch estimator reads, primed on `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `compute` has a different stage count than the mapping's
    /// `pp`.
    pub fn new(
        matrix: &'a BandwidthMatrix,
        gpt: &'a GptConfig,
        plan: MicrobatchPlan,
        compute: &'a ProfiledCompute,
        initial: &Mapping,
    ) -> Self {
        let cfg = initial.config();
        // Memo values are pure in their keys, so backend choice can never
        // change a result — pick by key-space size. Small spaces get the
        // perfect-hash dense table (one load per lookup, no eviction);
        // everything else the open-addressed table, whose eviction seed is
        // a pure function of the shape so a given (config, move stream)
        // replays the same hit/miss/evict history in every process (rule
        // D1: replayable from seeds alone).
        let num_blocks = cfg.pp * cfg.dp;
        let memo = match DenseDpMemo::try_new(cfg.pp, num_blocks, cfg.dp) {
            Some(dense) if cfg.dp >= 2 => MemoBackend::Dense(dense),
            _ => {
                let eviction_seed = (cfg.pp as u64) << 40
                    ^ (cfg.dp as u64) << 20
                    ^ cfg.tp as u64
                    ^ 0x0050_4950_4554_5445;
                MemoBackend::Open(DpMemo::new(DP_MEMO_DEFAULT_CAPACITY, eviction_seed))
            }
        };
        Self::with_memo_backend(matrix, gpt, plan, compute, initial, memo)
    }

    /// [`Self::new`] with an explicit memo backend — the reference
    /// `BTreeMap` path for equivalence tests, or an open table at a chosen
    /// capacity (tiny capacities force eviction pressure).
    pub fn with_memo_backend(
        matrix: &'a BandwidthMatrix,
        gpt: &'a GptConfig,
        plan: MicrobatchPlan,
        compute: &'a ProfiledCompute,
        initial: &Mapping,
        memo: MemoBackend,
    ) -> Self {
        let cfg = initial.config();
        debug_assert_eq!(compute.num_stages(), cfg.pp, "profiled stages mismatch");
        let num_blocks = cfg.pp * cfg.dp;
        let num_hops = cfg.pp.saturating_sub(1) * cfg.dp;
        let mut obj = Self {
            matrix,
            gpt,
            cfg,
            plan,
            msg_pp: messages::pp_message_bytes(gpt, plan.micro_batch),
            tp_bytes: messages::tp_allreduce_bytes(gpt, plan.micro_batch),
            block_allreduce: Vec::with_capacity(num_blocks),
            hops: Vec::with_capacity(num_hops),
            dp_times: Vec::with_capacity(cfg.pp),
            block_ids: Vec::with_capacity(num_blocks),
            hop_table: Vec::new(),
            dp_memo: memo,
            pos_stage: (0..num_blocks).map(|b| (b / cfg.dp) as u16).collect(),
            stage_compute: (0..cfg.pp).map(|s| compute.compute(s)).collect(),
            tp_factor: (0..cfg.pp)
                .map(|s| {
                    messages::TP_ALLREDUCES_PER_LAYER as f64 * gpt.layers_of_stage(cfg.pp, s) as f64
                })
                .collect(),
            current_cost: 0.0,
            pending: None,
            // Worst case one move can journal: every hop dirty (a full-span
            // Migration/Reverse), every stage dirty.
            hop_undo: UndoLog::new(num_hops),
            dp_undo: UndoLog::new(cfg.pp),
            // Touched sets dedup on push, so their domains bound them:
            // every hop / every stage dirty at most once per proposal.
            touched_hops: TouchedSet::new(num_hops),
            touched_stages: TouchedSet::new(cfg.pp),
            stage_cost: Vec::with_capacity(cfg.pp),
            group: Vec::with_capacity(cfg.dp),
            hier: HierScratch::new(),
        };
        obj.rebuild(initial);
        obj
    }

    /// Convenience constructor reading the matrix/model out of a batch
    /// estimator, guaranteeing both evaluate the same inputs.
    pub fn from_model(
        model: &PipetteLatencyModel<'a>,
        gpt: &'a GptConfig,
        plan: MicrobatchPlan,
        compute: &'a ProfiledCompute,
        initial: &Mapping,
    ) -> Self {
        Self::new(model.matrix(), gpt, plan, compute, initial)
    }

    /// The cost of the current (committed or in-flight) mapping.
    pub fn cost(&self) -> f64 {
        self.current_cost
    }

    /// Hit/miss/eviction counters of the dense or open-addressed memo,
    /// or `None` on the reference backend (which never evicts and keeps
    /// no counters).
    pub fn memo_stats(&self) -> Option<MemoStats> {
        match &self.dp_memo {
            MemoBackend::Dense(m) => Some(m.stats()),
            MemoBackend::Open(m) => Some(m.stats()),
            MemoBackend::Reference(_) => None,
        }
    }

    /// Recomputes every cache from scratch for `mapping`, whose blocks
    /// become the content ids all later proposals are tracked against.
    fn rebuild(&mut self, mapping: &Mapping) {
        debug_assert_eq!(
            mapping.config(),
            self.cfg,
            "mapping built for another configuration"
        );
        let comm = pipette_sim::CommModel::new(self.matrix);
        let (pp, dp, tp) = (self.cfg.pp, self.cfg.dp, self.cfg.tp.max(1));
        let num_blocks = pp * dp;
        self.block_allreduce.clear();
        for s in 0..pp {
            for z in 0..dp {
                self.block_allreduce
                    .push(comm.ring_allreduce(&mapping.tensor_group(s, z), self.tp_bytes));
            }
        }
        self.hops.clear();
        for x in 0..pp.saturating_sub(1) {
            for z in 0..dp {
                self.hops.push(terms::t_pp_chain_hop(
                    self.matrix,
                    mapping,
                    self.msg_pp,
                    z,
                    x,
                ));
            }
        }
        self.dp_times.clear();
        for s in 0..pp {
            self.dp_times.push(terms::t_dp_stage_with(
                &mut self.hier,
                &mut self.group,
                self.matrix,
                mapping,
                self.gpt,
                s,
            ));
        }

        // Content ids: id i names the block at position i of *this*
        // mapping. Earlier ids (from a previous rebuild) are obsolete, and
        // so is everything memoized against them — but the freshly
        // computed dp_times are valid *per stage* under the new ids, so
        // reseed those instead of leaving the whole memo cold: the first
        // rollback to (or re-proposal of) any stage's identity tuple is a
        // hit, not a recompute.
        self.block_ids.clear();
        self.block_ids.extend((0..num_blocks).map(|i| i as u16));
        self.dp_memo.clear();
        if dp >= 2 {
            for s in 0..pp {
                if let Some(k) = self.dp_key(s) {
                    self.dp_memo.insert(s, k, self.dp_times[s]);
                }
            }
        }
        self.hop_table.clear();
        if pp >= 2 && num_blocks * num_blocks <= HOP_TABLE_MAX_ENTRIES {
            let assign = mapping.as_slice();
            for i in 0..num_blocks {
                let a = &assign[i * tp..(i + 1) * tp];
                for j in 0..num_blocks {
                    let b = &assign[j * tp..(j + 1) * tp];
                    self.hop_table.push(if i == j {
                        0.0
                    } else {
                        terms::t_pp_hop_between(self.matrix, a, b, self.msg_pp)
                    });
                }
            }
        }

        self.pending = None;
        self.current_cost = self.reduce();
    }

    /// Packs the content-id tuple of stage `s` into a memo key, or `None`
    /// when the stage has too many replicas to pack.
    fn dp_key(&self, s: usize) -> Option<u128> {
        let dp = self.cfg.dp;
        if dp > DP_MEMO_MAX_DP {
            return None;
        }
        let mut key = 0u128;
        for &id in &self.block_ids[s * dp..(s + 1) * dp] {
            key = key << 16 | id as u128;
        }
        Some(key)
    }

    // pipette-lint: hot-path
    /// Runs the shared reduction over the cached terms. Uses the
    /// precomputed-slice form: bitwise-identical to
    /// [`terms::reduce_latency_s`] with the closure lookups (proven by the
    /// parity test in `latency::terms`), but with the per-stage compute
    /// and tensor-parallel factors hoisted to construction time.
    fn reduce(&mut self) -> f64 {
        terms::reduce_latency_cached_s(
            self.cfg,
            self.plan,
            &self.stage_compute,
            &self.tp_factor,
            &self.block_allreduce,
            &self.hops,
            &self.dp_times,
            &mut self.stage_cost,
        )
    }

    // pipette-lint: hot-path
    /// Marks every hop and stage adjacent to block position `b` dirty.
    ///
    /// With `b = s·dp + z`, the upstream hop `(s−1)·dp + z` is just
    /// `b − dp` and the downstream hop `s·dp + z` is `b` itself, and the
    /// stage comes from the precomputed position table — no division by
    /// the runtime `dp` on the hot path.
    #[inline]
    fn mark_block(&mut self, b: usize) {
        let dp = self.cfg.dp;
        self.touched_stages.push(self.pos_stage[b] as usize);
        if b >= dp {
            self.touched_hops.push(b - dp);
        }
        if b + dp < self.pos_stage.len() {
            self.touched_hops.push(b);
        }
    }
}

impl Objective for IncrementalObjective<'_> {
    fn evaluate(&mut self, mapping: &Mapping) -> f64 {
        self.rebuild(mapping);
        self.current_cost
    }

    // pipette-lint: hot-path
    /// `candidate` must be the last evaluated/committed mapping with `mv`
    /// applied (at `tp`-block granularity), which is exactly how the
    /// annealer drives it. Steady-state allocation-free: every buffer
    /// written here is a fixed-capacity arena sized at construction.
    fn propose(&mut self, mv: Move, candidate: &Mapping) -> f64 {
        debug_assert!(
            self.pending.is_none(),
            "propose while a proposal is in flight"
        );
        // Block contents travel with the move, and the per-block ring
        // all-reduce time depends only on the contents: permute the cache,
        // and the content ids with it.
        mv.apply_to(&mut self.block_allreduce, 1);
        mv.apply_to(&mut self.block_ids, 1);

        self.touched_hops.clear();
        self.touched_stages.clear();
        match mv {
            Move::Swap { a, b } => {
                self.mark_block(a);
                self.mark_block(b);
            }
            Move::Migration { from, to } => {
                for b in from.min(to)..=from.max(to) {
                    self.mark_block(b);
                }
            }
            Move::Reverse { start, end } => {
                for b in start..=end {
                    self.mark_block(b);
                }
            }
        }
        self.hop_undo.clear();
        let dp = self.cfg.dp;
        let num_blocks = self.cfg.pp * dp;
        // Destructure so the touched lists can be iterated directly while
        // the journals and term arrays are written (disjoint borrows; the
        // index-loop alternative re-checks bounds on every access).
        let Self {
            touched_hops,
            hop_undo,
            hops,
            hop_table,
            block_ids,
            matrix,
            msg_pp,
            ..
        } = self;
        if hop_table.is_empty() {
            for &h in touched_hops.as_slice() {
                let h = h as usize;
                hop_undo.push(h, hops[h]);
                // Hop h = (x, z) joins the blocks at positions x·dp+z and
                // (x+1)·dp+z.
                hops[h] = terms::t_pp_chain_hop(matrix, candidate, *msg_pp, h % dp, h / dp);
            }
        } else {
            for &h in touched_hops.as_slice() {
                let h = h as usize;
                hop_undo.push(h, hops[h]);
                // The hop's time is tabulated by its content pair.
                let from = block_ids[h] as usize;
                let to = block_ids[h + dp] as usize;
                hops[h] = hop_table[from * num_blocks + to];
            }
        }
        let Self {
            touched_stages,
            dp_undo,
            dp_times,
            dp_memo,
            block_ids,
            hier,
            group,
            matrix,
            gpt,
            ..
        } = self;
        dp_undo.clear();
        if dp >= 2 {
            match dp_memo {
                // Dense backend: address the memo by the id tuple itself —
                // no u128 packing, no per-lookup backend dispatch.
                MemoBackend::Dense(memo) => {
                    for &s in touched_stages.as_slice() {
                        let s = s as usize;
                        dp_undo.push(s, dp_times[s]);
                        let ids = &block_ids[s * dp..(s + 1) * dp];
                        dp_times[s] = match memo.get_tuple(s, ids) {
                            Some(v) => v,
                            None => {
                                let v =
                                    terms::t_dp_stage_with(hier, group, matrix, candidate, gpt, s);
                                memo.insert_tuple(s, ids, v);
                                v
                            }
                        };
                    }
                }
                dp_memo => {
                    let packable = dp <= DP_MEMO_MAX_DP;
                    for &s in touched_stages.as_slice() {
                        let s = s as usize;
                        dp_undo.push(s, dp_times[s]);
                        // Inline `dp_key`: pack the stage's content-id
                        // tuple.
                        let key = if packable {
                            let mut k = 0u128;
                            for &id in &block_ids[s * dp..(s + 1) * dp] {
                                k = k << 16 | id as u128;
                            }
                            Some(k)
                        } else {
                            None
                        };
                        dp_times[s] = match key.and_then(|k| dp_memo.get(s, k)) {
                            Some(v) => v,
                            None => {
                                let v =
                                    terms::t_dp_stage_with(hier, group, matrix, candidate, gpt, s);
                                if let Some(k) = key {
                                    dp_memo.insert(s, k, v);
                                }
                                v
                            }
                        };
                    }
                }
            }
        }

        let cost = self.reduce();
        self.pending = Some(Pending {
            mv,
            prev_cost: self.current_cost,
        });
        self.current_cost = cost;
        cost
    }

    // pipette-lint: hot-path
    fn commit(&mut self) {
        let committed = self.pending.take();
        debug_assert!(committed.is_some(), "commit without a proposal");
    }

    // pipette-lint: hot-path
    fn rollback(&mut self) {
        let Some(p) = self.pending.take() else {
            debug_assert!(false, "rollback without a proposal");
            return;
        };
        let inv = p.mv.inverse();
        inv.apply_to(&mut self.block_allreduce, 1);
        inv.apply_to(&mut self.block_ids, 1);
        for (h, old) in self.hop_undo.entries() {
            self.hops[h] = old;
        }
        for (s, old) in self.dp_undo.entries() {
            self.dp_times[s] = old;
        }
        self.current_cost = p.prev_cost;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipette_cluster::presets;
    use pipette_model::ParallelConfig;
    use pipette_sim::ComputeProfiler;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (pipette_cluster::Cluster, GptConfig) {
        (
            presets::mid_range(2).build(7),
            GptConfig::new(8, 1024, 16, 2048, 51200),
        )
    }

    /// Drives random moves through the incremental objective and checks
    /// every proposal bit-for-bit against the batch estimator.
    fn parity_run(cfg: ParallelConfig, micro: u64, seed: u64, n_moves: usize) {
        let (cluster, gpt) = setup();
        let plan = MicrobatchPlan::new(64, micro).unwrap();
        let gpu = cluster.gpu().clone();
        let (profiled, _) = cluster.profiler().profile(cluster.bandwidth(), 2);
        let compute =
            ComputeProfiler::default().profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 3);
        let model = PipetteLatencyModel::new(&profiled, &gpt);
        let mut mapping = Mapping::identity(cfg, *cluster.topology());
        let mut obj = IncrementalObjective::from_model(&model, &gpt, plan, &compute, &mapping);
        assert_eq!(
            obj.cost().to_bits(),
            model.estimate(cfg, &mapping, plan, &compute).to_bits(),
            "initial cost mismatch"
        );
        let block = cfg.tp.max(1);
        let num_blocks = cfg.num_workers() / block;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for i in 0..n_moves {
            let mv = Move::random(&mut rng, num_blocks);
            mv.apply(mapping.as_mut_slice(), block);
            let fast = obj.propose(mv, &mapping);
            let slow = model.estimate(cfg, &mapping, plan, &compute);
            assert_eq!(
                fast.to_bits(),
                slow.to_bits(),
                "move {i} ({mv:?}): {fast} vs {slow}"
            );
            // Alternate accept/reject so both paths get exercised.
            if i % 2 == 0 {
                obj.commit();
            } else {
                obj.rollback();
                mv.inverse().apply(mapping.as_mut_slice(), block);
                let restored = model.estimate(cfg, &mapping, plan, &compute);
                assert_eq!(
                    obj.cost().to_bits(),
                    restored.to_bits(),
                    "rollback {i} diverged"
                );
            }
        }
    }

    #[test]
    fn proposals_match_batch_estimates_bitwise() {
        parity_run(ParallelConfig::new(4, 2, 2), 2, 11, 60);
        parity_run(ParallelConfig::new(2, 4, 2), 1, 12, 60);
        parity_run(ParallelConfig::new(8, 2, 1), 2, 13, 60);
        parity_run(ParallelConfig::new(1, 2, 8), 4, 14, 40);
        parity_run(ParallelConfig::new(4, 1, 4), 2, 15, 40);
    }

    #[test]
    fn fn_objective_matches_closure() {
        let (cluster, gpt) = setup();
        let cfg = ParallelConfig::new(2, 4, 2);
        let mapping = Mapping::identity(cfg, *cluster.topology());
        let plan = MicrobatchPlan::new(32, 2).unwrap();
        let gpu = cluster.gpu().clone();
        let (profiled, _) = cluster.profiler().profile(cluster.bandwidth(), 2);
        let compute =
            ComputeProfiler::default().profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 3);
        let model = PipetteLatencyModel::new(&profiled, &gpt);
        let mut f = FnObjective::new(|m: &Mapping| model.estimate(cfg, m, plan, &compute));
        assert_eq!(
            f.evaluate(&mapping),
            model.estimate(cfg, &mapping, plan, &compute)
        );
    }

    #[test]
    #[should_panic(expected = "without a proposal")]
    fn rollback_without_proposal_panics() {
        let (cluster, gpt) = setup();
        let cfg = ParallelConfig::new(2, 4, 2);
        let mapping = Mapping::identity(cfg, *cluster.topology());
        let plan = MicrobatchPlan::new(32, 2).unwrap();
        let gpu = cluster.gpu().clone();
        let (profiled, _) = cluster.profiler().profile(cluster.bandwidth(), 2);
        let compute =
            ComputeProfiler::default().profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 3);
        let mut obj = IncrementalObjective::new(profiled.matrix(), &gpt, plan, &compute, &mapping);
        obj.rollback();
    }
}
