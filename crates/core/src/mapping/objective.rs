//! The annealer's objective abstraction and the incremental evaluator.
//!
//! Algorithm 1 spends nearly all of its time inside the SA loop calling
//! the latency estimator, and a full [`PipetteLatencyModel::estimate`]
//! walks every tensor group, pipeline hop, and data-parallel ring of the
//! mapping — `O(pp·tp·dp)` communication-model queries — even though one
//! SA move displaces only a handful of blocks. [`IncrementalObjective`]
//! caches each term at its natural granularity and re-derives only what a
//! move touched:
//!
//! * **per-block ring all-reduce times** (`T_tp`'s expensive factor)
//!   depend only on the GPUs *inside* a block, and SA moves permute whole
//!   blocks — so these values are never recomputed at all, merely permuted
//!   alongside the assignment via [`Move::apply_to`];
//! * **per-hop pipeline transfer times** (Eq. 5) touch two adjacent
//!   blocks — recomputed only for hops bordering a displaced block;
//! * **per-stage data-parallel all-reduce times** (Eq. 6) touch one
//!   stage's replica row — recomputed only for stages owning a displaced
//!   block.
//!
//! The cached terms feed the same [`terms::reduce_latency_s`] reduction the
//! batch estimator uses, so `propose` returns a bit-identical cost to a
//! from-scratch `estimate` of the moved mapping — the annealer's
//! accept/reject trace (and therefore its result for a given seed) is
//! unchanged, only faster.

use crate::latency::{terms, PipetteLatencyModel};
use crate::mapping::moves::Move;
use pipette_cluster::{BandwidthMatrix, GpuId};
use pipette_model::{messages, GptConfig, MicrobatchPlan, ParallelConfig};
use pipette_sim::{HierScratch, Mapping, ProfiledCompute};
use std::collections::BTreeMap;

/// What the annealer needs from a cost function: a full evaluation for the
/// starting point and a propose/commit/rollback protocol for moves.
///
/// The annealer owns the current mapping and applies each sampled move to
/// it *before* calling [`Objective::propose`]; on rejection it calls
/// [`Objective::rollback`] and un-applies the move itself.
pub trait Objective {
    /// Full cost of `mapping` (called once, for the initial state).
    fn evaluate(&mut self, mapping: &Mapping) -> f64;

    /// Cost of `candidate`, which is the previously evaluated mapping with
    /// `mv` freshly applied.
    fn propose(&mut self, mv: Move, candidate: &Mapping) -> f64;

    /// The proposal was accepted; make its state current.
    fn commit(&mut self) {}

    /// The proposal was rejected; restore the pre-move state.
    fn rollback(&mut self) {}
}

/// Adapter running a plain `Fn(&Mapping) -> f64` closure as an
/// [`Objective`] — the legacy batch path, kept for ablations, toy
/// objectives, and as the reference in bit-identity tests.
#[derive(Debug, Clone)]
pub struct FnObjective<F>(F);

impl<F: Fn(&Mapping) -> f64> FnObjective<F> {
    /// Wraps a closure.
    pub fn new(f: F) -> Self {
        Self(f)
    }
}

impl<F: Fn(&Mapping) -> f64> Objective for FnObjective<F> {
    fn evaluate(&mut self, mapping: &Mapping) -> f64 {
        (self.0)(mapping)
    }

    fn propose(&mut self, _mv: Move, candidate: &Mapping) -> f64 {
        (self.0)(candidate)
    }
}

/// Undo journal of one in-flight proposal.
#[derive(Debug, Clone, Copy)]
struct Pending {
    mv: Move,
    prev_cost: f64,
}

/// Stateful incremental evaluator of Eqs. 3–6 (see the module docs).
#[derive(Debug)]
pub struct IncrementalObjective<'a> {
    matrix: &'a BandwidthMatrix,
    gpt: &'a GptConfig,
    cfg: ParallelConfig,
    plan: MicrobatchPlan,
    compute: &'a ProfiledCompute,
    msg_pp: u64,
    tp_bytes: u64,
    /// Ring all-reduce time of the tensor group currently at each block
    /// position `b = stage·dp + data`; permuted in lockstep with moves.
    block_allreduce: Vec<f64>,
    /// Round-trip hop time between stages `x` and `x+1` of replica `z`,
    /// indexed `x·dp + z`.
    hops: Vec<f64>,
    /// Per-stage data-parallel all-reduce time.
    dp_times: Vec<f64>,
    /// Content id of the block currently at each position; permuted in
    /// lockstep with moves. Ids name the blocks of the last `rebuild`'s
    /// mapping, whose GPU tuples never change thereafter — every cached
    /// term below is a pure function of content ids.
    block_ids: Vec<u16>,
    /// Hop time for every ordered pair of block contents, indexed
    /// `from_id·num_blocks + to_id`; empty when disabled (see
    /// `HOP_TABLE_MAX_ENTRIES`) or when `pp < 2`. A dirty hop is then a
    /// table read, never a recompute.
    hop_table: Vec<f64>,
    /// Lazily memoized per-stage DP all-reduce times, keyed by
    /// `(stage, packed content-id tuple)`. Values are pure in the key, so
    /// hits are bitwise identical to recomputation. An ordered map keeps
    /// every observable traversal deterministic by construction (rule D4),
    /// and the keys' common `(stage, …)` prefix makes the lookups cheap.
    dp_memo: BTreeMap<(usize, u128), f64>,
    current_cost: f64,
    pending: Option<Pending>,
    /// `(index, old value)` journals for the in-flight proposal.
    hop_undo: Vec<(usize, f64)>,
    dp_undo: Vec<(usize, f64)>,
    /// Scratch: dirty hop indices / dirty stages of the current proposal.
    touched_hops: Vec<usize>,
    touched_stages: Vec<usize>,
    stage_cost: Vec<f64>,
    group: Vec<GpuId>,
    hier: HierScratch,
}

/// Upper bound on the eager hop table (entries = `num_blocks²`). At the
/// limit the table is 8 MiB and costs ~2·tp·entries point-to-point model
/// evaluations to fill — a few dozen full estimates, amortized over the
/// (typically hundreds of thousands of) SA iterations that follow.
const HOP_TABLE_MAX_ENTRIES: usize = 1 << 20;

/// DP tuples are packed into a `u128` as 16-bit content ids, so stages
/// with more replicas than this fall back to direct recomputation.
const DP_MEMO_MAX_DP: usize = 8;

impl<'a> IncrementalObjective<'a> {
    /// Builds the evaluator for one candidate `(cfg, plan)` over the same
    /// inputs the batch estimator reads, primed on `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `compute` has a different stage count than the mapping's
    /// `pp`.
    pub fn new(
        matrix: &'a BandwidthMatrix,
        gpt: &'a GptConfig,
        plan: MicrobatchPlan,
        compute: &'a ProfiledCompute,
        initial: &Mapping,
    ) -> Self {
        let cfg = initial.config();
        debug_assert_eq!(compute.num_stages(), cfg.pp, "profiled stages mismatch");
        let mut obj = Self {
            matrix,
            gpt,
            cfg,
            plan,
            compute,
            msg_pp: messages::pp_message_bytes(gpt, plan.micro_batch),
            tp_bytes: messages::tp_allreduce_bytes(gpt, plan.micro_batch),
            block_allreduce: Vec::new(),
            hops: Vec::new(),
            dp_times: Vec::new(),
            block_ids: Vec::new(),
            hop_table: Vec::new(),
            dp_memo: BTreeMap::new(),
            current_cost: 0.0,
            pending: None,
            hop_undo: Vec::new(),
            dp_undo: Vec::new(),
            touched_hops: Vec::new(),
            touched_stages: Vec::new(),
            stage_cost: Vec::with_capacity(cfg.pp),
            group: Vec::with_capacity(cfg.dp),
            hier: HierScratch::new(),
        };
        obj.rebuild(initial);
        obj
    }

    /// Convenience constructor reading the matrix/model out of a batch
    /// estimator, guaranteeing both evaluate the same inputs.
    pub fn from_model(
        model: &PipetteLatencyModel<'a>,
        gpt: &'a GptConfig,
        plan: MicrobatchPlan,
        compute: &'a ProfiledCompute,
        initial: &Mapping,
    ) -> Self {
        Self::new(model.matrix(), gpt, plan, compute, initial)
    }

    /// The cost of the current (committed or in-flight) mapping.
    pub fn cost(&self) -> f64 {
        self.current_cost
    }

    /// Recomputes every cache from scratch for `mapping`, whose blocks
    /// become the content ids all later proposals are tracked against.
    fn rebuild(&mut self, mapping: &Mapping) {
        debug_assert_eq!(
            mapping.config(),
            self.cfg,
            "mapping built for another configuration"
        );
        let comm = pipette_sim::CommModel::new(self.matrix);
        let (pp, dp, tp) = (self.cfg.pp, self.cfg.dp, self.cfg.tp.max(1));
        let num_blocks = pp * dp;
        self.block_allreduce.clear();
        for s in 0..pp {
            for z in 0..dp {
                self.block_allreduce
                    .push(comm.ring_allreduce(&mapping.tensor_group(s, z), self.tp_bytes));
            }
        }
        self.hops.clear();
        for x in 0..pp.saturating_sub(1) {
            for z in 0..dp {
                self.hops.push(terms::t_pp_chain_hop(
                    self.matrix,
                    mapping,
                    self.msg_pp,
                    z,
                    x,
                ));
            }
        }
        self.dp_times.clear();
        for s in 0..pp {
            self.dp_times.push(terms::t_dp_stage_with(
                &mut self.hier,
                &mut self.group,
                self.matrix,
                mapping,
                self.gpt,
                s,
            ));
        }

        // Content ids: id i names the block at position i of *this*
        // mapping. Earlier ids (from a previous rebuild) are obsolete, and
        // so is everything memoized against them.
        self.block_ids.clear();
        self.block_ids.extend((0..num_blocks).map(|i| i as u16));
        self.dp_memo.clear();
        self.hop_table.clear();
        if pp >= 2 && num_blocks * num_blocks <= HOP_TABLE_MAX_ENTRIES {
            let assign = mapping.as_slice();
            for i in 0..num_blocks {
                let a = &assign[i * tp..(i + 1) * tp];
                for j in 0..num_blocks {
                    let b = &assign[j * tp..(j + 1) * tp];
                    self.hop_table.push(if i == j {
                        0.0
                    } else {
                        terms::t_pp_hop_between(self.matrix, a, b, self.msg_pp)
                    });
                }
            }
        }

        self.pending = None;
        self.current_cost = self.reduce();
    }

    /// Packs the content-id tuple of stage `s` into a memo key, or `None`
    /// when the stage has too many replicas to pack.
    fn dp_key(&self, s: usize) -> Option<u128> {
        let dp = self.cfg.dp;
        if dp > DP_MEMO_MAX_DP {
            return None;
        }
        let mut key = 0u128;
        for &id in &self.block_ids[s * dp..(s + 1) * dp] {
            key = key << 16 | id as u128;
        }
        Some(key)
    }

    /// Runs the shared reduction over the cached terms.
    fn reduce(&mut self) -> f64 {
        let dp = self.cfg.dp;
        let (gpt, pp_total) = (self.gpt, self.cfg.pp);
        let tp_small = self.cfg.tp < 2;
        let block_allreduce = &self.block_allreduce;
        let hops = &self.hops;
        terms::reduce_latency_s(
            self.cfg,
            self.plan,
            self.compute,
            &self.dp_times,
            |s, z| {
                if tp_small {
                    0.0
                } else {
                    terms::t_tp_from_allreduce(gpt, pp_total, s, block_allreduce[s * dp + z])
                }
            },
            |x, z| hops[x * dp + z],
            &mut self.stage_cost,
        )
    }

    /// Marks every hop and stage adjacent to block position `b` dirty.
    fn mark_block(&mut self, b: usize) {
        let (pp, dp) = (self.cfg.pp, self.cfg.dp);
        let (s, z) = (b / dp, b % dp);
        self.touched_stages.push(s);
        if s > 0 {
            self.touched_hops.push((s - 1) * dp + z);
        }
        if s + 1 < pp {
            self.touched_hops.push(s * dp + z);
        }
    }
}

impl Objective for IncrementalObjective<'_> {
    fn evaluate(&mut self, mapping: &Mapping) -> f64 {
        self.rebuild(mapping);
        self.current_cost
    }

    /// `candidate` must be the last evaluated/committed mapping with `mv`
    /// applied (at `tp`-block granularity), which is exactly how the
    /// annealer drives it.
    fn propose(&mut self, mv: Move, candidate: &Mapping) -> f64 {
        debug_assert!(
            self.pending.is_none(),
            "propose while a proposal is in flight"
        );
        // Block contents travel with the move, and the per-block ring
        // all-reduce time depends only on the contents: permute the cache,
        // and the content ids with it.
        mv.apply_to(&mut self.block_allreduce, 1);
        mv.apply_to(&mut self.block_ids, 1);

        self.touched_hops.clear();
        self.touched_stages.clear();
        match mv {
            Move::Swap { a, b } => {
                self.mark_block(a);
                self.mark_block(b);
            }
            Move::Migration { from, to } => {
                for b in from.min(to)..=from.max(to) {
                    self.mark_block(b);
                }
            }
            Move::Reverse { start, end } => {
                for b in start..=end {
                    self.mark_block(b);
                }
            }
        }
        self.touched_hops.sort_unstable();
        self.touched_hops.dedup();
        self.touched_stages.sort_unstable();
        self.touched_stages.dedup();

        self.hop_undo.clear();
        let dp = self.cfg.dp;
        let num_blocks = self.cfg.pp * dp;
        for i in 0..self.touched_hops.len() {
            let h = self.touched_hops[i];
            self.hop_undo.push((h, self.hops[h]));
            // Hop h = (x, z) joins the blocks at positions x·dp+z and
            // (x+1)·dp+z; its time is tabulated by their content pair.
            self.hops[h] = if self.hop_table.is_empty() {
                terms::t_pp_chain_hop(self.matrix, candidate, self.msg_pp, h % dp, h / dp)
            } else {
                let from = self.block_ids[h] as usize;
                let to = self.block_ids[h + dp] as usize;
                self.hop_table[from * num_blocks + to]
            };
        }
        self.dp_undo.clear();
        if dp >= 2 {
            for i in 0..self.touched_stages.len() {
                let s = self.touched_stages[i];
                self.dp_undo.push((s, self.dp_times[s]));
                let key = self.dp_key(s);
                self.dp_times[s] = match key.and_then(|k| self.dp_memo.get(&(s, k)).copied()) {
                    Some(v) => v,
                    None => {
                        let v = terms::t_dp_stage_with(
                            &mut self.hier,
                            &mut self.group,
                            self.matrix,
                            candidate,
                            self.gpt,
                            s,
                        );
                        if let Some(k) = key {
                            self.dp_memo.insert((s, k), v);
                        }
                        v
                    }
                };
            }
        }

        let cost = self.reduce();
        self.pending = Some(Pending {
            mv,
            prev_cost: self.current_cost,
        });
        self.current_cost = cost;
        cost
    }

    fn commit(&mut self) {
        let committed = self.pending.take();
        debug_assert!(committed.is_some(), "commit without a proposal");
    }

    fn rollback(&mut self) {
        let Some(p) = self.pending.take() else {
            debug_assert!(false, "rollback without a proposal");
            return;
        };
        let inv = p.mv.inverse();
        inv.apply_to(&mut self.block_allreduce, 1);
        inv.apply_to(&mut self.block_ids, 1);
        for &(h, old) in &self.hop_undo {
            self.hops[h] = old;
        }
        for &(s, old) in &self.dp_undo {
            self.dp_times[s] = old;
        }
        self.current_cost = p.prev_cost;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipette_cluster::presets;
    use pipette_model::ParallelConfig;
    use pipette_sim::ComputeProfiler;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (pipette_cluster::Cluster, GptConfig) {
        (
            presets::mid_range(2).build(7),
            GptConfig::new(8, 1024, 16, 2048, 51200),
        )
    }

    /// Drives random moves through the incremental objective and checks
    /// every proposal bit-for-bit against the batch estimator.
    fn parity_run(cfg: ParallelConfig, micro: u64, seed: u64, n_moves: usize) {
        let (cluster, gpt) = setup();
        let plan = MicrobatchPlan::new(64, micro).unwrap();
        let gpu = cluster.gpu().clone();
        let (profiled, _) = cluster.profiler().profile(cluster.bandwidth(), 2);
        let compute =
            ComputeProfiler::default().profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 3);
        let model = PipetteLatencyModel::new(&profiled, &gpt);
        let mut mapping = Mapping::identity(cfg, *cluster.topology());
        let mut obj = IncrementalObjective::from_model(&model, &gpt, plan, &compute, &mapping);
        assert_eq!(
            obj.cost().to_bits(),
            model.estimate(cfg, &mapping, plan, &compute).to_bits(),
            "initial cost mismatch"
        );
        let block = cfg.tp.max(1);
        let num_blocks = cfg.num_workers() / block;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for i in 0..n_moves {
            let mv = Move::random(&mut rng, num_blocks);
            mv.apply(mapping.as_mut_slice(), block);
            let fast = obj.propose(mv, &mapping);
            let slow = model.estimate(cfg, &mapping, plan, &compute);
            assert_eq!(
                fast.to_bits(),
                slow.to_bits(),
                "move {i} ({mv:?}): {fast} vs {slow}"
            );
            // Alternate accept/reject so both paths get exercised.
            if i % 2 == 0 {
                obj.commit();
            } else {
                obj.rollback();
                mv.inverse().apply(mapping.as_mut_slice(), block);
                let restored = model.estimate(cfg, &mapping, plan, &compute);
                assert_eq!(
                    obj.cost().to_bits(),
                    restored.to_bits(),
                    "rollback {i} diverged"
                );
            }
        }
    }

    #[test]
    fn proposals_match_batch_estimates_bitwise() {
        parity_run(ParallelConfig::new(4, 2, 2), 2, 11, 60);
        parity_run(ParallelConfig::new(2, 4, 2), 1, 12, 60);
        parity_run(ParallelConfig::new(8, 2, 1), 2, 13, 60);
        parity_run(ParallelConfig::new(1, 2, 8), 4, 14, 40);
        parity_run(ParallelConfig::new(4, 1, 4), 2, 15, 40);
    }

    #[test]
    fn fn_objective_matches_closure() {
        let (cluster, gpt) = setup();
        let cfg = ParallelConfig::new(2, 4, 2);
        let mapping = Mapping::identity(cfg, *cluster.topology());
        let plan = MicrobatchPlan::new(32, 2).unwrap();
        let gpu = cluster.gpu().clone();
        let (profiled, _) = cluster.profiler().profile(cluster.bandwidth(), 2);
        let compute =
            ComputeProfiler::default().profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 3);
        let model = PipetteLatencyModel::new(&profiled, &gpt);
        let mut f = FnObjective::new(|m: &Mapping| model.estimate(cfg, m, plan, &compute));
        assert_eq!(
            f.evaluate(&mapping),
            model.estimate(cfg, &mapping, plan, &compute)
        );
    }

    #[test]
    #[should_panic(expected = "without a proposal")]
    fn rollback_without_proposal_panics() {
        let (cluster, gpt) = setup();
        let cfg = ParallelConfig::new(2, 4, 2);
        let mapping = Mapping::identity(cfg, *cluster.topology());
        let plan = MicrobatchPlan::new(32, 2).unwrap();
        let gpu = cluster.gpu().clone();
        let (profiled, _) = cluster.profiler().profile(cluster.bandwidth(), 2);
        let compute =
            ComputeProfiler::default().profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 3);
        let mut obj = IncrementalObjective::new(profiled.matrix(), &gpt, plan, &compute, &mapping);
        obj.rollback();
    }
}
