//! Parallel tempering: K annealing chains on a geometric temperature
//! ladder with deterministic replica exchange.
//!
//! A single SA chain is inherently sequential; on a many-core box the
//! configurator's most important phase leaves the machine idle. Parallel
//! tempering (replica-exchange Monte Carlo) runs `replicas` chains of the
//! *same* per-iteration loop ([`crate::mapping::Annealer`]'s `ChainCore`)
//! at staggered temperatures and periodically proposes swapping the
//! states of adjacent-temperature pairs — hot chains explore, cold chains
//! refine, and exchange routes promising states down the ladder. Total
//! search throughput scales with cores because chains only rendezvous at
//! exchange rounds ([`crate::parallel::barrier_rounds`]).
//!
//! Determinism is non-negotiable here, as everywhere in this repo:
//!
//! * every chain owns an RNG seeded from (base seed, replica index) —
//!   never shared, never reseeded;
//! * exchange decisions are drawn from a dedicated splitmix64 stream
//!   keyed by `(round, pair)` and compared against the pair's energies —
//!   a pure function of values that are themselves thread-invariant, so
//!   the exchange trajectory is independent of thread scheduling;
//! * chains are stepped in fixed ownership under `barrier_rounds`, whose
//!   contract makes the parallel run observationally identical to the
//!   sequential `threads = 1` execution.
//!
//! With `replicas = 1` there are no pairs, the ladder collapses to the
//! legacy temperature, and replica 0's seed is the base seed — the
//! trajectory is bit-identical to [`crate::mapping::Annealer`]
//! (`tests/tempering.rs` asserts this).

use crate::cancel::CancelToken;
use crate::mapping::annealer::{
    enabled_moves, AnnealStats, Annealer, AnnealerConfig, ChainCore, NoOpObserver, SaObserver,
    TIME_CHECK_INTERVAL,
};
use crate::mapping::arena::splitmix64;
use crate::mapping::objective::{FnObjective, Objective};
use crate::parallel;
use pipette_sim::Mapping;
use serde::{Deserialize, Serialize};
use std::mem;
use std::time::{Duration, Instant};

/// Spreads replica seeds across the u64 space (the golden-ratio
/// increment, the same constant splitmix64 itself strides by). Replica 0
/// keeps the base seed, so a one-replica ladder replays the single-chain
/// trajectory exactly.
const REPLICA_SEED_STRIDE: u64 = 0x9e37_79b9_7f4a_7c15;

/// Salt separating the replica-exchange stream from every other seeded
/// stream in the repo (ASCII `"pt-xchg!"`).
const EXCHANGE_STREAM_SALT: u64 = 0x7074_2d78_6368_6721;

/// The temperature ladder and exchange cadence of a tempering run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TemperingSchedule {
    /// Number of chains. `1` degenerates to single-chain annealing.
    pub replicas: usize,
    /// Iterations each chain runs between exchange rounds.
    pub exchange_interval: usize,
    /// Geometric ratio between adjacent rungs: replica `r` starts at
    /// `base_temperature · temp_ratio^r` (replica 0 is the coldest and
    /// matches the single-chain annealer's temperature exactly).
    pub temp_ratio: f64,
}

impl Default for TemperingSchedule {
    fn default() -> Self {
        Self {
            replicas: 4,
            exchange_interval: 512,
            temp_ratio: 2.0,
        }
    }
}

impl TemperingSchedule {
    /// A ladder sized for a thread budget: one replica per worker, capped
    /// at 8 (rungs beyond that add more random walk than refinement at
    /// this move set). Note this is an explicit *opt-in* constructor —
    /// [`crate::configurator::PipetteOptions`] deliberately defaults to
    /// `replicas = 1` because the recommendation must not depend on the
    /// machine's core count.
    pub fn for_threads(threads: usize) -> Self {
        Self {
            replicas: threads.clamp(1, 8),
            ..Self::default()
        }
    }

    /// The ladder's temperature multiplier for `replica`.
    pub fn temperature_scale(&self, replica: usize) -> f64 {
        self.temp_ratio.powi(replica as i32)
    }
}

/// One replica-exchange decision, handed to the exchange observer after
/// the verdict (mirrors [`crate::mapping::SaMoveRecord`] for moves).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PtExchangeRecord {
    /// Exchange round index (one round per `exchange_interval`).
    pub round: usize,
    /// Colder replica of the adjacent pair.
    pub replica_lo: usize,
    /// Hotter replica of the adjacent pair (`replica_lo + 1`).
    pub replica_hi: usize,
    /// Colder slot's temperature at the decision.
    pub temp_lo: f64,
    /// Hotter slot's temperature at the decision.
    pub temp_hi: f64,
    /// Colder slot's current cost before the swap decision.
    pub cost_lo: f64,
    /// Hotter slot's current cost before the swap decision.
    pub cost_hi: f64,
    /// Whether the states were swapped.
    pub accepted: bool,
}

/// Statistics of one tempering run.
#[derive(Debug, Clone, PartialEq)]
pub struct TemperingStats {
    /// Per-replica annealing statistics, in ladder order. Each replica's
    /// `elapsed` is its *busy* time inside its own segments (what a
    /// dedicated core would spend), not the run's wall clock.
    pub replica_stats: Vec<AnnealStats>,
    /// Adjacent-pair swap decisions taken.
    pub exchanges_attempted: usize,
    /// Decisions that swapped states.
    pub exchanges_accepted: usize,
    /// Wall-clock time of the whole run, setup included.
    pub elapsed: Duration,
}

impl TemperingStats {
    /// The run folded into single-chain-shaped stats: evaluation and
    /// acceptance counts summed across replicas, `best_cost` the ladder's
    /// best, `elapsed` the run's wall clock. For `replicas = 1` the
    /// counts equal the legacy [`Annealer`]'s exactly.
    pub fn merged(&self) -> AnnealStats {
        let mut merged = AnnealStats {
            evaluations: 0,
            accepted: 0,
            improvements: 0,
            initial_cost: self.replica_stats.first().map_or(0.0, |s| s.initial_cost),
            best_cost: f64::INFINITY,
            elapsed: self.elapsed,
        };
        for s in &self.replica_stats {
            merged.evaluations += s.evaluations;
            merged.accepted += s.accepted;
            merged.improvements += s.improvements;
            if s.best_cost < merged.best_cost {
                merged.best_cost = s.best_cost;
            }
        }
        merged
    }
}

/// The uniform draw deciding exchange `(round, pair)`: three rounds of
/// splitmix64 over (salted seed, round, pair), mapped to `[0, 1)`. Keyed
/// by logical indices only — no chain RNG is consumed, so the stream is
/// identical however the chains were scheduled.
fn exchange_unit(seed: u64, round: u64, pair: u64) -> f64 {
    let h = splitmix64(splitmix64(splitmix64(seed ^ EXCHANGE_STREAM_SALT) ^ round) ^ pair);
    // 53 high bits → [0, 1), the standard u64-to-double ladder.
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The Metropolis swap decision for an adjacent-temperature pair: a pure
/// function of `(seed, round, pair)` and the pair's temperatures and
/// energies — nothing else. Swapping states between inverse temperatures
/// β_lo ≥ β_hi is accepted with probability
/// `min(1, exp((β_lo − β_hi) · (E_lo − E_hi)))`: guaranteed when the
/// hotter replica holds the lower energy, probabilistic otherwise.
pub fn exchange_accepts(
    seed: u64,
    round: usize,
    pair: usize,
    temp_lo: f64,
    temp_hi: f64,
    cost_lo: f64,
    cost_hi: f64,
) -> bool {
    let beta_lo = if temp_lo > 0.0 {
        temp_lo.recip()
    } else {
        f64::INFINITY
    };
    let beta_hi = if temp_hi > 0.0 {
        temp_hi.recip()
    } else {
        f64::INFINITY
    };
    let log_p = (beta_lo - beta_hi) * (cost_lo - cost_hi);
    if log_p.is_nan() {
        // Degenerate ladder (both rungs at zero temperature, or a zero
        // energy gap against an infinite β gap): fall back to greedy —
        // swap exactly when it moves the lower energy to the colder slot.
        return cost_hi < cost_lo;
    }
    if log_p >= 0.0 {
        return true;
    }
    exchange_unit(seed, round as u64, pair as u64) < log_p.exp()
}

/// One chain of the ladder: the shared single-chain stepping state plus
/// its objective and observer. On an accepted exchange the *state*
/// (current mapping + cost + the objective caching them) swaps between
/// slots while the slot keeps its temperature, RNG, best-so-far and
/// counters — the standard replica-exchange formulation, and the one
/// that keeps every slot's RNG stream and ladder position fixed.
struct Chain<'o, O, Obs> {
    core: ChainCore,
    objective: O,
    observer: &'o mut Obs,
    /// Busy time inside this chain's own segments (two `Instant` reads
    /// per round, amortized over `exchange_interval` iterations).
    busy: Duration,
    /// Set when the chain exhausted its iterations or its time budget.
    done: bool,
}

/// One exchange pass over adjacent pairs: even-offset pairs on even
/// rounds, odd-offset pairs on odd rounds (the deterministic-even-odd
/// scheme, so every rung meets both neighbours on alternating rounds).
/// Runs on the coordinating thread with exclusive access to all chains.
// pipette-lint: hot-path
fn exchange_pass<O: Objective, Obs: SaObserver>(
    round: usize,
    seed: u64,
    chains: &mut [&mut Chain<'_, O, Obs>],
    attempted: &mut usize,
    accepted: &mut usize,
    on_exchange: &mut dyn FnMut(&PtExchangeRecord),
) {
    let mut lo = round % 2;
    while lo + 1 < chains.len() {
        let (head, tail) = chains.split_at_mut(lo + 1);
        let a: &mut Chain<'_, O, Obs> = head[lo];
        let b: &mut Chain<'_, O, Obs> = tail[0];
        let record = PtExchangeRecord {
            round,
            replica_lo: lo,
            replica_hi: lo + 1,
            temp_lo: a.core.temp,
            temp_hi: b.core.temp,
            cost_lo: a.core.current_cost,
            cost_hi: b.core.current_cost,
            accepted: exchange_accepts(
                seed,
                round,
                lo,
                a.core.temp,
                b.core.temp,
                a.core.current_cost,
                b.core.current_cost,
            ),
        };
        *attempted += 1;
        if record.accepted {
            *accepted += 1;
            mem::swap(&mut a.core.current, &mut b.core.current);
            mem::swap(&mut a.core.current_cost, &mut b.core.current_cost);
            mem::swap(&mut a.objective, &mut b.objective);
        }
        on_exchange(&record);
        lo += 2;
    }
}

/// K simultaneous annealing chains with deterministic replica exchange.
///
/// ```
/// use pipette::mapping::{AnnealerConfig, ParallelTemperingAnnealer, TemperingSchedule};
/// use pipette_cluster::ClusterTopology;
/// use pipette_model::ParallelConfig;
/// use pipette_sim::Mapping;
///
/// let cfg = ParallelConfig::new(4, 2, 2);
/// let identity = Mapping::identity(cfg, ClusterTopology::new(4, 4));
/// let objective = |m: &Mapping| m.as_slice().iter().position(|g| g.0 == 0).unwrap() as f64;
/// let pt = ParallelTemperingAnnealer::new(
///     AnnealerConfig { iterations: 2_000, ..Default::default() },
///     TemperingSchedule { replicas: 3, exchange_interval: 128, ..Default::default() },
/// );
/// let (best, cost, stats) = pt.anneal_closure(1, &identity, objective);
/// assert!(cost <= stats.merged().initial_cost);
/// assert!(best.is_permutation());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ParallelTemperingAnnealer {
    annealer: Annealer,
    schedule: TemperingSchedule,
}

impl ParallelTemperingAnnealer {
    /// Creates a tempering annealer.
    ///
    /// # Panics
    ///
    /// Panics on an invalid [`AnnealerConfig`] (see [`Annealer::new`]) or
    /// an invalid schedule: `replicas == 0`, `exchange_interval == 0`, or
    /// a `temp_ratio` below 1 or non-finite.
    pub fn new(config: AnnealerConfig, schedule: TemperingSchedule) -> Self {
        // pipette-lint: allow(D2) -- documented `# Panics` constructor contract, mirroring Annealer::new
        assert!(schedule.replicas >= 1, "replicas must be at least 1");
        // pipette-lint: allow(D2) -- same documented `# Panics` contract: a zero interval would never rendezvous
        assert!(
            schedule.exchange_interval >= 1,
            "exchange_interval must be at least 1"
        );
        // pipette-lint: allow(D2) -- same documented `# Panics` contract: the ladder must warm monotonically
        assert!(
            schedule.temp_ratio.is_finite() && schedule.temp_ratio >= 1.0,
            "temp_ratio must be finite and >= 1"
        );
        Self {
            annealer: Annealer::new(config),
            schedule,
        }
    }

    /// The annealer configuration in use.
    pub fn config(&self) -> AnnealerConfig {
        self.annealer.config()
    }

    /// The schedule in use.
    pub fn schedule(&self) -> TemperingSchedule {
        self.schedule
    }

    /// [`Self::anneal_observed`] with no observers: the closure builds
    /// one objective per replica.
    pub fn anneal<O, MkO>(
        &self,
        threads: usize,
        initial: &Mapping,
        make_objective: MkO,
    ) -> (Mapping, f64, TemperingStats)
    where
        O: Objective + Send,
        MkO: FnMut(usize, &Mapping) -> O,
    {
        let mut observers = vec![NoOpObserver; self.schedule.replicas];
        self.anneal_observed(threads, initial, make_objective, &mut observers, |_| {})
    }

    /// [`Self::anneal`] polling a [`CancelToken`] at the step loop's
    /// checkpoint cadence (see [`Self::anneal_cancellable_observed`]).
    pub fn anneal_cancellable<O, MkO>(
        &self,
        threads: usize,
        initial: &Mapping,
        make_objective: MkO,
        cancel: Option<&CancelToken>,
    ) -> (Mapping, f64, TemperingStats)
    where
        O: Objective + Send,
        MkO: FnMut(usize, &Mapping) -> O,
    {
        let mut observers = vec![NoOpObserver; self.schedule.replicas];
        self.anneal_cancellable_observed(
            threads,
            initial,
            make_objective,
            &mut observers,
            |_| {},
            cancel,
        )
    }

    /// [`Self::anneal`] over a plain cost closure (each replica wraps a
    /// shared reference to it in its own [`FnObjective`]) — the
    /// counterpart of [`Annealer::anneal`] for baseline comparisons.
    pub fn anneal_closure<F>(
        &self,
        threads: usize,
        initial: &Mapping,
        objective: F,
    ) -> (Mapping, f64, TemperingStats)
    where
        F: Fn(&Mapping) -> f64 + Sync,
    {
        self.anneal(threads, initial, |_, _| FnObjective::new(&objective))
    }

    /// Minimizes over `replicas` chains, each with its own objective
    /// (from `make_objective(replica, initial)`, called in replica order
    /// on the calling thread) and its own observer. `on_exchange` sees
    /// every swap decision in `(round, pair)` order on the coordinating
    /// thread. Returns the ladder's best mapping, its cost, and
    /// per-replica plus merged statistics.
    ///
    /// The result is bit-identical at any `threads`, and for
    /// `replicas = 1` bit-identical to [`Annealer::anneal_observed`].
    ///
    /// # Panics
    ///
    /// Panics if `observers.len() != schedule.replicas`.
    pub fn anneal_observed<O, MkO, Obs>(
        &self,
        threads: usize,
        initial: &Mapping,
        make_objective: MkO,
        observers: &mut [Obs],
        on_exchange: impl FnMut(&PtExchangeRecord),
    ) -> (Mapping, f64, TemperingStats)
    where
        O: Objective + Send,
        MkO: FnMut(usize, &Mapping) -> O,
        Obs: SaObserver + Send,
    {
        self.anneal_cancellable_observed(
            threads,
            initial,
            make_objective,
            observers,
            on_exchange,
            None,
        )
    }

    /// [`Self::anneal_observed`] polling a [`CancelToken`] inside each
    /// chain's step loop (same [`TIME_CHECK_INTERVAL`] cadence as the
    /// wall-clock budget) and at exchange rounds. Cancellation marks every
    /// chain done, so the run rendezvous at the next exchange interval and
    /// returns the ladder's best-so-far — never an error, never a block
    /// past one exchange interval. An un-cancelled token is bit-identical
    /// to the token-less run.
    pub fn anneal_cancellable_observed<O, MkO, Obs>(
        &self,
        threads: usize,
        initial: &Mapping,
        mut make_objective: MkO,
        observers: &mut [Obs],
        mut on_exchange: impl FnMut(&PtExchangeRecord),
        cancel: Option<&CancelToken>,
    ) -> (Mapping, f64, TemperingStats)
    where
        O: Objective + Send,
        MkO: FnMut(usize, &Mapping) -> O,
        Obs: SaObserver + Send,
    {
        let config = self.annealer.config();
        let replicas = self.schedule.replicas;
        // pipette-lint: allow(D2) -- documented `# Panics` contract: one observer per replica is the API shape
        assert_eq!(
            observers.len(),
            replicas,
            "one observer per replica required"
        );
        // pipette-lint: allow(D1) -- opt-in wall-clock budget + busy-time accounting; neither feeds a decision on deterministic runs
        let start = Instant::now();
        let block = initial.config().tp.max(1);
        let num_blocks = initial.as_slice().len() / block;

        // Build the ladder on the calling thread, in replica order. Each
        // chain evaluates the initial mapping through its *own* objective
        // (deterministically equal across replicas), mirroring the
        // single-chain loop's opening evaluation.
        let mut chains: Vec<Chain<'_, O, Obs>> = Vec::with_capacity(replicas);
        let mut initial_cost = 0.0f64;
        for (replica, observer) in observers.iter_mut().enumerate() {
            let mut objective = make_objective(replica, initial);
            initial_cost = objective.evaluate(initial);
            let temp = initial_cost
                * config.initial_temp_fraction
                * self.schedule.temperature_scale(replica);
            let seed = config
                .seed
                .wrapping_add((replica as u64).wrapping_mul(REPLICA_SEED_STRIDE));
            chains.push(Chain {
                core: ChainCore::new(initial, initial_cost, temp, seed),
                objective,
                observer,
                busy: Duration::ZERO,
                done: false,
            });
        }

        if num_blocks < 2 {
            let stats = collect_stats(&chains, initial_cost, 0, 0, start.elapsed());
            return (initial.clone(), initial_cost, stats);
        }

        let (enabled_buf, enabled_len) = enabled_moves(&config);
        let enabled = &enabled_buf[..enabled_len];
        let total_iterations = config.iterations;
        let interval = self.schedule.exchange_interval;
        let rounds = total_iterations.div_ceil(interval).max(1);
        let alpha = config.alpha;
        let time_limit = config.time_limit;
        let exchange_seed = config.seed;
        let mut exchanges_attempted = 0usize;
        let mut exchanges_accepted = 0usize;

        parallel::barrier_rounds(
            threads,
            &mut chains,
            rounds,
            |_, round, chain| {
                if chain.done {
                    return;
                }
                // pipette-lint: allow(D1) -- segment busy-time accounting; never read by a search decision
                let segment_start = Instant::now();
                let seg_from = round.saturating_mul(interval);
                let seg_to = seg_from.saturating_add(interval).min(total_iterations);
                for it in seg_from..seg_to {
                    if it % TIME_CHECK_INTERVAL == 0 {
                        if cancel.is_some_and(CancelToken::is_cancelled) {
                            chain.done = true;
                            chain.busy += segment_start.elapsed();
                            return;
                        }
                        if let Some(limit) = time_limit {
                            if start.elapsed() >= limit {
                                chain.done = true;
                                chain.busy += segment_start.elapsed();
                                return;
                            }
                        }
                    }
                    chain.core.step(
                        it,
                        enabled,
                        num_blocks,
                        block,
                        alpha,
                        &mut chain.objective,
                        chain.observer,
                    );
                }
                if seg_to >= total_iterations {
                    chain.done = true;
                }
                chain.busy += segment_start.elapsed();
            },
            |round, chains| {
                if chains.iter().all(|c| c.done) {
                    return false;
                }
                exchange_pass(
                    round,
                    exchange_seed,
                    chains,
                    &mut exchanges_attempted,
                    &mut exchanges_accepted,
                    &mut on_exchange,
                );
                true
            },
        );

        let stats = collect_stats(
            &chains,
            initial_cost,
            exchanges_attempted,
            exchanges_accepted,
            start.elapsed(),
        );
        let mut best_idx = 0usize;
        for (i, chain) in chains.iter().enumerate().skip(1) {
            if chain.core.best_cost < chains[best_idx].core.best_cost {
                best_idx = i;
            }
        }
        let best_cost = chains[best_idx].core.best_cost;
        let best = chains.swap_remove(best_idx).core.best;
        (best, best_cost, stats)
    }
}

/// Folds the ladder into [`TemperingStats`]. Each replica counts its
/// opening evaluation of the initial mapping (matching the single-chain
/// stats contract), and its `elapsed` is busy time, not wall clock.
fn collect_stats<O, Obs>(
    chains: &[Chain<'_, O, Obs>],
    initial_cost: f64,
    exchanges_attempted: usize,
    exchanges_accepted: usize,
    elapsed: Duration,
) -> TemperingStats {
    let replica_stats = chains
        .iter()
        .map(|c| AnnealStats {
            evaluations: c.core.evaluations + 1,
            accepted: c.core.accepted,
            improvements: c.core.improvements,
            initial_cost,
            best_cost: c.core.best_cost,
            elapsed: c.busy,
        })
        .collect();
    TemperingStats {
        replica_stats,
        exchanges_attempted,
        exchanges_accepted,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipette_cluster::ClusterTopology;
    use pipette_model::ParallelConfig;

    fn setup(pp: usize, tp: usize, dp: usize) -> Mapping {
        let cfg = ParallelConfig::new(pp, tp, dp);
        let topo = ClusterTopology::new(cfg.num_workers() / 4, 4);
        Mapping::identity(cfg, topo)
    }

    fn displacement_cost(target: &[usize]) -> impl Fn(&Mapping) -> f64 + Sync + '_ {
        move |m: &Mapping| {
            m.as_slice()
                .iter()
                .enumerate()
                .map(|(i, g)| (g.0 as f64 - target[i] as f64).abs())
                .sum()
        }
    }

    #[test]
    fn ladder_is_geometric_and_monotone() {
        let sched = TemperingSchedule {
            replicas: 5,
            temp_ratio: 1.7,
            ..Default::default()
        };
        assert_eq!(sched.temperature_scale(0), 1.0);
        for r in 1..sched.replicas {
            let ratio = sched.temperature_scale(r) / sched.temperature_scale(r - 1);
            assert!((ratio - 1.7).abs() < 1e-12);
            assert!(sched.temperature_scale(r) > sched.temperature_scale(r - 1));
        }
    }

    #[test]
    fn for_threads_clamps_to_ladder_bounds() {
        assert_eq!(TemperingSchedule::for_threads(0).replicas, 1);
        assert_eq!(TemperingSchedule::for_threads(1).replicas, 1);
        assert_eq!(TemperingSchedule::for_threads(6).replicas, 6);
        assert_eq!(TemperingSchedule::for_threads(64).replicas, 8);
    }

    #[test]
    #[should_panic(expected = "replicas")]
    fn zero_replicas_rejected() {
        ParallelTemperingAnnealer::new(
            AnnealerConfig::fast_test(),
            TemperingSchedule {
                replicas: 0,
                ..Default::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "exchange_interval")]
    fn zero_interval_rejected() {
        ParallelTemperingAnnealer::new(
            AnnealerConfig::fast_test(),
            TemperingSchedule {
                exchange_interval: 0,
                ..Default::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "temp_ratio")]
    fn cooling_ladder_rejected() {
        ParallelTemperingAnnealer::new(
            AnnealerConfig::fast_test(),
            TemperingSchedule {
                temp_ratio: 0.5,
                ..Default::default()
            },
        );
    }

    /// The exchange decision is a pure function: same inputs, same verdict,
    /// no matter how many times or in what order it is consulted.
    #[test]
    fn exchange_decision_is_pure() {
        let cases = [
            (7u64, 0usize, 0usize, 1.0, 2.0, 10.0, 9.0),
            (7, 0, 0, 1.0, 2.0, 9.0, 10.0),
            (7, 3, 2, 0.5, 4.0, 100.0, 100.5),
            (999, 12, 0, 1e-9, 1e9, 5.0, 4.0),
        ];
        for &(seed, round, pair, tl, th, cl, ch) in &cases {
            let first = exchange_accepts(seed, round, pair, tl, th, cl, ch);
            for _ in 0..3 {
                assert_eq!(first, exchange_accepts(seed, round, pair, tl, th, cl, ch));
            }
        }
    }

    /// A swap that moves the lower energy to the colder rung is always
    /// accepted (log_p ≥ 0), for any (seed, round, pair).
    #[test]
    fn downhill_exchange_always_accepted() {
        for seed in [0u64, 1, 0xdead_beef] {
            for round in 0..16usize {
                for pair in 0..8usize {
                    assert!(exchange_accepts(seed, round, pair, 1.0, 2.0, 10.0, 5.0));
                    // Equal energies: log_p == 0, also guaranteed.
                    assert!(exchange_accepts(seed, round, pair, 1.0, 2.0, 7.0, 7.0));
                }
            }
        }
    }

    /// Uphill exchanges depend only on (seed, round, pair) and the energy
    /// gap — shifting both costs by a constant leaves the verdict alone,
    /// and verdicts vary across rounds/pairs (the stream is live).
    #[test]
    fn uphill_exchange_depends_only_on_round_pair_and_gap() {
        let mut accepted = 0usize;
        let mut total = 0usize;
        for round in 0..64usize {
            for pair in 0..4usize {
                let base = exchange_accepts(42, round, pair, 1.0, 3.0, 4.0, 4.4);
                let shifted = exchange_accepts(42, round, pair, 1.0, 3.0, 104.0, 104.4);
                assert_eq!(base, shifted, "verdict must depend on the gap only");
                accepted += usize::from(base);
                total += 1;
            }
        }
        // p = exp(-(1 - 1/3)·0.4) ≈ 0.766: both outcomes must occur.
        assert!(accepted > 0, "stream never accepts");
        assert!(accepted < total, "stream never rejects");
    }

    #[test]
    fn zero_temperature_ladder_is_greedy() {
        // Both rungs frozen: swap exactly when it improves the cold slot.
        assert!(exchange_accepts(1, 0, 0, 0.0, 0.0, 5.0, 4.0));
        assert!(!exchange_accepts(1, 0, 0, 0.0, 0.0, 4.0, 5.0));
        assert!(!exchange_accepts(1, 0, 0, 0.0, 0.0, 4.0, 4.0));
    }

    #[test]
    fn replicas_one_matches_single_chain_annealer() {
        let initial = setup(4, 2, 2);
        let target: Vec<usize> = (0..16).rev().collect();
        let cfg = AnnealerConfig {
            iterations: 3_000,
            seed: 11,
            ..Default::default()
        };
        let single = Annealer::new(cfg).anneal(&initial, displacement_cost(&target));
        let pt = ParallelTemperingAnnealer::new(
            cfg,
            TemperingSchedule {
                replicas: 1,
                exchange_interval: 128,
                ..Default::default()
            },
        );
        let tempered = pt.anneal_closure(1, &initial, displacement_cost(&target));
        assert_eq!(single.0, tempered.0, "mapping diverged");
        assert_eq!(single.1.to_bits(), tempered.1.to_bits());
        let merged = tempered.2.merged();
        assert_eq!(single.2.evaluations, merged.evaluations);
        assert_eq!(single.2.accepted, merged.accepted);
        assert_eq!(single.2.improvements, merged.improvements);
        assert_eq!(single.2.best_cost.to_bits(), merged.best_cost.to_bits());
        assert_eq!(tempered.2.exchanges_attempted, 0);
    }

    #[test]
    fn tempering_is_thread_invariant() {
        let initial = setup(4, 2, 2);
        let target: Vec<usize> = (0..16).rev().collect();
        let pt = ParallelTemperingAnnealer::new(
            AnnealerConfig {
                iterations: 4_000,
                seed: 5,
                ..Default::default()
            },
            TemperingSchedule {
                replicas: 4,
                exchange_interval: 256,
                ..Default::default()
            },
        );
        let reference = pt.anneal_closure(1, &initial, displacement_cost(&target));
        for threads in [2usize, 3, 8] {
            let run = pt.anneal_closure(threads, &initial, displacement_cost(&target));
            assert_eq!(reference.0, run.0, "mapping diverged at threads={threads}");
            assert_eq!(reference.1.to_bits(), run.1.to_bits());
            assert_eq!(reference.2.exchanges_attempted, run.2.exchanges_attempted);
            assert_eq!(reference.2.exchanges_accepted, run.2.exchanges_accepted);
            for (a, b) in reference.2.replica_stats.iter().zip(&run.2.replica_stats) {
                assert_eq!(a.evaluations, b.evaluations);
                assert_eq!(a.accepted, b.accepted);
                assert_eq!(a.improvements, b.improvements);
                assert_eq!(a.best_cost.to_bits(), b.best_cost.to_bits());
            }
        }
    }

    #[test]
    fn tempering_attempts_and_accepts_exchanges() {
        let initial = setup(4, 2, 2);
        let target: Vec<usize> = (0..16).rev().collect();
        let pt = ParallelTemperingAnnealer::new(
            AnnealerConfig {
                iterations: 4_000,
                seed: 3,
                ..Default::default()
            },
            TemperingSchedule {
                replicas: 4,
                exchange_interval: 64,
                ..Default::default()
            },
        );
        let mut records = Vec::new();
        let mut observers = vec![NoOpObserver; 4];
        let (best, cost, stats) = pt.anneal_observed(
            1,
            &initial,
            |_, _| FnObjective::new(displacement_cost(&target)),
            &mut observers,
            |rec| records.push(*rec),
        );
        assert!(best.is_permutation());
        assert!(cost <= stats.merged().initial_cost);
        assert_eq!(records.len(), stats.exchanges_attempted);
        let accepted = records.iter().filter(|r| r.accepted).count();
        assert_eq!(accepted, stats.exchanges_accepted);
        assert!(stats.exchanges_attempted > 0, "no exchanges attempted");
        // DEO pairing: even rounds touch even pairs, odd rounds odd pairs,
        // records arrive in (round, pair) order.
        for w in records.windows(2) {
            assert!(
                (w[0].round, w[0].replica_lo) < (w[1].round, w[1].replica_lo),
                "records out of order"
            );
        }
        for r in &records {
            assert_eq!(r.replica_hi, r.replica_lo + 1);
            assert_eq!(r.replica_lo % 2, r.round % 2);
            assert!(r.temp_hi > r.temp_lo);
        }
    }

    #[test]
    fn tempering_never_returns_worse_than_initial() {
        let initial = setup(2, 2, 2);
        let identity_cost = |m: &Mapping| {
            m.as_slice()
                .iter()
                .enumerate()
                .map(|(i, g)| (g.0 as f64 - i as f64).powi(2))
                .sum::<f64>()
        };
        let pt = ParallelTemperingAnnealer::new(
            AnnealerConfig {
                iterations: 600,
                seed: 1,
                ..Default::default()
            },
            TemperingSchedule::default(),
        );
        let (_, cost, stats) = pt.anneal_closure(2, &initial, identity_cost);
        assert_eq!(cost, 0.0);
        assert_eq!(stats.merged().initial_cost, 0.0);
    }

    #[test]
    fn single_block_returns_immediately() {
        let cfg = ParallelConfig::new(1, 4, 1);
        let topo = ClusterTopology::new(1, 4);
        let m = Mapping::identity(cfg, topo);
        let pt =
            ParallelTemperingAnnealer::new(AnnealerConfig::default(), TemperingSchedule::default());
        let (best, cost, stats) = pt.anneal_closure(4, &m, |_| 42.0);
        assert_eq!(best, m);
        assert_eq!(cost, 42.0);
        assert_eq!(stats.merged().evaluations, 4); // one opening eval per replica
        assert_eq!(stats.exchanges_attempted, 0);
    }

    #[test]
    fn cancelled_tempering_returns_best_so_far() {
        let initial = setup(4, 2, 2);
        let target: Vec<usize> = (0..16).rev().collect();
        let pt = ParallelTemperingAnnealer::new(
            AnnealerConfig {
                iterations: 1_000_000,
                seed: 6,
                ..Default::default()
            },
            TemperingSchedule {
                replicas: 3,
                exchange_interval: 64,
                ..Default::default()
            },
        );
        let token = CancelToken::new();
        token.cancel();
        let (best, cost, stats) = pt.anneal_cancellable(
            2,
            &initial,
            |_, _| FnObjective::new(displacement_cost(&target)),
            Some(&token),
        );
        // Pre-cancelled: every chain stops at its first checkpoint, so
        // only the opening evaluations happen.
        assert_eq!(stats.merged().evaluations, 3);
        assert!(best.is_permutation());
        assert_eq!(cost.to_bits(), stats.merged().initial_cost.to_bits());

        // An un-cancelled token is bit-identical to no token at all.
        let live = CancelToken::new();
        let pt = ParallelTemperingAnnealer::new(
            AnnealerConfig {
                iterations: 2_000,
                seed: 6,
                ..Default::default()
            },
            TemperingSchedule {
                replicas: 3,
                exchange_interval: 64,
                ..Default::default()
            },
        );
        let with_token = pt.anneal_cancellable(
            1,
            &initial,
            |_, _| FnObjective::new(displacement_cost(&target)),
            Some(&live),
        );
        let without = pt.anneal_closure(1, &initial, displacement_cost(&target));
        assert_eq!(with_token.0, without.0);
        assert_eq!(with_token.1.to_bits(), without.1.to_bits());
    }

    #[test]
    fn merged_stats_sum_replicas() {
        let initial = setup(4, 2, 2);
        let target: Vec<usize> = (0..16).rev().collect();
        let pt = ParallelTemperingAnnealer::new(
            AnnealerConfig {
                iterations: 1_000,
                seed: 2,
                ..Default::default()
            },
            TemperingSchedule {
                replicas: 3,
                exchange_interval: 100,
                ..Default::default()
            },
        );
        let (_, cost, stats) = pt.anneal_closure(1, &initial, displacement_cost(&target));
        let merged = stats.merged();
        assert_eq!(merged.evaluations, 3 * 1_001);
        assert_eq!(
            merged.accepted,
            stats
                .replica_stats
                .iter()
                .map(|s| s.accepted)
                .sum::<usize>()
        );
        assert_eq!(
            merged.best_cost.to_bits(),
            stats
                .replica_stats
                .iter()
                .map(|s| s.best_cost)
                .fold(f64::INFINITY, f64::min)
                .to_bits()
        );
        assert_eq!(cost.to_bits(), merged.best_cost.to_bits());
    }
}
