//! Alternative mapping-search strategies, for comparing against the
//! paper's simulated annealing.
//!
//! * [`random_search`] — sample uniformly random block permutations and
//!   keep the best; the "is SA even doing anything" control.
//! * [`greedy_swap`] — steepest-descent over the swap neighbourhood;
//!   fast, deterministic, but stops at the first local optimum.
//!
//! Both respect the same tensor-group block granularity as the annealer.
//! The multi-chain strategy — parallel tempering over a temperature
//! ladder — lives in [`crate::mapping::ParallelTemperingAnnealer`]; its
//! equal-per-chain-budget comparison against the single chain is tested
//! here alongside the other baselines.

use crate::mapping::moves::Move;
use pipette_sim::Mapping;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Samples `budget` random block permutations of `initial` and returns
/// the best (including `initial` itself).
pub fn random_search<F>(initial: &Mapping, objective: F, budget: usize, seed: u64) -> (Mapping, f64)
where
    F: Fn(&Mapping) -> f64,
{
    let block = initial.config().tp.max(1);
    let num_blocks = initial.as_slice().len() / block;
    let mut best = initial.clone();
    let mut best_cost = objective(initial);
    if num_blocks < 2 {
        return (best, best_cost);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for _ in 0..budget {
        let mut candidate = initial.clone();
        // Fisher-Yates over blocks.
        let slice = candidate.as_mut_slice();
        for i in (1..num_blocks).rev() {
            let j = rng.gen_range(0..=i);
            if i != j {
                Move::Swap { a: i, b: j }.apply(slice, block);
            }
        }
        let cost = objective(&candidate);
        if cost < best_cost {
            best = candidate;
            best_cost = cost;
        }
    }
    (best, best_cost)
}

/// Steepest-descent over block swaps: repeatedly applies the best
/// improving swap until none exists or `max_rounds` passes complete.
/// Evaluates `O(num_blocks²)` candidates per round.
pub fn greedy_swap<F>(initial: &Mapping, objective: F, max_rounds: usize) -> (Mapping, f64)
where
    F: Fn(&Mapping) -> f64,
{
    let block = initial.config().tp.max(1);
    let num_blocks = initial.as_slice().len() / block;
    let mut current = initial.clone();
    let mut current_cost = objective(initial);
    if num_blocks < 2 {
        return (current, current_cost);
    }
    for _ in 0..max_rounds {
        let mut best_move: Option<(usize, usize)> = None;
        let mut best_cost = current_cost;
        for a in 0..num_blocks {
            for b in (a + 1)..num_blocks {
                let mut candidate = current.clone();
                Move::Swap { a, b }.apply(candidate.as_mut_slice(), block);
                let cost = objective(&candidate);
                if cost < best_cost {
                    best_cost = cost;
                    best_move = Some((a, b));
                }
            }
        }
        match best_move {
            Some((a, b)) => {
                Move::Swap { a, b }.apply(current.as_mut_slice(), block);
                current_cost = best_cost;
            }
            None => break,
        }
    }
    (current, current_cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{Annealer, AnnealerConfig};
    use pipette_cluster::ClusterTopology;
    use pipette_model::ParallelConfig;

    fn setup() -> Mapping {
        let cfg = ParallelConfig::new(4, 2, 2);
        Mapping::identity(cfg, ClusterTopology::new(4, 4))
    }

    /// Prefer block order reversed.
    fn reversal_cost(m: &Mapping) -> f64 {
        let n = m.as_slice().len();
        m.as_slice()
            .iter()
            .enumerate()
            .map(|(i, g)| {
                let want = (n - 1 - (i / 2) * 2 - (1 - i % 2)) as f64;
                (g.0 as f64 - want).abs()
            })
            .sum()
    }

    #[test]
    fn random_search_improves_and_preserves_permutation() {
        let initial = setup();
        let (best, cost) = random_search(&initial, reversal_cost, 300, 3);
        assert!(cost < reversal_cost(&initial));
        assert!(best.is_permutation());
    }

    #[test]
    fn greedy_swap_reaches_a_local_optimum() {
        let initial = setup();
        let (best, cost) = greedy_swap(&initial, reversal_cost, 50);
        assert!(cost <= reversal_cost(&initial));
        assert!(best.is_permutation());
        // No single swap improves further.
        let block = 2;
        let nb = best.as_slice().len() / block;
        for a in 0..nb {
            for b in (a + 1)..nb {
                let mut cand = best.clone();
                Move::Swap { a, b }.apply(cand.as_mut_slice(), block);
                assert!(reversal_cost(&cand) >= cost - 1e-12);
            }
        }
    }

    #[test]
    fn annealer_matches_or_beats_random_search_at_equal_budget() {
        let initial = setup();
        let budget = 2_000;
        let (_, random_cost) = random_search(&initial, reversal_cost, budget, 7);
        let sa = Annealer::new(AnnealerConfig {
            iterations: budget,
            seed: 7,
            ..Default::default()
        });
        let (_, sa_cost, _) = sa.anneal(&initial, reversal_cost);
        assert!(
            sa_cost <= random_cost,
            "SA {sa_cost} should beat random search {random_cost} at equal budget"
        );
    }

    #[test]
    fn tempering_matches_or_beats_single_chain_at_equal_chain_budget() {
        // Each tempering chain gets the same iteration budget as the
        // single chain — on a box with >= replicas cores this is the
        // equal-wall-clock comparison. The cold rung replays the single
        // chain's trajectory until its first accepted exchange, so the
        // ladder's best can only match or beat it there; this seed
        // exercises accepted exchanges (asserted) and still holds.
        use crate::mapping::{ParallelTemperingAnnealer, TemperingSchedule};
        let initial = setup();
        let budget = 2_000;
        let cfg = AnnealerConfig {
            iterations: budget,
            seed: 7,
            ..Default::default()
        };
        let (_, sa_cost, _) = Annealer::new(cfg).anneal(&initial, reversal_cost);
        let pt = ParallelTemperingAnnealer::new(
            cfg,
            TemperingSchedule {
                replicas: 4,
                exchange_interval: 250,
                ..Default::default()
            },
        );
        let (_, pt_cost, stats) = pt.anneal_closure(1, &initial, reversal_cost);
        assert!(stats.exchanges_accepted > 0, "ladder never mixed");
        assert!(
            pt_cost <= sa_cost,
            "tempering {pt_cost} should match or beat single chain {sa_cost}"
        );
    }

    #[test]
    fn single_block_degenerates_gracefully() {
        let cfg = ParallelConfig::new(1, 4, 1);
        let m = Mapping::identity(cfg, ClusterTopology::new(1, 4));
        let (a, ca) = random_search(&m, |_| 1.0, 10, 0);
        let (b, cb) = greedy_swap(&m, |_| 1.0, 10);
        assert_eq!(a, m);
        assert_eq!(b, m);
        assert_eq!(ca, 1.0);
        assert_eq!(cb, 1.0);
    }
}
