//! Simulated annealing over worker mappings (§IV).
//!
//! Classic SA with the paper's parameters: geometric cooling with
//! α = 0.999, a wall-clock budget (the paper uses 10 s per configuration),
//! and the migration/swap/reverse move set. The mapping problem is
//! analogous to NoC core mapping [17, 18], for which SA is the standard
//! tool.

use crate::cancel::CancelToken;
use crate::mapping::moves::{Move, MoveKind};
use crate::mapping::objective::{FnObjective, Objective};
use pipette_sim::Mapping;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// How often (in iterations) the wall-clock budget is consulted. With the
/// incremental objective an iteration is sub-microsecond, so checking
/// `Instant::now()` every step would be a measurable fraction of the loop.
pub(crate) const TIME_CHECK_INTERVAL: usize = 64;

/// Annealer parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnnealerConfig {
    /// Maximum number of iterations (objective evaluations).
    pub iterations: usize,
    /// Optional wall-clock budget; the paper uses 10 seconds.
    pub time_limit: Option<Duration>,
    /// Geometric cooling coefficient (paper: 0.999).
    pub alpha: f64,
    /// Initial temperature as a fraction of the initial cost.
    pub initial_temp_fraction: f64,
    /// RNG seed.
    pub seed: u64,
    /// Restrict the move set (ablation): allow the migration move.
    pub enable_migration: bool,
    /// Allow the swap move.
    pub enable_swap: bool,
    /// Allow the reverse move.
    pub enable_reverse: bool,
}

impl Default for AnnealerConfig {
    fn default() -> Self {
        Self {
            iterations: 20_000,
            time_limit: None,
            alpha: 0.999,
            initial_temp_fraction: 0.05,
            seed: 0,
            enable_migration: true,
            enable_swap: true,
            enable_reverse: true,
        }
    }
}

impl AnnealerConfig {
    /// The paper's configuration: 10-second budget, α = 0.999.
    pub fn paper() -> Self {
        Self {
            time_limit: Some(Duration::from_secs(10)),
            iterations: usize::MAX,
            ..Self::default()
        }
    }

    /// A tiny budget for unit tests.
    pub fn fast_test() -> Self {
        Self {
            iterations: 1_500,
            ..Self::default()
        }
    }
}

/// Statistics of one annealing run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnnealStats {
    /// Objective evaluations performed.
    pub evaluations: usize,
    /// Accepted moves (including uphill acceptances).
    pub accepted: usize,
    /// Moves that strictly improved the best cost.
    pub improvements: usize,
    /// Cost of the initial mapping.
    pub initial_cost: f64,
    /// Cost of the best mapping found.
    pub best_cost: f64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl AnnealStats {
    /// Relative improvement over the initial mapping, in `[0, 1)`.
    pub fn improvement(&self) -> f64 {
        if self.initial_cost <= 0.0 {
            return 0.0;
        }
        1.0 - self.best_cost / self.initial_cost
    }
}

/// Everything known about one annealing decision, handed to an
/// [`SaObserver`] after the accept/reject verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaMoveRecord {
    /// Iteration index within this annealing run (0-based).
    pub iteration: usize,
    /// Which move was proposed.
    pub kind: MoveKind,
    /// Objective delta of the proposal (`cost − current_cost`; negative is
    /// an improvement).
    pub delta: f64,
    /// Temperature at the decision.
    pub temperature: f64,
    /// Whether the move was accepted (downhill, or uphill by the
    /// Metropolis draw).
    pub accepted: bool,
    /// Objective of the current mapping *after* applying the verdict.
    pub current_cost: f64,
    /// Best objective seen so far.
    pub best_cost: f64,
}

/// Hook into the annealing loop, called once per iteration after the
/// accept/reject decision. Observers never touch the RNG, so an observed
/// run takes bit-identical decisions to an unobserved one.
pub trait SaObserver {
    /// One decision was taken.
    fn on_move(&mut self, record: &SaMoveRecord);
}

/// The default observer: does nothing, compiles to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoOpObserver;

impl SaObserver for NoOpObserver {
    #[inline(always)]
    fn on_move(&mut self, _record: &SaMoveRecord) {}
}

/// The enabled move kinds of a config as a stack array (the annealing
/// loop's one lookup table has no reason to live on the heap). The order
/// mirrors the arms of `Move::random`, so with all three enabled the
/// per-iteration index draw consumes the same `gen_range(0..3u8)` the old
/// rejection-sampling loop did — the RNG stream (and thus every
/// historical result for a given seed) is preserved.
pub(crate) fn enabled_moves(config: &AnnealerConfig) -> ([MoveKind; 3], usize) {
    let mut buf = [MoveKind::Migration; 3];
    let mut len = 0usize;
    for (on, kind) in [
        (config.enable_migration, MoveKind::Migration),
        (config.enable_swap, MoveKind::Swap),
        (config.enable_reverse, MoveKind::Reverse),
    ] {
        if on {
            buf[len] = kind;
            len += 1;
        }
    }
    (buf, len)
}

/// The per-chain state of one annealing trajectory, shared by the
/// single-chain [`Annealer`] loop and the parallel-tempering layer
/// (`mapping::tempering`), which runs K of these side by side.
///
/// One [`ChainCore::step`] consumes exactly the RNG draws the historical
/// single-chain loop consumed per iteration, so any segmentation of a
/// trajectory into steps replays the same moves for the same seed — that
/// is what makes `replicas = 1` tempering bit-identical to [`Annealer`].
pub(crate) struct ChainCore {
    pub(crate) current: Mapping,
    pub(crate) current_cost: f64,
    pub(crate) best: Mapping,
    pub(crate) best_cost: f64,
    pub(crate) temp: f64,
    pub(crate) rng: ChaCha8Rng,
    /// Moves proposed so far (the initial evaluation is *not* counted
    /// here; [`AnnealStats::evaluations`] adds it at reporting time).
    pub(crate) evaluations: usize,
    pub(crate) accepted: usize,
    pub(crate) improvements: usize,
}

impl ChainCore {
    pub(crate) fn new(initial: &Mapping, initial_cost: f64, temp: f64, seed: u64) -> Self {
        Self {
            current: initial.clone(),
            current_cost: initial_cost,
            best: initial.clone(),
            best_cost: initial_cost,
            temp,
            rng: ChaCha8Rng::seed_from_u64(seed),
            evaluations: 0,
            accepted: 0,
            improvements: 0,
        }
    }

    /// One annealing iteration: propose a move, take the Metropolis
    /// decision, commit or roll back, notify the observer, cool.
    ///
    /// The loop context (move set, geometry, cooling rate) is threaded
    /// flat rather than bundled: the values are hoisted out of the hot
    /// loop once by every caller, and a context struct would be built
    /// per segment for no gain.
    #[allow(clippy::too_many_arguments)]
    // pipette-lint: hot-path
    #[inline]
    pub(crate) fn step<O: Objective, Obs: SaObserver>(
        &mut self,
        it: usize,
        enabled: &[MoveKind],
        num_blocks: usize,
        block: usize,
        alpha: f64,
        objective: &mut O,
        observer: &mut Obs,
    ) {
        let kind = enabled[self.rng.gen_range(0..enabled.len() as u8) as usize];
        let mv = Move::random_of_kind(&mut self.rng, kind, num_blocks);
        // Apply in place; every move has an exact inverse, so rejection
        // undoes it without cloning a candidate per iteration.
        mv.apply(self.current.as_mut_slice(), block);
        let cost = objective.propose(mv, &self.current);
        self.evaluations += 1;
        let delta = cost - self.current_cost;
        let accept =
            delta <= 0.0 || (self.temp > 0.0 && self.rng.gen::<f64>() < (-delta / self.temp).exp());
        if accept {
            objective.commit();
            self.current_cost = cost;
            self.accepted += 1;
            if cost < self.best_cost {
                self.best
                    .as_mut_slice()
                    .copy_from_slice(self.current.as_slice());
                self.best_cost = cost;
                self.improvements += 1;
            }
        } else {
            objective.rollback();
            mv.inverse().apply(self.current.as_mut_slice(), block);
        }
        observer.on_move(&SaMoveRecord {
            iteration: it,
            kind,
            delta,
            temperature: self.temp,
            accepted: accept,
            current_cost: self.current_cost,
            best_cost: self.best_cost,
        });
        self.temp *= alpha;
    }
}

/// Simulated-annealing searcher over mappings.
///
/// ```
/// use pipette::mapping::{Annealer, AnnealerConfig};
/// use pipette_cluster::ClusterTopology;
/// use pipette_model::ParallelConfig;
/// use pipette_sim::Mapping;
///
/// let cfg = ParallelConfig::new(4, 2, 2);
/// let identity = Mapping::identity(cfg, ClusterTopology::new(4, 4));
/// // Toy objective: prefer GPU 0 to host the *last* worker.
/// let objective = |m: &Mapping| m.as_slice().iter().position(|g| g.0 == 0).unwrap() as f64;
/// let annealer = Annealer::new(AnnealerConfig { iterations: 2_000, ..Default::default() });
/// let (best, cost, stats) = annealer.anneal(&identity, objective);
/// assert!(cost <= stats.initial_cost);
/// assert!(best.is_permutation());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Annealer {
    config: AnnealerConfig,
}

impl Annealer {
    /// Creates an annealer.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1)` or every move is disabled.
    pub fn new(config: AnnealerConfig) -> Self {
        // pipette-lint: allow(D2) -- documented `# Panics` constructor contract on hand-written annealer configs
        assert!(
            config.alpha > 0.0 && config.alpha < 1.0,
            "alpha must be in (0, 1)"
        );
        // pipette-lint: allow(D2) -- same documented `# Panics` contract: a config with every move disabled cannot anneal
        assert!(
            config.enable_migration || config.enable_swap || config.enable_reverse,
            "at least one move kind must be enabled"
        );
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> AnnealerConfig {
        self.config
    }

    /// Minimizes `objective` starting from `initial`, moving blocks of
    /// `tp` consecutive workers (tensor groups) as units.
    ///
    /// Returns the best mapping found, its cost, and run statistics. The
    /// initial mapping is always a candidate, so the result is never worse
    /// than the input.
    ///
    /// This is the closure-based batch path (the objective re-evaluates the
    /// whole mapping on every move); the hot path wraps an incremental
    /// [`Objective`] and goes through [`Annealer::anneal_with`]. Both paths
    /// share one loop and one RNG stream, so for a given seed they take
    /// identical accept/reject decisions and return identical mappings.
    pub fn anneal<F>(&self, initial: &Mapping, objective: F) -> (Mapping, f64, AnnealStats)
    where
        F: Fn(&Mapping) -> f64,
    {
        self.anneal_with(initial, &mut FnObjective::new(objective))
    }

    /// [`Annealer::anneal`] over any [`Objective`] — pass an
    /// [`crate::mapping::IncrementalObjective`] to pay only for the terms
    /// each move touches instead of a full estimate per iteration.
    pub fn anneal_with<O: Objective>(
        &self,
        initial: &Mapping,
        objective: &mut O,
    ) -> (Mapping, f64, AnnealStats) {
        self.anneal_observed(initial, objective, &mut NoOpObserver)
    }

    /// [`Annealer::anneal_with`] with an [`SaObserver`] receiving every
    /// accept/reject decision. The observer sits outside the RNG stream,
    /// so the returned mapping, cost, and stats are bit-identical to the
    /// unobserved run (`observer_does_not_change_the_search` asserts this).
    pub fn anneal_observed<O: Objective, Obs: SaObserver>(
        &self,
        initial: &Mapping,
        objective: &mut O,
        observer: &mut Obs,
    ) -> (Mapping, f64, AnnealStats) {
        self.anneal_cancellable(initial, objective, observer, None)
    }

    /// [`Annealer::anneal_observed`] polling a [`CancelToken`] at the
    /// wall-clock checkpoint cadence ([`TIME_CHECK_INTERVAL`] iterations).
    /// A cancelled run breaks out of the loop and returns best-so-far —
    /// the same contract as an expired `time_limit`, never an error. An
    /// un-cancelled token changes nothing: the trajectory is bit-identical
    /// to the token-less run.
    pub fn anneal_cancellable<O: Objective, Obs: SaObserver>(
        &self,
        initial: &Mapping,
        objective: &mut O,
        observer: &mut Obs,
        cancel: Option<&CancelToken>,
    ) -> (Mapping, f64, AnnealStats) {
        // pipette-lint: allow(D1) -- opt-in wall-clock budget for operators; deterministic runs leave it unset and replay from the seed alone
        let start = Instant::now();
        let block = initial.config().tp.max(1);
        let num_blocks = initial.as_slice().len() / block;
        let initial_cost = objective.evaluate(initial);

        let mut stats = AnnealStats {
            evaluations: 1,
            accepted: 0,
            improvements: 0,
            initial_cost,
            best_cost: initial_cost,
            elapsed: Duration::ZERO,
        };

        if num_blocks < 2 {
            stats.elapsed = start.elapsed();
            return (initial.clone(), initial_cost, stats);
        }

        let (enabled_buf, enabled_len) = enabled_moves(&self.config);
        let enabled = &enabled_buf[..enabled_len];
        debug_assert!(!enabled.is_empty(), "checked in Annealer::new");

        let mut chain = ChainCore::new(
            initial,
            initial_cost,
            initial_cost * self.config.initial_temp_fraction,
            self.config.seed,
        );

        for it in 0..self.config.iterations {
            if it % TIME_CHECK_INTERVAL == 0 {
                if cancel.is_some_and(CancelToken::is_cancelled) {
                    break;
                }
                if let Some(limit) = self.config.time_limit {
                    if start.elapsed() >= limit {
                        break;
                    }
                }
            }
            chain.step(
                it,
                enabled,
                num_blocks,
                block,
                self.config.alpha,
                objective,
                observer,
            );
        }

        stats.evaluations += chain.evaluations;
        stats.accepted = chain.accepted;
        stats.improvements = chain.improvements;
        stats.best_cost = chain.best_cost;
        stats.elapsed = start.elapsed();
        (chain.best, chain.best_cost, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipette_cluster::ClusterTopology;
    use pipette_model::ParallelConfig;

    /// Toy objective: prefer the GPU ids to be in a target permutation by
    /// penalizing displacement.
    fn displacement_cost(target: &[usize]) -> impl Fn(&Mapping) -> f64 + '_ {
        move |m: &Mapping| {
            m.as_slice()
                .iter()
                .enumerate()
                .map(|(i, g)| {
                    let want = target[i] as f64;
                    (g.0 as f64 - want).abs()
                })
                .sum()
        }
    }

    fn setup(pp: usize, tp: usize, dp: usize) -> Mapping {
        let cfg = ParallelConfig::new(pp, tp, dp);
        let topo = ClusterTopology::new(cfg.num_workers() / 4, 4);
        Mapping::identity(cfg, topo)
    }

    #[test]
    fn finds_a_block_permutation_target() {
        // Target: blocks in reverse order. Reachable by block moves alone.
        let initial = setup(4, 2, 2); // 16 workers, block = 2
        let mut target: Vec<usize> = (0..16).collect();
        for c in target.chunks_mut(2) {
            c.reverse();
        }
        target.reverse();
        for c in target.chunks_mut(2) {
            c.reverse();
        }
        // target is now block-reversed identity.
        let objective = displacement_cost(&target);
        let annealer = Annealer::new(AnnealerConfig {
            iterations: 8_000,
            seed: 3,
            ..Default::default()
        });
        let (best, cost, stats) = annealer.anneal(&initial, objective);
        assert!(cost < stats.initial_cost, "must improve: {stats:?}");
        assert!(best.is_permutation());
        assert_eq!(cost, stats.best_cost);
    }

    #[test]
    fn never_returns_worse_than_initial() {
        let initial = setup(2, 2, 2);
        // Adversarial objective that prefers the identity.
        let objective = |m: &Mapping| {
            m.as_slice()
                .iter()
                .enumerate()
                .map(|(i, g)| (g.0 as f64 - i as f64).powi(2))
                .sum()
        };
        let annealer = Annealer::new(AnnealerConfig {
            iterations: 500,
            seed: 1,
            ..Default::default()
        });
        let (_, cost, stats) = annealer.anneal(&initial, objective);
        assert_eq!(cost, 0.0);
        assert_eq!(stats.initial_cost, 0.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let initial = setup(4, 2, 2);
        let target: Vec<usize> = (0..16).rev().collect();
        let cfg = AnnealerConfig {
            iterations: 2_000,
            seed: 9,
            ..Default::default()
        };
        let a = Annealer::new(cfg).anneal(&initial, displacement_cost(&target));
        let b = Annealer::new(cfg).anneal(&initial, displacement_cost(&target));
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn respects_time_limit() {
        let initial = setup(4, 2, 2);
        let cfg = AnnealerConfig {
            iterations: usize::MAX,
            time_limit: Some(Duration::from_millis(50)),
            seed: 2,
            ..Default::default()
        };
        let start = Instant::now();
        let _ = Annealer::new(cfg).anneal(&initial, |m| m.as_slice()[0].0 as f64);
        assert!(start.elapsed() < Duration::from_secs(3));
    }

    #[test]
    fn single_block_returns_immediately() {
        let cfg = ParallelConfig::new(1, 4, 1);
        let topo = ClusterTopology::new(1, 4);
        let m = Mapping::identity(cfg, topo);
        let (best, cost, stats) = Annealer::new(AnnealerConfig::default()).anneal(&m, |_| 42.0);
        assert_eq!(best, m);
        assert_eq!(cost, 42.0);
        assert_eq!(stats.evaluations, 1);
    }

    #[test]
    fn move_ablation_still_works() {
        let initial = setup(4, 2, 2);
        let target: Vec<usize> = (0..16).rev().collect();
        for (mig, swap, rev) in [
            (true, false, false),
            (false, true, false),
            (false, false, true),
        ] {
            let cfg = AnnealerConfig {
                iterations: 3_000,
                seed: 5,
                enable_migration: mig,
                enable_swap: swap,
                enable_reverse: rev,
                ..Default::default()
            };
            let (_, cost, stats) = Annealer::new(cfg).anneal(&initial, displacement_cost(&target));
            assert!(cost <= stats.initial_cost);
        }
    }

    #[test]
    fn high_temperature_accepts_uphill_moves() {
        // With a huge initial temperature nearly every move is accepted;
        // with zero temperature only improvements are.
        let initial = setup(4, 2, 2);
        let target: Vec<usize> = (0..16).rev().collect();
        let hot = Annealer::new(AnnealerConfig {
            iterations: 1_000,
            seed: 4,
            initial_temp_fraction: 100.0,
            alpha: 0.9999,
            ..Default::default()
        });
        let cold = Annealer::new(AnnealerConfig {
            iterations: 1_000,
            seed: 4,
            initial_temp_fraction: 1e-12,
            ..Default::default()
        });
        let (_, _, hot_stats) = hot.anneal(&initial, displacement_cost(&target));
        let (_, _, cold_stats) = cold.anneal(&initial, displacement_cost(&target));
        assert!(
            hot_stats.accepted > 2 * cold_stats.accepted,
            "hot {} vs cold {}",
            hot_stats.accepted,
            cold_stats.accepted
        );
        // Cold SA is pure descent: accepted == improvements-ish (every
        // accepted move is non-worsening).
        assert!(cold_stats.accepted >= cold_stats.improvements);
    }

    #[test]
    fn stats_account_for_evaluations() {
        let initial = setup(2, 2, 2);
        let cfg = AnnealerConfig {
            iterations: 123,
            seed: 8,
            ..Default::default()
        };
        let (_, _, stats) = Annealer::new(cfg).anneal(&initial, |m| m.as_slice()[0].0 as f64);
        assert_eq!(stats.evaluations, 124); // initial + iterations
        assert!(stats.elapsed.as_nanos() > 0);
    }

    #[test]
    fn observer_does_not_change_the_search() {
        let initial = setup(4, 2, 2);
        let target: Vec<usize> = (0..16).rev().collect();
        let cfg = AnnealerConfig {
            iterations: 2_000,
            seed: 9,
            ..Default::default()
        };

        /// Records everything and checks internal consistency.
        #[derive(Default)]
        struct Recorder {
            records: Vec<SaMoveRecord>,
        }
        impl SaObserver for Recorder {
            fn on_move(&mut self, r: &SaMoveRecord) {
                self.records.push(*r);
            }
        }

        let mut rec = Recorder::default();
        let observed = Annealer::new(cfg).anneal_observed(
            &initial,
            &mut FnObjective::new(displacement_cost(&target)),
            &mut rec,
        );
        let plain = Annealer::new(cfg).anneal(&initial, displacement_cost(&target));
        assert_eq!(observed.0, plain.0, "observer changed the best mapping");
        assert_eq!(observed.1.to_bits(), plain.1.to_bits());
        assert_eq!(observed.2.evaluations, plain.2.evaluations);
        assert_eq!(observed.2.accepted, plain.2.accepted);

        assert_eq!(rec.records.len(), cfg.iterations);
        let accepted = rec.records.iter().filter(|r| r.accepted).count();
        assert_eq!(accepted, observed.2.accepted);
        // Iterations are sequential, temperature decays, best never rises.
        for (i, r) in rec.records.iter().enumerate() {
            assert_eq!(r.iteration, i);
            if i > 0 {
                assert!(r.temperature < rec.records[i - 1].temperature);
                assert!(r.best_cost <= rec.records[i - 1].best_cost);
            }
        }
        let last = rec.records.last().unwrap();
        assert_eq!(last.best_cost, observed.2.best_cost);
    }

    #[test]
    fn cancelled_token_returns_best_so_far_quickly() {
        use crate::cancel::CancelToken;
        let initial = setup(4, 2, 2);
        let target: Vec<usize> = (0..16).rev().collect();
        let cfg = AnnealerConfig {
            iterations: 100_000,
            seed: 7,
            ..Default::default()
        };
        // Pre-cancelled: the loop must stop at the first checkpoint
        // (iteration 0) having evaluated only the initial mapping.
        let token = CancelToken::new();
        token.cancel();
        let (best, cost, stats) = Annealer::new(cfg).anneal_cancellable(
            &initial,
            &mut FnObjective::new(displacement_cost(&target)),
            &mut NoOpObserver,
            Some(&token),
        );
        assert_eq!(best, initial, "no move was ever taken");
        assert_eq!(stats.evaluations, 1);
        assert_eq!(cost.to_bits(), stats.initial_cost.to_bits());

        // An un-cancelled token is bit-identical to no token at all.
        let live = CancelToken::new();
        let cfg = AnnealerConfig {
            iterations: 2_000,
            seed: 7,
            ..Default::default()
        };
        let with_token = Annealer::new(cfg).anneal_cancellable(
            &initial,
            &mut FnObjective::new(displacement_cost(&target)),
            &mut NoOpObserver,
            Some(&live),
        );
        let without = Annealer::new(cfg).anneal(&initial, displacement_cost(&target));
        assert_eq!(with_token.0, without.0);
        assert_eq!(with_token.1.to_bits(), without.1.to_bits());
    }

    #[test]
    #[should_panic(expected = "at least one move")]
    fn all_moves_disabled_rejected() {
        Annealer::new(AnnealerConfig {
            enable_migration: false,
            enable_swap: false,
            enable_reverse: false,
            ..Default::default()
        });
    }
}
