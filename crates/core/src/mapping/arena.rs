//! Fixed-capacity, allocation-free building blocks for the SA hot path.
//!
//! PR 1 made the objective *incremental*; this module makes it
//! *mechanically sympathetic* (DESIGN.md §7g). Every structure here is
//! sized once — at [`crate::mapping::IncrementalObjective`] construction —
//! and never touches the allocator again, so the steady-state annealing
//! loop performs **zero heap allocations per move** (asserted by the
//! counting-allocator harness in `perf_baseline`):
//!
//! * [`DpMemo`] — an open-addressed hash table replacing the old
//!   `BTreeMap<(usize, u128), f64>` memo of per-stage data-parallel
//!   all-reduce times. Power-of-two slot count, splitmix64 key hashing,
//!   bounded linear probing, and a *seeded eviction* policy: when a probe
//!   window is full, a deterministically chosen victim is overwritten.
//!   Memo values are pure functions of their keys, so eviction (or a
//!   different table capacity, or the [`ReferenceDpMemo`] path) can only
//!   turn a future hit into a bit-identical recompute — never change a
//!   result. Any observable traversal goes through the sorted
//!   [`DpMemo::ordered_entries`] drain, keeping telemetry deterministic
//!   by construction (rule D4's intent, without the `BTreeMap` pointer
//!   chasing on the hot path).
//! * [`UndoLog`] — the `(index, old value)` journal of one in-flight
//!   proposal, laid out struct-of-arrays (indices and values in separate
//!   contiguous runs) so the rollback scan is two linear sweeps.
//! * [`TouchedSet`] — the dirty-index scratch of one proposal, a bounded
//!   buffer with in-place sort + dedup.
//!
//! Capacity invariants are `debug_assert!`-guarded: the objective sizes
//! each buffer to the worst case a single move can produce (a `Reverse`
//! spanning every block), so the guards document a proof, not a hope.

use std::collections::BTreeMap;

/// splitmix64 — the 64-bit finalizer used for memo-key hashing and the
/// seeded eviction draw. Chosen over SipHash (the std default) because it
/// is seed-stable across processes and platforms: the same keys always
/// land in the same slots, so eviction history — and therefore the exact
/// hit/miss sequence — replays identically from a run's seed alone.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Stage sentinel marking an empty slot (no real stage index reaches it:
/// stages are bounded by `pp`, which is bounded by the GPU count).
const EMPTY: u32 = u32::MAX;

/// Slots probed past the home slot before declaring the window full and
/// evicting. Small and fixed so a miss costs a bounded, branch-predictable
/// scan instead of an unbounded cluster walk.
const PROBE_WINDOW: usize = 8;

/// Lookup/insert counters of a [`DpMemo`], for telemetry and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups that found their key.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Inserts that overwrote a live entry because the probe window was
    /// full (the seeded-eviction path).
    pub evictions: u64,
}

/// Fixed-capacity open-addressed memo from `(stage, packed content-id
/// tuple)` to a cached `f64` term.
///
/// Values must be pure functions of their keys: under that contract a
/// lost entry (eviction, capacity pressure, or a full [`Self::clear`])
/// only costs a recompute that reproduces the same bits, which is what
/// lets the SA result stay bit-identical to the retained
/// [`ReferenceDpMemo`] path at *any* capacity (property-tested in
/// `tests/incremental_objective.rs`).
#[derive(Debug, Clone)]
pub struct DpMemo {
    /// Stage of each slot (`EMPTY` when vacant). SoA: the three parallel
    /// arrays keep probe scans inside one cache line per field.
    stage: Box<[u32]>,
    key: Box<[u128]>,
    value: Box<[f64]>,
    /// `capacity - 1`; capacity is a power of two.
    mask: usize,
    /// Seed folded into the eviction draw, so distinct objectives (and
    /// test runs) can exercise distinct eviction histories while each
    /// history stays replayable.
    eviction_seed: u64,
    len: usize,
    stats: MemoStats,
}

impl DpMemo {
    /// A memo with at least `capacity` slots (rounded up to a power of
    /// two, minimum 16) and the given eviction seed.
    pub fn new(capacity: usize, eviction_seed: u64) -> Self {
        let cap = capacity.max(16).next_power_of_two();
        Self {
            stage: vec![EMPTY; cap].into_boxed_slice(),
            key: vec![0; cap].into_boxed_slice(),
            value: vec![0.0; cap].into_boxed_slice(),
            mask: cap - 1,
            eviction_seed,
            len: 0,
            stats: MemoStats::default(),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lookup/insert counters so far.
    pub fn stats(&self) -> MemoStats {
        self.stats
    }

    #[inline]
    fn home(&self, stage: usize, key: u128) -> usize {
        let folded = splitmix64(key as u64)
            ^ splitmix64((key >> 64) as u64 ^ 0x517c_c1b7_2722_0a95)
            ^ splitmix64(stage as u64 ^ 0x6a09_e667_f3bc_c909);
        (folded as usize) & self.mask
    }

    // pipette-lint: hot-path
    /// Cached value for `(stage, key)`, if present. Bounded probe: scans
    /// at most `PROBE_WINDOW` slots and stops early at the first vacancy.
    #[inline]
    pub fn get(&mut self, stage: usize, key: u128) -> Option<f64> {
        let home = self.home(stage, key);
        for p in 0..PROBE_WINDOW {
            let slot = (home + p) & self.mask;
            let s = self.stage[slot];
            if s == EMPTY {
                break;
            }
            if s as usize == stage && self.key[slot] == key {
                self.stats.hits += 1;
                return Some(self.value[slot]);
            }
        }
        self.stats.misses += 1;
        None
    }

    // pipette-lint: hot-path
    /// Inserts (or refreshes) `(stage, key) → value`. When every slot of
    /// the probe window is live, a victim chosen by a seeded splitmix64
    /// draw over the window is overwritten — deterministic in the key
    /// stream and `eviction_seed`, independent of wall clock or pointer
    /// addresses.
    #[inline]
    pub fn insert(&mut self, stage: usize, key: u128, value: f64) {
        debug_assert!(
            stage < EMPTY as usize,
            "stage index overflows the slot encoding"
        );
        let home = self.home(stage, key);
        for p in 0..PROBE_WINDOW {
            let slot = (home + p) & self.mask;
            let s = self.stage[slot];
            if s == EMPTY {
                self.stage[slot] = stage as u32;
                self.key[slot] = key;
                self.value[slot] = value;
                self.len += 1;
                return;
            }
            if s as usize == stage && self.key[slot] == key {
                self.value[slot] = value;
                return;
            }
        }
        // Window full: evict. The draw mixes the home slot with the seed,
        // so the victim sequence is a pure function of (keys, seed).
        let victim = (home
            + (splitmix64(home as u64 ^ self.eviction_seed) as usize % PROBE_WINDOW))
            & self.mask;
        self.stage[victim] = stage as u32;
        self.key[victim] = key;
        self.value[victim] = value;
        self.stats.evictions += 1;
    }

    /// Empties the table (slots stay allocated; counters are kept).
    pub fn clear(&mut self) {
        self.stage.fill(EMPTY);
        self.len = 0;
    }

    /// Every live entry in `(stage, key)` order — the deterministic drain
    /// any iteration/telemetry surface must go through. Allocates; never
    /// called on the per-move path.
    pub fn ordered_entries(&self) -> Vec<(usize, u128, f64)> {
        let mut out: Vec<(usize, u128, f64)> = self
            .stage
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s != EMPTY)
            .map(|(slot, &s)| (s as usize, self.key[slot], self.value[slot]))
            .collect();
        out.sort_unstable_by_key(|e| (e.0, e.1));
        out
    }
}

/// The retained `BTreeMap` reference implementation of the memo — the
/// bit-identity oracle for [`DpMemo`] (never evicts, never collides) and
/// the PR-5-era code path the property suite replays against.
#[derive(Debug, Clone, Default)]
pub struct ReferenceDpMemo {
    entries: BTreeMap<(usize, u128), f64>,
}

impl ReferenceDpMemo {
    /// An empty reference memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached value for `(stage, key)`, if present.
    pub fn get(&self, stage: usize, key: u128) -> Option<f64> {
        self.entries.get(&(stage, key)).copied()
    }

    /// Inserts `(stage, key) → value` (unbounded; never evicts).
    pub fn insert(&mut self, stage: usize, key: u128, value: f64) {
        self.entries.insert((stage, key), value);
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Every entry in `(stage, key)` order (the map's native order).
    pub fn ordered_entries(&self) -> Vec<(usize, u128, f64)> {
        self.entries.iter().map(|(&(s, k), &v)| (s, k, v)).collect()
    }
}

/// Perfect-hash DP memo for small key spaces: one slot per possible
/// `(stage, content-id tuple)`, directly indexed — no hashing, no
/// probing, no key storage, no eviction, and the whole value array stays
/// L1/L2-resident (≤ [`DenseDpMemo::MAX_SLOTS`] `f64`s).
///
/// A stage's tuple is `dp` content ids, each `< nb`, packed as base-`nb`
/// digits after the stage (most significant digit first, mirroring the
/// 16-bit packing of the `u128` memo key). Vacancy is marked by NaN,
/// which no live entry can collide with: memoized values are finite
/// latencies (`insert` debug-asserts it).
///
/// Values are pure in their keys — the same contract as [`DpMemo`] — so
/// this backend is bit-identical to both others by construction; the
/// property suite replays all three against each other.
#[derive(Debug, Clone)]
pub struct DenseDpMemo {
    /// Slot per `(stage, tuple)`, NaN when vacant.
    value: Box<[f64]>,
    /// Content-id radix (ids are block indices, `< nb`).
    nb: usize,
    /// Tuple width (replicas per stage).
    dp: usize,
    len: usize,
    stats: MemoStats,
}

impl DenseDpMemo {
    /// Slot-count ceiling (512 KiB of values). Beyond this the open table
    /// wins on cache residency and the constructor refuses.
    pub const MAX_SLOTS: usize = 1 << 16;

    /// A dense memo for `pp` stages over `dp`-wide tuples of ids `< nb`,
    /// or `None` when `pp·nb^dp` overflows [`Self::MAX_SLOTS`] (or the
    /// tuple can't be packed into the shared `u128` key format).
    pub fn try_new(pp: usize, nb: usize, dp: usize) -> Option<Self> {
        if pp == 0 || nb == 0 || dp == 0 || dp > 8 || nb > u16::MAX as usize + 1 {
            return None;
        }
        let mut slots = pp;
        for _ in 0..dp {
            slots = slots.checked_mul(nb)?;
            if slots > Self::MAX_SLOTS {
                return None;
            }
        }
        Some(Self {
            value: vec![f64::NAN; slots].into_boxed_slice(),
            nb,
            dp,
            len: 0,
            stats: MemoStats::default(),
        })
    }

    // pipette-lint: hot-path
    /// Slot of `(stage, key)`: Horner over the `dp` packed 16-bit digits,
    /// most significant first (the packing order of the memo key).
    #[inline]
    fn slot(&self, stage: usize, key: u128) -> usize {
        let mut idx = stage;
        for i in (0..self.dp).rev() {
            let id = (key >> (16 * i)) as u16 as usize;
            debug_assert!(id < self.nb, "content id out of the dense radix");
            idx = idx * self.nb + id;
        }
        idx
    }

    // pipette-lint: hot-path
    /// Cached value for `(stage, key)`, if present. One load, no probe.
    #[inline]
    pub fn get(&mut self, stage: usize, key: u128) -> Option<f64> {
        self.read(self.slot(stage, key))
    }

    // pipette-lint: hot-path
    /// [`Self::get`] addressed by the raw id tuple instead of the packed
    /// `u128` key — the objective's hot loop holds the ids contiguously,
    /// so this skips the pack/unpack round-trip. `ids` must be the same
    /// digits `(stage, key)` would pack, most significant first; both
    /// entry points hit the same slot.
    #[inline]
    pub fn get_tuple(&mut self, stage: usize, ids: &[u16]) -> Option<f64> {
        self.read(self.tuple_slot(stage, ids))
    }

    // pipette-lint: hot-path
    #[inline]
    fn read(&mut self, slot: usize) -> Option<f64> {
        let v = self.value[slot];
        if v.is_nan() {
            self.stats.misses += 1;
            None
        } else {
            self.stats.hits += 1;
            Some(v)
        }
    }

    // pipette-lint: hot-path
    /// Slot of `(stage, ids)` — the tuple-addressed twin of [`Self::slot`].
    #[inline]
    fn tuple_slot(&self, stage: usize, ids: &[u16]) -> usize {
        debug_assert_eq!(ids.len(), self.dp, "tuple width mismatch");
        let mut idx = stage;
        for &id in ids {
            debug_assert!((id as usize) < self.nb, "content id out of the dense radix");
            idx = idx * self.nb + id as usize;
        }
        idx
    }

    // pipette-lint: hot-path
    /// Inserts (or refreshes) `(stage, key) → value`. Never evicts: every
    /// key owns its slot.
    #[inline]
    pub fn insert(&mut self, stage: usize, key: u128, value: f64) {
        let slot = self.slot(stage, key);
        self.write(slot, value);
    }

    // pipette-lint: hot-path
    /// [`Self::insert`] addressed by the raw id tuple (see
    /// [`Self::get_tuple`]).
    #[inline]
    pub fn insert_tuple(&mut self, stage: usize, ids: &[u16], value: f64) {
        let slot = self.tuple_slot(stage, ids);
        self.write(slot, value);
    }

    #[inline]
    fn write(&mut self, slot: usize, value: f64) {
        debug_assert!(!value.is_nan(), "NaN is the vacancy sentinel");
        if self.value[slot].is_nan() {
            self.len += 1;
        }
        self.value[slot] = value;
    }

    /// Empties the table (slots stay allocated; counters are kept).
    pub fn clear(&mut self) {
        self.value.fill(f64::NAN);
        self.len = 0;
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.value.len()
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lookup counters so far (`evictions` is always zero).
    pub fn stats(&self) -> MemoStats {
        self.stats
    }

    /// Every live entry in `(stage, key)` order. Slot order *is* that
    /// order — the stage is the most significant digit and the key digits
    /// follow in packing order — so one pass suffices.
    pub fn ordered_entries(&self) -> Vec<(usize, u128, f64)> {
        self.value
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_nan())
            .map(|(mut slot, &v)| {
                let mut key = 0u128;
                for i in 0..self.dp {
                    key |= ((slot % self.nb) as u128) << (16 * i);
                    slot /= self.nb;
                }
                (slot, key, v)
            })
            .collect()
    }
}

/// Which memo implementation an objective runs on. The dense table is
/// the production path whenever the key space fits; the open-addressed
/// table covers everything larger; the reference path exists so
/// equivalence tests can replay identical move sequences through all of
/// them.
#[derive(Debug, Clone)]
pub enum MemoBackend {
    /// Perfect-hash dense table (the hot path for small key spaces).
    Dense(DenseDpMemo),
    /// Fixed-capacity open-addressed table (the general hot path).
    Open(DpMemo),
    /// Unbounded `BTreeMap` oracle (the retained reference path).
    Reference(ReferenceDpMemo),
}

impl MemoBackend {
    // pipette-lint: hot-path
    /// Cached value for `(stage, key)`, if present.
    #[inline]
    pub fn get(&mut self, stage: usize, key: u128) -> Option<f64> {
        match self {
            MemoBackend::Dense(m) => m.get(stage, key),
            MemoBackend::Open(m) => m.get(stage, key),
            MemoBackend::Reference(m) => m.get(stage, key),
        }
    }

    // pipette-lint: hot-path
    /// Inserts `(stage, key) → value`.
    #[inline]
    pub fn insert(&mut self, stage: usize, key: u128, value: f64) {
        match self {
            MemoBackend::Dense(m) => m.insert(stage, key, value),
            MemoBackend::Open(m) => m.insert(stage, key, value),
            MemoBackend::Reference(m) => m.insert(stage, key, value),
        }
    }

    /// Empties the memo.
    pub fn clear(&mut self) {
        match self {
            MemoBackend::Dense(m) => m.clear(),
            MemoBackend::Open(m) => m.clear(),
            MemoBackend::Reference(m) => m.clear(),
        }
    }

    /// Every live entry in `(stage, key)` order.
    pub fn ordered_entries(&self) -> Vec<(usize, u128, f64)> {
        match self {
            MemoBackend::Dense(m) => m.ordered_entries(),
            MemoBackend::Open(m) => m.ordered_entries(),
            MemoBackend::Reference(m) => m.ordered_entries(),
        }
    }
}

/// Fixed-capacity `(index, old value)` journal of one in-flight proposal,
/// struct-of-arrays: rollback reads the two runs linearly instead of
/// striding over interleaved pairs.
#[derive(Debug, Clone)]
pub struct UndoLog {
    idx: Box<[u32]>,
    old: Box<[f64]>,
    len: usize,
}

impl UndoLog {
    /// A journal holding up to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            idx: vec![0; capacity].into_boxed_slice(),
            old: vec![0.0; capacity].into_boxed_slice(),
            len: 0,
        }
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.idx.len()
    }

    /// Entries journaled for the current proposal.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Forgets all entries (capacity retained).
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    // pipette-lint: hot-path
    /// Journals `(index, old)`. The objective sizes the journal to the
    /// worst case a single move can dirty, so overflow is a logic bug.
    #[inline]
    pub fn push(&mut self, index: usize, old: f64) {
        debug_assert!(self.len < self.idx.len(), "undo journal over capacity");
        debug_assert!(index <= u32::MAX as usize, "undo index overflows u32");
        self.idx[self.len] = index as u32;
        self.old[self.len] = old;
        self.len += 1;
    }

    /// The journaled `(index, old value)` pairs, oldest first.
    #[inline]
    pub fn entries(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.idx[..self.len]
            .iter()
            .zip(&self.old[..self.len])
            .map(|(&i, &v)| (i as usize, v))
    }

    // pipette-lint: hot-path
    /// The journaled index at position `i` (`i < len`).
    #[inline]
    pub fn index_at(&self, i: usize) -> usize {
        debug_assert!(i < self.len, "undo journal read past len");
        self.idx[i] as usize
    }

    // pipette-lint: hot-path
    /// The journaled old value at position `i` (`i < len`).
    #[inline]
    pub fn value_at(&self, i: usize) -> f64 {
        debug_assert!(i < self.len, "undo journal read past len");
        self.old[i]
    }
}

/// Fixed-domain dirty-index set with O(1) dedup on push — the
/// touched-hop / touched-stage scratch of one proposal.
///
/// Each index in `0..domain` carries a generation stamp; a push whose
/// stamp already equals the current generation is a duplicate and is
/// dropped, so [`Self::as_slice`] always holds distinct indices in first-
/// push order — no sort needed on the hot path (the per-index work that
/// follows is order-independent: independent writes into term arrays).
/// [`Self::clear`] just bumps the generation, O(1).
#[derive(Debug, Clone)]
pub struct TouchedSet {
    buf: Box<[u32]>,
    len: usize,
    mark: Box<[u32]>,
    generation: u32,
}

impl TouchedSet {
    /// A set over the index domain `0..domain`; holds at most `domain`
    /// (distinct) entries by construction.
    pub fn new(domain: usize) -> Self {
        Self {
            buf: vec![0; domain].into_boxed_slice(),
            len: 0,
            mark: vec![0; domain].into_boxed_slice(),
            generation: 1,
        }
    }

    /// Size of the index domain (also the maximum distinct entries).
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Distinct indices currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    // pipette-lint: hot-path
    /// Forgets all indices by advancing the generation (capacity and
    /// domain retained). On the — astronomically rare — u32 wraparound the
    /// stamps are rewritten so a stale stamp can never alias the live
    /// generation.
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.mark.fill(0);
            self.generation = 1;
        }
    }

    // pipette-lint: hot-path
    /// Records a dirty index, dropping duplicates. `index` must lie in
    /// the domain the set was built over.
    #[inline]
    pub fn push(&mut self, index: usize) {
        debug_assert!(index < self.mark.len(), "touched index outside domain");
        if self.mark[index] != self.generation {
            self.mark[index] = self.generation;
            self.buf[self.len] = index as u32;
            self.len += 1;
        }
    }

    /// The distinct recorded indices, in first-push order.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.buf[..self.len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn memo_round_trips_inserts() {
        let mut m = DpMemo::new(64, 0);
        assert!(m.is_empty());
        m.insert(0, 42, 1.5);
        m.insert(3, 42, 2.5);
        m.insert(0, 7, -0.5);
        assert_eq!(m.get(0, 42), Some(1.5));
        assert_eq!(m.get(3, 42), Some(2.5));
        assert_eq!(m.get(0, 7), Some(-0.5));
        assert_eq!(m.get(1, 42), None);
        assert_eq!(m.len(), 3);
        // Refresh overwrites in place.
        m.insert(0, 42, 9.0);
        assert_eq!(m.get(0, 42), Some(9.0));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn memo_capacity_rounds_to_power_of_two() {
        assert_eq!(DpMemo::new(0, 0).capacity(), 16);
        assert_eq!(DpMemo::new(17, 0).capacity(), 32);
        assert_eq!(DpMemo::new(4096, 0).capacity(), 4096);
    }

    #[test]
    fn memo_matches_btreemap_reference_under_pressure() {
        // Tiny table, many keys: evictions guaranteed. The open table may
        // *forget* entries, but everything it still returns must match
        // the reference bit for bit — a hit is never wrong, a miss is
        // merely a recompute.
        for seed in 0..20u64 {
            let mut open = DpMemo::new(16, seed);
            let mut reference = ReferenceDpMemo::new();
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            for _ in 0..2_000 {
                let stage = rng.gen_range(0..6usize);
                let key = rng.gen_range(0..200u64) as u128;
                if rng.gen_range(0..3u8) == 0 {
                    // Value is a pure function of the key, as the memo
                    // contract requires.
                    let v = (stage as f64 + 1.0) * (key as f64 + 0.25);
                    open.insert(stage, key, v);
                    reference.insert(stage, key, v);
                } else if let Some(got) = open.get(stage, key) {
                    let want = reference.get(stage, key);
                    assert_eq!(Some(got.to_bits()), want.map(f64::to_bits));
                }
            }
            assert!(open.stats().evictions > 0, "16 slots must evict");
            // Every surviving entry agrees with the oracle.
            for (s, k, v) in open.ordered_entries() {
                assert_eq!(reference.get(s, k).map(f64::to_bits), Some(v.to_bits()));
            }
        }
    }

    #[test]
    fn memo_is_deterministic_in_seed() {
        let run = |eviction_seed: u64| {
            let mut m = DpMemo::new(16, eviction_seed);
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            for _ in 0..500 {
                let stage = rng.gen_range(0..4usize);
                let key = rng.gen_range(0..100u64) as u128;
                m.insert(stage, key, stage as f64 + key as f64);
            }
            (m.ordered_entries(), m.stats())
        };
        assert_eq!(run(1), run(1));
        // A different eviction seed is allowed to keep a different
        // surviving set — but each run replays exactly.
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn memo_clear_keeps_capacity_and_counters() {
        let mut m = DpMemo::new(32, 0);
        m.insert(1, 2, 3.0);
        let _ = m.get(1, 2);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.capacity(), 32);
        assert_eq!(m.stats().hits, 1);
        assert_eq!(m.get(1, 2), None);
    }

    #[test]
    fn ordered_entries_are_sorted() {
        let mut m = DpMemo::new(64, 0);
        for stage in (0..5).rev() {
            for key in (0..10u128).rev() {
                m.insert(stage, key, stage as f64);
            }
        }
        let entries = m.ordered_entries();
        assert_eq!(entries.len(), 50);
        for w in entries.windows(2) {
            assert!((w[0].0, w[0].1) < (w[1].0, w[1].1));
        }
    }

    #[test]
    fn dense_memo_round_trips_and_never_evicts() {
        // pp = 3, nb = 4, dp = 2 → 3·16 = 48 slots, keys pack two base-4
        // digits as 16-bit fields.
        let mut m = DenseDpMemo::try_new(3, 4, 2).expect("fits");
        assert_eq!(m.capacity(), 48);
        assert!(m.is_empty());
        let key = |a: u128, b: u128| a << 16 | b;
        m.insert(0, key(1, 2), 1.5);
        m.insert(2, key(3, 0), -0.5);
        m.insert(0, key(2, 1), 9.0);
        assert_eq!(m.get(0, key(1, 2)), Some(1.5));
        assert_eq!(m.get(2, key(3, 0)), Some(-0.5));
        assert_eq!(m.get(0, key(2, 1)), Some(9.0));
        assert_eq!(m.get(1, key(1, 2)), None);
        assert_eq!(m.len(), 3);
        // Refresh overwrites in place; no slot is ever stolen.
        m.insert(0, key(1, 2), 4.0);
        assert_eq!(m.get(0, key(1, 2)), Some(4.0));
        assert_eq!(m.len(), 3);
        assert_eq!(m.stats().evictions, 0);
        assert_eq!(m.stats().hits, 4);
        assert_eq!(m.stats().misses, 1);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(0, key(1, 2)), None);
        // Counters survive clear, like the open table's.
        assert_eq!(m.stats().hits, 4);
    }

    #[test]
    fn dense_memo_matches_btreemap_reference_exhaustively() {
        // Small enough to exercise every (stage, tuple) slot.
        let (pp, nb, dp) = (4usize, 5usize, 2usize);
        let mut dense = DenseDpMemo::try_new(pp, nb, dp).expect("fits");
        let mut reference = ReferenceDpMemo::new();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..3_000 {
            let stage = rng.gen_range(0..pp);
            let key =
                (rng.gen_range(0..nb as u64) as u128) << 16 | rng.gen_range(0..nb as u64) as u128;
            if rng.gen_range(0..3u8) == 0 {
                let v = (stage as f64 + 1.0) * (key as f64 + 0.25);
                dense.insert(stage, key, v);
                reference.insert(stage, key, v);
            } else {
                assert_eq!(
                    dense.get(stage, key).map(f64::to_bits),
                    reference.get(stage, key).map(f64::to_bits),
                    "dense diverged at stage {stage} key {key}"
                );
            }
        }
        assert_eq!(dense.len(), reference.len());
        assert_eq!(dense.ordered_entries(), reference.ordered_entries());
    }

    #[test]
    fn dense_memo_ordered_entries_reconstruct_keys_in_order() {
        let mut m = DenseDpMemo::try_new(2, 3, 2).expect("fits");
        // Insert in deliberately scrambled order.
        for (stage, a, b) in [(1, 2, 0), (0, 1, 1), (1, 0, 2), (0, 0, 0)] {
            let key = (a as u128) << 16 | b as u128;
            m.insert(stage, key, (stage * 9 + a * 3 + b) as f64);
        }
        let entries = m.ordered_entries();
        assert_eq!(entries.len(), 4);
        for w in entries.windows(2) {
            assert!((w[0].0, w[0].1) < (w[1].0, w[1].1), "drain out of order");
        }
        // Keys survive the slot → (stage, key) reconstruction exactly.
        for (stage, key, v) in entries {
            let (a, b) = ((key >> 16) as usize, (key & 0xffff) as usize);
            assert_eq!(v, (stage * 9 + a * 3 + b) as f64);
        }
    }

    #[test]
    fn dense_memo_refuses_oversized_key_spaces() {
        // 8 · 512² > MAX_SLOTS.
        assert!(DenseDpMemo::try_new(8, 512, 2).is_none());
        // Degenerate shapes.
        assert!(DenseDpMemo::try_new(0, 4, 2).is_none());
        assert!(DenseDpMemo::try_new(4, 0, 2).is_none());
        assert!(DenseDpMemo::try_new(4, 4, 0).is_none());
        assert!(DenseDpMemo::try_new(4, 4, 9).is_none());
        // Boundary: exactly MAX_SLOTS is allowed.
        let m = DenseDpMemo::try_new(16, 64, 2).expect("16·64² = 65536 fits");
        assert_eq!(m.capacity(), DenseDpMemo::MAX_SLOTS);
    }

    #[test]
    fn undo_log_journals_and_replays() {
        let mut log = UndoLog::new(8);
        assert!(log.is_empty());
        log.push(3, 1.0);
        log.push(1, 2.0);
        log.push(7, 3.0);
        assert_eq!(log.len(), 3);
        let entries: Vec<(usize, f64)> = log.entries().collect();
        assert_eq!(entries, vec![(3, 1.0), (1, 2.0), (7, 3.0)]);
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.capacity(), 8);
    }

    #[test]
    fn touched_set_dedups_on_push_in_first_push_order() {
        let mut set = TouchedSet::new(16);
        for i in [5usize, 3, 5, 9, 3, 0, 9, 9] {
            set.push(i);
        }
        assert_eq!(set.as_slice(), &[5, 3, 9, 0]);
        assert_eq!(set.len(), 4);
        set.clear();
        assert!(set.is_empty());
        // A cleared set must forget old stamps: re-pushing previously seen
        // indices records them again, exactly once.
        set.push(9);
        set.push(9);
        set.push(2);
        assert_eq!(set.as_slice(), &[9, 2]);
    }

    #[test]
    fn touched_set_survives_many_generations() {
        let mut set = TouchedSet::new(4);
        for round in 0..1000usize {
            set.clear();
            set.push(round % 4);
            set.push(round % 4);
            assert_eq!(set.as_slice(), &[(round % 4) as u32], "round {round}");
        }
    }

    #[test]
    fn touched_set_empty_domain_is_inert() {
        let mut set = TouchedSet::new(0);
        assert_eq!(set.capacity(), 0);
        set.clear();
        assert!(set.as_slice().is_empty());
    }

    #[test]
    fn splitmix_spreads_sequential_inputs() {
        // Not a statistical test — just that nearby keys do not collapse
        // onto one slot in a 16-slot table.
        let slots: std::collections::BTreeSet<u64> =
            (0..16u64).map(|i| splitmix64(i) & 15).collect();
        assert!(slots.len() >= 8, "splitmix64 clumped: {slots:?}");
    }
}
