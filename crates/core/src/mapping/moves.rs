//! The three SA moves of §IV, operating at tensor-group-block granularity.
//!
//! Regarding the mapping as a string of GPU assignments, the paper uses:
//!
//! * **migration** — remove a single element and re-insert it at a random
//!   position;
//! * **swap** — exchange two elements;
//! * **reverse** — take a substring and reverse its order (motivated by the
//!   observation that bidirectional bandwidths are nearly symmetric, so a
//!   reversed pipeline runs at almost the same speed — reversing lets SA
//!   reuse a good substring in the opposite orientation).
//!
//! We apply moves to *blocks* of `tp` consecutive assignments. Tensor
//! groups occupy consecutive worker indices and, under any block
//! permutation of the identity assignment, consecutive GPUs of one node —
//! so tensor-parallel traffic stays on NVLink, which is how real launchers
//! behave and what keeps the search space tractable.

use pipette_cluster::GpuId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The kind of a [`Move`], used to restrict the sampled move set without
/// rejection sampling (the annealer builds the enabled-kind list once).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MoveKind {
    /// [`Move::Migration`].
    Migration,
    /// [`Move::Swap`].
    Swap,
    /// [`Move::Reverse`].
    Reverse,
}

impl MoveKind {
    /// Stable lowercase name for telemetry (`"migration"`, `"swap"`,
    /// `"reverse"`).
    pub fn name(self) -> &'static str {
        match self {
            MoveKind::Migration => "migration",
            MoveKind::Swap => "swap",
            MoveKind::Reverse => "reverse",
        }
    }
}

/// A candidate perturbation of the assignment string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Move {
    /// Remove block `from` and reinsert it so it lands at block position
    /// `to` (positions in blocks).
    Migration {
        /// Source block index.
        from: usize,
        /// Destination block index.
        to: usize,
    },
    /// Exchange blocks `a` and `b`.
    Swap {
        /// First block index.
        a: usize,
        /// Second block index.
        b: usize,
    },
    /// Reverse the order of blocks in `[start, end]` (inclusive).
    Reverse {
        /// First block of the range.
        start: usize,
        /// Last block of the range.
        end: usize,
    },
}

impl Move {
    /// Samples a random move for an assignment of `num_blocks` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks < 2`.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, num_blocks: usize) -> Self {
        let kind = match rng.gen_range(0..3u8) {
            0 => MoveKind::Migration,
            1 => MoveKind::Swap,
            _ => MoveKind::Reverse,
        };
        Self::random_of_kind(rng, kind, num_blocks)
    }

    /// Samples a random move of the given kind.
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks < 2`.
    pub fn random_of_kind<R: Rng + ?Sized>(rng: &mut R, kind: MoveKind, num_blocks: usize) -> Self {
        debug_assert!(num_blocks >= 2, "need at least two blocks to move");
        match kind {
            MoveKind::Migration => {
                let from = rng.gen_range(0..num_blocks);
                let mut to = rng.gen_range(0..num_blocks - 1);
                if to >= from {
                    to += 1;
                }
                Move::Migration { from, to }
            }
            MoveKind::Swap => {
                let a = rng.gen_range(0..num_blocks);
                let mut b = rng.gen_range(0..num_blocks - 1);
                if b >= a {
                    b += 1;
                }
                Move::Swap { a, b }
            }
            MoveKind::Reverse => {
                let start = rng.gen_range(0..num_blocks - 1);
                let end = rng.gen_range(start + 1..num_blocks);
                Move::Reverse { start, end }
            }
        }
    }

    /// This move's [`MoveKind`].
    pub fn kind(&self) -> MoveKind {
        match self {
            Move::Migration { .. } => MoveKind::Migration,
            Move::Swap { .. } => MoveKind::Swap,
            Move::Reverse { .. } => MoveKind::Reverse,
        }
    }

    /// The move that exactly undoes this one: swap and reverse are their
    /// own inverses; a migration runs backwards. Lets the annealer and the
    /// incremental objective revert a rejected move in place instead of
    /// cloning the whole assignment per iteration.
    pub fn inverse(&self) -> Move {
        match *self {
            Move::Migration { from, to } => Move::Migration { from: to, to: from },
            mv => mv,
        }
    }

    /// Applies the move to `assign` in place, where blocks are
    /// `block_size` consecutive entries.
    ///
    /// # Panics
    ///
    /// Panics if `assign.len()` is not a multiple of `block_size` or block
    /// indices are out of range.
    pub fn apply(&self, assign: &mut [GpuId], block_size: usize) {
        self.apply_to(assign, block_size);
    }

    /// Generic [`Move::apply`]: permutes any block-structured slice. The
    /// incremental objective uses this to permute its cached per-block
    /// all-reduce times in lockstep with the assignment itself.
    ///
    /// # Panics
    ///
    /// Panics if `assign.len()` is not a multiple of `block_size` or block
    /// indices are out of range.
    pub fn apply_to<T>(&self, assign: &mut [T], block_size: usize) {
        debug_assert!(
            block_size > 0 && assign.len().is_multiple_of(block_size),
            "invalid block size"
        );
        let nb = assign.len() / block_size;
        match *self {
            Move::Migration { from, to } => {
                debug_assert!(from < nb && to < nb, "block out of range");
                if from == to {
                    return;
                }
                // Rotate the span between from and to by one block.
                if from < to {
                    assign[from * block_size..(to + 1) * block_size].rotate_left(block_size);
                } else {
                    assign[to * block_size..(from + 1) * block_size].rotate_right(block_size);
                }
            }
            Move::Swap { a, b } => {
                debug_assert!(a < nb && b < nb, "block out of range");
                if a == b {
                    return;
                }
                if block_size == 1 {
                    // Single-element blocks: a plain swap, no slicing.
                    assign.swap(a, b);
                    return;
                }
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                let (left, right) = assign.split_at_mut(hi * block_size);
                left[lo * block_size..(lo + 1) * block_size]
                    .swap_with_slice(&mut right[..block_size]);
            }
            Move::Reverse { start, end } => {
                debug_assert!(start <= end && end < nb, "range out of bounds");
                let mut lo = start;
                let mut hi = end;
                while lo < hi {
                    let (left, right) = assign.split_at_mut(hi * block_size);
                    left[lo * block_size..(lo + 1) * block_size]
                        .swap_with_slice(&mut right[..block_size]);
                    lo += 1;
                    hi -= 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn seq(n: usize) -> Vec<GpuId> {
        (0..n).map(GpuId).collect()
    }

    fn ids(v: &[GpuId]) -> Vec<usize> {
        v.iter().map(|g| g.0).collect()
    }

    #[test]
    fn migration_moves_block_forward_and_back() {
        let mut a = seq(8);
        Move::Migration { from: 0, to: 2 }.apply(&mut a, 2);
        assert_eq!(ids(&a), vec![2, 3, 4, 5, 0, 1, 6, 7]);
        let mut b = seq(8);
        Move::Migration { from: 3, to: 0 }.apply(&mut b, 2);
        assert_eq!(ids(&b), vec![6, 7, 0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn swap_exchanges_blocks() {
        let mut a = seq(8);
        Move::Swap { a: 0, b: 3 }.apply(&mut a, 2);
        assert_eq!(ids(&a), vec![6, 7, 2, 3, 4, 5, 0, 1]);
    }

    #[test]
    fn reverse_keeps_block_interiors() {
        let mut a = seq(8);
        Move::Reverse { start: 0, end: 3 }.apply(&mut a, 2);
        // Block order reversed, intra-block order preserved.
        assert_eq!(ids(&a), vec![6, 7, 4, 5, 2, 3, 0, 1]);
    }

    #[test]
    fn block_size_one_matches_paper_string_moves() {
        let mut a = seq(5);
        Move::Reverse { start: 1, end: 3 }.apply(&mut a, 1);
        assert_eq!(ids(&a), vec![0, 3, 2, 1, 4]);
        Move::Swap { a: 0, b: 4 }.apply(&mut a, 1);
        assert_eq!(ids(&a), vec![4, 3, 2, 1, 0]);
    }

    proptest! {
        #[test]
        fn moves_preserve_permutation(
            seed in 0u64..500,
            blocks in 2usize..10,
            bs in 1usize..5,
            n_moves in 1usize..30,
        ) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let n = blocks * bs;
            let mut a = seq(n);
            for _ in 0..n_moves {
                Move::random(&mut rng, blocks).apply(&mut a, bs);
            }
            let mut sorted = ids(&a);
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        }

        #[test]
        fn moves_preserve_block_membership(
            seed in 0u64..500,
            blocks in 2usize..8,
            n_moves in 1usize..20,
        ) {
            // With block size 4, the set of 4 GPUs forming each block must
            // survive any move sequence (only block order changes).
            let bs = 4;
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut a = seq(blocks * bs);
            for _ in 0..n_moves {
                Move::random(&mut rng, blocks).apply(&mut a, bs);
            }
            for chunk in a.chunks(bs) {
                let base = chunk[0].0 / bs;
                prop_assert!(chunk.iter().all(|g| g.0 / bs == base), "block torn: {chunk:?}");
            }
        }

        #[test]
        fn inverse_undoes_any_move(seed in 0u64..1000, blocks in 2usize..10, bs in 1usize..5) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let n = blocks * bs;
            let mut a = seq(n);
            let mv = Move::random(&mut rng, blocks);
            mv.apply(&mut a, bs);
            mv.inverse().apply(&mut a, bs);
            prop_assert_eq!(ids(&a), (0..n).collect::<Vec<_>>());
        }

        #[test]
        fn apply_to_matches_apply(seed in 0u64..1000, blocks in 2usize..10) {
            // Permuting a parallel value array with `apply_to` tracks the
            // assignment permutation exactly (block size 1 on block ids).
            let bs = 3;
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut a = seq(blocks * bs);
            let mut tags: Vec<usize> = (0..blocks).collect();
            for _ in 0..10 {
                let mv = Move::random(&mut rng, blocks);
                mv.apply(&mut a, bs);
                mv.apply_to(&mut tags, 1);
            }
            for (pos, &tag) in tags.iter().enumerate() {
                prop_assert_eq!(a[pos * bs].0 / bs, tag);
            }
        }

        #[test]
        fn random_moves_are_valid(seed in 0u64..2000, blocks in 2usize..12) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            match Move::random(&mut rng, blocks) {
                Move::Migration { from, to } => {
                    prop_assert!(from < blocks && to < blocks && from != to);
                }
                Move::Swap { a, b } => prop_assert!(a < blocks && b < blocks && a != b),
                Move::Reverse { start, end } => prop_assert!(start < end && end < blocks),
            }
        }
    }
}
