//! Fine-grained worker dedication (§IV): simulated annealing over the
//! logical-worker → GPU mapping.
//!
//! The mapping type itself lives in `pipette-sim` (both the simulator and
//! the estimator consume it); this module contributes the search — the
//! three SA moves (*migration*, *swap*, *reverse*) and the annealer with
//! the paper's temperature schedule (α = 0.999).

mod annealer;
mod arena;
mod moves;
mod objective;
mod search;
mod tempering;

pub use annealer::{AnnealStats, Annealer, AnnealerConfig, NoOpObserver, SaMoveRecord, SaObserver};
pub use arena::{
    DenseDpMemo, DpMemo, MemoBackend, MemoStats, ReferenceDpMemo, TouchedSet, UndoLog,
};
pub use moves::{Move, MoveKind};
pub use objective::{FnObjective, IncrementalObjective, Objective};
pub use search::{greedy_swap, random_search};
pub use tempering::{
    exchange_accepts, ParallelTemperingAnnealer, PtExchangeRecord, TemperingSchedule,
    TemperingStats,
};
