//! Hand-tuned Megatron-LM (MLM) baseline.
//!
//! "Megatron-LM generally tunes the number of GPUs per node as a tensor
//! parallel way (tp = 8)" — the expert fixes tensor parallelism to the
//! node size, then *tries the remaining combinations on the cluster* until
//! the fastest runnable one is found. That manual effort is exactly what
//! Pipette automates; MLM is nonetheless a strong baseline because the
//! trials use the real (memory-efficient) schedule.

use pipette_cluster::Cluster;
use pipette_model::{BatchConfig, GptConfig, MicrobatchPlan, ParallelConfig};
use pipette_sim::{ClusterRun, Mapping, Measured};

/// Result of the manual-tuning session.
#[derive(Debug, Clone, PartialEq)]
pub struct TunedResult {
    /// The chosen configuration.
    pub config: ParallelConfig,
    /// The chosen microbatch plan.
    pub plan: MicrobatchPlan,
    /// Measured iteration of the chosen configuration.
    pub measured: Measured,
    /// Cluster launches the expert spent (including OOM failures).
    pub trials: usize,
}

/// The Megatron-LM manual tuner.
#[derive(Debug, Clone)]
pub struct MegatronTuner<'a> {
    cluster: &'a Cluster,
    gpt: &'a GptConfig,
    global_batch: u64,
    max_micro: u64,
}

impl<'a> MegatronTuner<'a> {
    /// Creates the tuner.
    pub fn new(cluster: &'a Cluster, gpt: &'a GptConfig, global_batch: u64) -> Self {
        Self {
            cluster,
            gpt,
            global_batch,
            max_micro: 8,
        }
    }

    /// Overrides the largest microbatch tried.
    pub fn with_max_micro(mut self, max_micro: u64) -> Self {
        self.max_micro = max_micro;
        self
    }

    /// The candidate family an MLM expert tries: tp fixed to the node
    /// size, every divisible `(pp, dp)` split, every microbatch ≤ max.
    pub fn candidates(&self) -> Vec<(ParallelConfig, MicrobatchPlan)> {
        let topo = self.cluster.topology();
        let tp = topo.gpus_per_node();
        let mut out = Vec::new();
        for cfg in ParallelConfig::enumerate(topo.num_gpus(), tp, self.gpt.n_layers) {
            if cfg.tp != tp {
                continue;
            }
            let Ok(mini) = BatchConfig::new(self.global_batch).minibatch(cfg.dp) else {
                continue;
            };
            for plan in MicrobatchPlan::enumerate(mini, self.max_micro) {
                out.push((cfg, plan));
            }
        }
        out
    }

    /// Runs the manual-tuning session on the cluster: launch every
    /// candidate, skip OOMs, keep the fastest.
    pub fn tune(&self, run: &ClusterRun<'_>) -> Option<TunedResult> {
        let mut best: Option<TunedResult> = None;
        let mut trials = 0usize;
        for (cfg, plan) in self.candidates() {
            trials += 1;
            let mapping = Mapping::identity(cfg, *self.cluster.topology());
            if let Ok(measured) = run.execute(cfg, &mapping, plan) {
                let better = best
                    .as_ref()
                    .map(|b| measured.iteration_seconds < b.measured.iteration_seconds)
                    .unwrap_or(true);
                if better {
                    best = Some(TunedResult {
                        config: cfg,
                        plan,
                        measured,
                        trials,
                    });
                }
            }
        }
        best.map(|mut b| {
            b.trials = trials;
            b
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipette_cluster::presets;

    fn setup() -> (pipette_cluster::Cluster, GptConfig) {
        (
            presets::mid_range(2).build(13),
            GptConfig::new(8, 1024, 16, 2048, 51200),
        )
    }

    #[test]
    fn candidates_fix_tp_to_node_size() {
        let (cluster, gpt) = setup();
        let cands = MegatronTuner::new(&cluster, &gpt, 64).candidates();
        assert!(!cands.is_empty());
        assert!(cands.iter().all(|(c, _)| c.tp == 8));
    }

    #[test]
    fn tuning_finds_a_runnable_config() {
        let (cluster, gpt) = setup();
        let run = ClusterRun::new(&cluster, &gpt);
        let result = MegatronTuner::new(&cluster, &gpt, 64)
            .tune(&run)
            .expect("a small model must have a runnable MLM config");
        assert!(result.measured.iteration_seconds > 0.0);
        assert!(result.trials >= 1);
        assert_eq!(result.config.tp, 8);
    }

    #[test]
    fn tuner_picks_the_fastest_of_its_family() {
        let (cluster, gpt) = setup();
        let run = ClusterRun::new(&cluster, &gpt);
        let tuner = MegatronTuner::new(&cluster, &gpt, 64);
        let best = tuner.tune(&run).unwrap();
        for (cfg, plan) in tuner.candidates() {
            let mapping = Mapping::identity(cfg, *cluster.topology());
            if let Ok(m) = run.execute(cfg, &mapping, plan) {
                assert!(best.measured.iteration_seconds <= m.iteration_seconds + 1e-12);
            }
        }
    }
}
