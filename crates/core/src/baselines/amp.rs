//! AMP (NeurIPS '22), the paper's main automatic baseline.
//!
//! AMP profiles compute, then exhaustively scores `(pp, tp, dp,
//! microbatch)` with the Eq. 1 latency model over document-specified
//! bandwidths and returns its ranking. It performs no memory check — the
//! paper shows 8 of its top-10 recommendations OOM (Fig. 5b) — and no
//! placement search.

use crate::baselines::RankedCandidate;
use crate::latency::AmpLatencyModel;
use pipette_cluster::Cluster;
use pipette_model::{BatchConfig, GptConfig, MicrobatchPlan, ParallelConfig};
use pipette_sim::ComputeProfiler;

/// The AMP configurator.
#[derive(Debug, Clone)]
pub struct AmpConfigurator<'a> {
    cluster: &'a Cluster,
    gpt: &'a GptConfig,
    global_batch: u64,
    max_micro: u64,
    seed: u64,
}

impl<'a> AmpConfigurator<'a> {
    /// Creates the configurator for a cluster/model/global batch.
    pub fn new(cluster: &'a Cluster, gpt: &'a GptConfig, global_batch: u64) -> Self {
        Self {
            cluster,
            gpt,
            global_batch,
            max_micro: 8,
            seed: 0,
        }
    }

    /// Overrides the largest microbatch considered (paper sweeps 1–8).
    pub fn with_max_micro(mut self, max_micro: u64) -> Self {
        self.max_micro = max_micro;
        self
    }

    /// Overrides the profiling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Scores every candidate and returns them best-first.
    pub fn rank(&self) -> Vec<RankedCandidate> {
        let topo = self.cluster.topology();
        let model = AmpLatencyModel::from_specs_of(self.cluster.bandwidth(), self.gpt);
        let profiler = ComputeProfiler::default();
        let gpu = self.cluster.gpu().clone();
        let mut out = Vec::new();
        for cfg in
            ParallelConfig::enumerate(topo.num_gpus(), topo.gpus_per_node(), self.gpt.n_layers)
        {
            let Ok(mini) = BatchConfig::new(self.global_batch).minibatch(cfg.dp) else {
                continue;
            };
            for plan in MicrobatchPlan::enumerate(mini, self.max_micro) {
                let compute = profiler.profile(
                    self.cluster.bandwidth(),
                    &gpu,
                    self.gpt,
                    cfg,
                    plan,
                    self.seed,
                );
                let est = model.estimate(cfg, plan, &compute);
                out.push(RankedCandidate {
                    config: cfg,
                    plan,
                    estimated_seconds: est,
                });
            }
        }
        out.sort_by(|a, b| a.estimated_seconds.total_cmp(&b.estimated_seconds));
        out
    }

    /// The top `k` recommendations (Fig. 5b examines the top 10).
    pub fn top_k(&self, k: usize) -> Vec<RankedCandidate> {
        let mut ranked = self.rank();
        ranked.truncate(k);
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipette_cluster::presets;

    fn setup() -> (pipette_cluster::Cluster, GptConfig) {
        (
            presets::mid_range(2).build(17),
            GptConfig::new(8, 1024, 16, 2048, 51200),
        )
    }

    #[test]
    fn ranking_is_sorted_and_exhaustive() {
        let (cluster, gpt) = setup();
        let ranked = AmpConfigurator::new(&cluster, &gpt, 64).rank();
        assert!(!ranked.is_empty());
        assert!(ranked
            .windows(2)
            .all(|w| w[0].estimated_seconds <= w[1].estimated_seconds));
        // All products match the cluster.
        assert!(ranked.iter().all(|c| c.config.num_workers() == 16));
    }

    #[test]
    fn top_k_truncates() {
        let (cluster, gpt) = setup();
        let amp = AmpConfigurator::new(&cluster, &gpt, 64);
        assert_eq!(amp.top_k(3).len(), 3);
    }

    #[test]
    fn memory_unaware_ranking_includes_large_microbatches() {
        // AMP considers (and often prefers) big microbatches that OOM.
        let (cluster, gpt) = setup();
        let ranked = AmpConfigurator::new(&cluster, &gpt, 64).rank();
        assert!(ranked.iter().any(|c| c.plan.micro_batch >= 4));
    }

    #[test]
    fn deterministic() {
        let (cluster, gpt) = setup();
        let a = AmpConfigurator::new(&cluster, &gpt, 64).rank();
        let b = AmpConfigurator::new(&cluster, &gpt, 64).rank();
        assert_eq!(a, b);
    }
}
