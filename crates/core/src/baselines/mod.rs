//! The systems the paper compares against (§VII-A "Baselines"):
//!
//! * [`AmpConfigurator`] — the state-of-the-art automatic configurator,
//!   ranking candidates with Eq. 1 over datasheet bandwidths, memory-
//!   unaware ("we manually tested them one by one from the top
//!   recommendation until we reached a runnable configuration");
//! * [`VarunaConfigurator`] — pipeline-parallel-only search (tp = 1);
//! * [`MegatronTuner`] — the hand-tuned Megatron-LM practice: fix tensor
//!   parallelism to the node size (tp = 8) and let an expert try the
//!   remaining pp/dp/microbatch combinations on the cluster.

mod amp;
mod megatron;
mod varuna;

pub use amp::AmpConfigurator;
pub use megatron::{MegatronTuner, TunedResult};
pub use varuna::VarunaConfigurator;

use pipette_model::{MicrobatchPlan, ParallelConfig};
use pipette_sim::{ClusterRun, Mapping, Measured};
use serde::{Deserialize, Serialize};

/// One entry of a baseline's ranked recommendation list.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankedCandidate {
    /// Recommended `(pp, tp, dp)`.
    pub config: ParallelConfig,
    /// Recommended microbatch plan.
    pub plan: MicrobatchPlan,
    /// The baseline's own latency estimate (seconds).
    pub estimated_seconds: f64,
}

/// Outcome of walking a ranked list against the real cluster: the first
/// runnable candidate, how many launches were attempted (OOM failures
/// included), and the measured run.
#[derive(Debug, Clone, PartialEq)]
pub struct FirstRunnable {
    /// The candidate that ran.
    pub candidate: RankedCandidate,
    /// Its rank in the list (0-based).
    pub rank: usize,
    /// Launch attempts consumed, including the successful one.
    pub attempts: usize,
    /// The measurement of the successful run.
    pub measured: Measured,
}

/// Walks a ranked list top-down, launching each candidate on the cluster
/// (identity mapping — baselines are placement-unaware) until one does not
/// OOM. Returns `None` if every candidate fails.
pub fn first_runnable(ranked: &[RankedCandidate], run: &ClusterRun<'_>) -> Option<FirstRunnable> {
    for (rank, cand) in ranked.iter().enumerate() {
        let mapping = Mapping::identity(cand.config, *run.cluster().topology());
        match run.execute(cand.config, &mapping, cand.plan) {
            Ok(measured) => {
                return Some(FirstRunnable {
                    candidate: *cand,
                    rank,
                    attempts: rank + 1,
                    measured,
                })
            }
            Err(_) => continue,
        }
    }
    None
}

/// Counts how many of the first `k` candidates would OOM on the cluster —
/// the Fig. 5b metric.
pub fn count_oom_in_top_k(ranked: &[RankedCandidate], run: &ClusterRun<'_>, k: usize) -> usize {
    ranked
        .iter()
        .take(k)
        .filter(|cand| {
            let limit = run.cluster().gpu().memory_bytes;
            run.peak_memory(cand.config, cand.plan).peak_bytes > limit
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipette_cluster::presets;
    use pipette_model::GptConfig;

    #[test]
    fn first_runnable_skips_oom_entries() {
        let cluster = presets::mid_range(2).build(1);
        let gpt = GptConfig::gpt_1_1b();
        let run = ClusterRun::new(&cluster, &gpt);
        // First candidate is a deliberate OOM (huge microbatch), second is
        // sane.
        let ranked = vec![
            RankedCandidate {
                config: ParallelConfig::new(2, 8, 1),
                plan: MicrobatchPlan::new(64, 64).unwrap(),
                estimated_seconds: 1.0,
            },
            RankedCandidate {
                config: ParallelConfig::new(2, 8, 1),
                plan: MicrobatchPlan::new(64, 1).unwrap(),
                estimated_seconds: 2.0,
            },
        ];
        let hit = first_runnable(&ranked, &run).expect("second candidate runs");
        assert_eq!(hit.rank, 1);
        assert_eq!(hit.attempts, 2);
        assert_eq!(count_oom_in_top_k(&ranked, &run, 2), 1);
    }

    #[test]
    fn first_runnable_none_when_all_oom() {
        let cluster = presets::mid_range(2).build(1);
        let gpt = GptConfig::gpt_3_1b();
        let run = ClusterRun::new(&cluster, &gpt);
        let ranked = vec![RankedCandidate {
            config: ParallelConfig::new(1, 8, 2),
            plan: MicrobatchPlan::new(32, 32).unwrap(),
            estimated_seconds: 1.0,
        }];
        assert!(first_runnable(&ranked, &run).is_none());
    }
}
