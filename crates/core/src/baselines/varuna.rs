//! Varuna (EuroSys '22) baseline.
//!
//! Varuna "emphasizes using the pipeline parallel-only configuration for
//! LLM training": it avoids tensor parallelism entirely (tp = 1) and
//! searches `(pp, dp, microbatch)` with a GPipe-era latency model. Like
//! AMP it performs no memory check — Fig. 5b shows its top picks OOM just
//! as often.

use crate::baselines::RankedCandidate;
use crate::latency::AmpLatencyModel;
use pipette_cluster::Cluster;
use pipette_model::{BatchConfig, GptConfig, MicrobatchPlan, ParallelConfig};
use pipette_sim::ComputeProfiler;

/// The Varuna-style configurator.
#[derive(Debug, Clone)]
pub struct VarunaConfigurator<'a> {
    cluster: &'a Cluster,
    gpt: &'a GptConfig,
    global_batch: u64,
    max_micro: u64,
    seed: u64,
}

impl<'a> VarunaConfigurator<'a> {
    /// Creates the configurator.
    pub fn new(cluster: &'a Cluster, gpt: &'a GptConfig, global_batch: u64) -> Self {
        Self {
            cluster,
            gpt,
            global_batch,
            max_micro: 8,
            seed: 0,
        }
    }

    /// Overrides the largest microbatch considered.
    pub fn with_max_micro(mut self, max_micro: u64) -> Self {
        self.max_micro = max_micro;
        self
    }

    /// Overrides the profiling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Scores every pipeline-only candidate, best first.
    pub fn rank(&self) -> Vec<RankedCandidate> {
        let topo = self.cluster.topology();
        let model = AmpLatencyModel::from_specs_of(self.cluster.bandwidth(), self.gpt);
        let profiler = ComputeProfiler::default();
        let gpu = self.cluster.gpu().clone();
        let mut out = Vec::new();
        for cfg in
            ParallelConfig::enumerate(topo.num_gpus(), topo.gpus_per_node(), self.gpt.n_layers)
        {
            if cfg.tp != 1 {
                continue;
            }
            let Ok(mini) = BatchConfig::new(self.global_batch).minibatch(cfg.dp) else {
                continue;
            };
            for plan in MicrobatchPlan::enumerate(mini, self.max_micro) {
                let compute = profiler.profile(
                    self.cluster.bandwidth(),
                    &gpu,
                    self.gpt,
                    cfg,
                    plan,
                    self.seed,
                );
                let est = model.estimate(cfg, plan, &compute);
                out.push(RankedCandidate {
                    config: cfg,
                    plan,
                    estimated_seconds: est,
                });
            }
        }
        out.sort_by(|a, b| a.estimated_seconds.total_cmp(&b.estimated_seconds));
        out
    }

    /// The top `k` recommendations.
    pub fn top_k(&self, k: usize) -> Vec<RankedCandidate> {
        let mut ranked = self.rank();
        ranked.truncate(k);
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipette_cluster::presets;

    #[test]
    fn only_pipeline_parallel_configs() {
        let cluster = presets::mid_range(2).build(9);
        let gpt = GptConfig::new(16, 1024, 16, 2048, 51200);
        let ranked = VarunaConfigurator::new(&cluster, &gpt, 64).rank();
        assert!(!ranked.is_empty());
        assert!(ranked.iter().all(|c| c.config.tp == 1));
        assert!(ranked.iter().any(|c| c.config.pp > 1));
    }

    #[test]
    fn ranking_is_sorted() {
        let cluster = presets::mid_range(2).build(9);
        let gpt = GptConfig::new(16, 1024, 16, 2048, 51200);
        let ranked = VarunaConfigurator::new(&cluster, &gpt, 64)
            .with_max_micro(4)
            .rank();
        assert!(ranked
            .windows(2)
            .all(|w| w[0].estimated_seconds <= w[1].estimated_seconds));
    }
}
