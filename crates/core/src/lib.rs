//! **Pipette** — automatic fine-grained LLM training configurator for
//! real-world clusters (reproduction of Yim, Song et al., DATE 2024).
//!
//! Training a large language model with 3D parallelism requires choosing
//! the pipeline/tensor/data parallel degrees `(pp, tp, dp)`, a microbatch
//! size, and a mapping of logical workers onto physical GPUs. Pipette
//! automates that choice with three schemes the paper contributes:
//!
//! 1. **Fine-grained worker dedication** ([`mapping`], §IV) — profile the
//!    *attained* per-link bandwidths (heterogeneous in real clusters) and
//!    anneal the worker→GPU mapping to keep critical traffic on fast links.
//! 2. **A refined latency estimator** ([`latency`], §V) — a critical-path
//!    model of the memory-efficient 1F1B schedule (Eqs. 3–6) that captures
//!    the *hidden critical path* missed by prior models (Eq. 1).
//! 3. **A learned memory estimator** ([`memory`], §VI) — an MLP trained on
//!    profiled peak-memory samples, so recommended configurations actually
//!    fit on the GPUs (prior art recommends OOM configs 8 times out of 10).
//!
//! The [`configurator`] module ties the three together into Algorithm 1,
//! and [`baselines`] re-implements the systems the paper compares against
//! (AMP, Varuna, hand-tuned Megatron-LM).
//!
//! # Example
//!
//! ```
//! use pipette::configurator::{Pipette, PipetteOptions};
//! use pipette_cluster::presets;
//! use pipette_model::GptConfig;
//!
//! // A small cluster and model so the doc test stays quick.
//! let cluster = presets::mid_range(2).build(42);
//! let gpt = GptConfig::new(8, 1024, 16, 2048, 51200);
//! let mut options = PipetteOptions::fast_test();
//! options.seed = 7;
//! let rec = Pipette::new(&cluster, &gpt, 64, options).run()?;
//! assert_eq!(rec.config.num_workers(), 16);
//! assert!(rec.estimated_seconds > 0.0);
//! # Ok::<(), pipette::ConfigureError>(())
//! ```

// `deny` rather than `forbid`: exactly one module opts out —
// `memory::mmap_index` wraps `mmap(2)` behind a safe API for the binary
// estimator-cache read path. Every other module stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod cancel;
pub mod configurator;
pub mod degraded;
pub mod error;
pub mod latency;
pub mod mapping;
pub mod memory;
pub mod parallel;
pub mod report;
pub mod telemetry;

pub use cancel::{CancelToken, DeadlineReport};
pub use configurator::{Alternative, MemoryHeadroom, Pipette, PipetteOptions, Recommendation};
pub use degraded::{run_under_faults, DegradedOutcome, ReconfigurationPlan};
pub use error::ConfigureError;
pub use latency::{AmpLatencyModel, Eq1Flavor, PipetteLatencyModel};
pub use mapping::{AnnealStats, Annealer, AnnealerConfig};
pub use memory::{AnalyticMemoryEstimator, MemoryEstimator, MemorySample};
pub use report::OverheadReport;
