//! Bridges between the configurator's domain types and the
//! [`pipette_obs`] event sink.
//!
//! Everything here is glue: the annealer exposes an [`SaObserver`] hook,
//! the latency model a [`LatencyExplanation`], the memory estimator a
//! [`TrainSummary`] — this module turns each into [`EventKind`]s on a
//! [`Trace`]. Keeping the conversions in one place means the event schema
//! (documented in DESIGN.md §7d) has a single producer per kind.

use crate::latency::LatencyExplanation;
use crate::mapping::{AnnealStats, PtExchangeRecord, SaMoveRecord, SaObserver};
use pipette_model::{MicrobatchPlan, ParallelConfig};
use pipette_obs::{CostUnit, EventKind, SpanGuard, Trace};

/// An [`SaObserver`] that records the annealing run into a [`Trace`]:
/// every `sa_move_sample_every`-th decision as an `sa_move` event, and a
/// rolling `sa_summary` (windowed acceptance rate, cost trajectory,
/// temperature) every `sa_summary_every` iterations.
///
/// Per-candidate SA passes run in parallel; give each pass its own
/// observer over a [`Trace::child`] and absorb the children in candidate
/// order so the merged stream is thread-count independent.
#[derive(Debug)]
pub struct SaTraceObserver<'a> {
    trace: &'a mut Trace,
    span: SpanGuard,
    candidate: usize,
    replica: usize,
    move_every: usize,
    summary_every: usize,
    window_proposed: usize,
    window_accepted: usize,
}

impl<'a> SaTraceObserver<'a> {
    /// An observer recording into `trace`, tagging every event with the
    /// candidate rank whose SA pass it belongs to. Sampling cadences come
    /// from the trace's [`pipette_obs::TraceConfig`]. Events carry
    /// `replica: 0` — the single-chain tag; tempering passes use
    /// [`SaTraceObserver::for_replica`].
    pub fn new(trace: &'a mut Trace, candidate: usize) -> Self {
        Self::for_replica(trace, candidate, 0)
    }

    /// An observer for one chain of a parallel-tempering pass, tagging
    /// every event with both the candidate rank and the replica index.
    ///
    /// Construction opens an `sa_chain` span on the trace; [`Self::finish`]
    /// closes it with the chain's evaluation count as its logical cost, so
    /// every observed chain — configurator passes, benches, tests — gets
    /// span attribution for free.
    pub fn for_replica(trace: &'a mut Trace, candidate: usize, replica: usize) -> Self {
        let config = *trace.config();
        let span = trace.open_span("sa_chain");
        Self {
            trace,
            span,
            candidate,
            replica,
            move_every: config.sa_move_sample_every,
            summary_every: config.sa_summary_every,
            window_proposed: 0,
            window_accepted: 0,
        }
    }

    /// Records the final [`AnnealStats`] of the pass as an `sa_result`
    /// event and closes the chain's `sa_chain` span. Wall-clock
    /// (`stats.elapsed`) is deliberately *not* recorded: the event stream
    /// must be identical across machines and runs.
    pub fn finish(self, stats: &AnnealStats) {
        self.trace.push(EventKind::SaResult {
            candidate: self.candidate,
            replica: self.replica,
            evaluations: stats.evaluations,
            accepted: stats.accepted,
            improvements: stats.improvements,
            initial_cost: stats.initial_cost,
            best_cost: stats.best_cost,
        });
        self.trace
            .close_span(self.span, CostUnit::Evals, stats.evaluations as u64);
    }
}

impl SaObserver for SaTraceObserver<'_> {
    fn on_move(&mut self, r: &SaMoveRecord) {
        if self.move_every > 0 && r.iteration.is_multiple_of(self.move_every) {
            self.trace.push(EventKind::SaMove {
                candidate: self.candidate,
                replica: self.replica,
                iteration: r.iteration,
                kind: r.kind.name(),
                delta: r.delta,
                temperature: r.temperature,
                accepted: r.accepted,
            });
        }
        self.window_proposed += 1;
        if r.accepted {
            self.window_accepted += 1;
        }
        if self.summary_every > 0 && (r.iteration + 1).is_multiple_of(self.summary_every) {
            self.trace.push(EventKind::SaSummary {
                candidate: self.candidate,
                replica: self.replica,
                iteration: r.iteration,
                acceptance_rate: self.window_accepted as f64 / self.window_proposed as f64,
                current_cost: r.current_cost,
                best_cost: r.best_cost,
                temperature: r.temperature,
            });
            self.window_proposed = 0;
            self.window_accepted = 0;
        }
    }
}

/// Records one replica-exchange decision of a parallel-tempering pass as
/// a `pt_exchange` event.
pub fn push_pt_exchange(trace: &mut Trace, candidate: usize, rec: &PtExchangeRecord) {
    trace.push(EventKind::PtExchange {
        candidate,
        round: rec.round,
        replica_lo: rec.replica_lo,
        replica_hi: rec.replica_hi,
        temp_lo: rec.temp_lo,
        temp_hi: rec.temp_hi,
        cost_lo: rec.cost_lo,
        cost_hi: rec.cost_hi,
        accepted: rec.accepted,
    });
}

/// Records one screened candidate's identity-mapping estimate with its
/// Eq. 3–6 term breakdown as a `latency_estimate` event.
pub fn push_latency_estimate(
    trace: &mut Trace,
    candidate: usize,
    cfg: ParallelConfig,
    plan: MicrobatchPlan,
    explanation: &LatencyExplanation,
) {
    let t = &explanation.terms;
    trace.push(EventKind::LatencyEstimate {
        candidate,
        pp: cfg.pp,
        tp: cfg.tp,
        dp: cfg.dp,
        micro_batch: plan.micro_batch,
        n_microbatches: plan.n_microbatches,
        seconds: t.total_seconds,
        t_bubble: t.t_bubble,
        t_straggler: t.t_straggler,
        t_hidden: t.t_hidden,
        t_dp: t.t_dp,
        straggler_stage: t.straggler_stage,
    });
}

/// Records the winning configuration (under its annealed mapping) with
/// the full breakdown and straggler-link identity as a `recommendation`
/// event.
pub fn push_recommendation(
    trace: &mut Trace,
    cfg: ParallelConfig,
    plan: MicrobatchPlan,
    explanation: &LatencyExplanation,
) {
    let t = &explanation.terms;
    let link = explanation.slow_link;
    trace.push(EventKind::Recommendation {
        pp: cfg.pp,
        tp: cfg.tp,
        dp: cfg.dp,
        micro_batch: plan.micro_batch,
        n_microbatches: plan.n_microbatches,
        seconds: t.total_seconds,
        t_bubble: t.t_bubble,
        t_straggler: t.t_straggler,
        t_hidden: t.t_hidden,
        t_dp: t.t_dp,
        t_optimizer: t.t_optimizer,
        straggler_stage: t.straggler_stage,
        slow_link_from: link.map(|l| l.from.0),
        slow_link_to: link.map(|l| l.to.0),
        slow_link_seconds: link.map(|l| l.seconds),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{Annealer, AnnealerConfig};
    use pipette_cluster::ClusterTopology;
    use pipette_obs::TraceConfig;
    use pipette_sim::Mapping;

    fn toy_anneal(trace: &mut Trace) -> AnnealStats {
        let cfg = ParallelConfig::new(4, 2, 2);
        let initial = Mapping::identity(cfg, ClusterTopology::new(4, 4));
        let target: Vec<usize> = (0..16).rev().collect();
        let objective = move |m: &Mapping| {
            m.as_slice()
                .iter()
                .enumerate()
                .map(|(i, g)| (g.0 as f64 - target[i] as f64).abs())
                .sum()
        };
        let annealer = Annealer::new(AnnealerConfig {
            iterations: 2_048,
            seed: 5,
            ..Default::default()
        });
        let mut observer = SaTraceObserver::new(trace, 0);
        let (_, _, stats) = annealer.anneal_observed(
            &initial,
            &mut crate::mapping::FnObjective::new(objective),
            &mut observer,
        );
        observer.finish(&stats);
        stats
    }

    #[test]
    fn observer_emits_moves_summaries_and_result() {
        let mut trace = Trace::new(TraceConfig {
            sa_move_sample_every: 64,
            sa_summary_every: 1024,
            ..TraceConfig::default()
        });
        let stats = toy_anneal(&mut trace);
        assert_eq!(trace.count_kind("sa_move"), 2_048 / 64);
        assert_eq!(trace.count_kind("sa_summary"), 2);
        assert_eq!(trace.count_kind("sa_result"), 1);
        // The sa_result event carries the run's final statistics.
        let jsonl = trace.to_jsonl();
        let result_line = jsonl
            .lines()
            .find(|l| l.contains(r#""kind":"sa_result""#))
            .unwrap();
        assert!(result_line.contains(&format!(r#""evaluations":{}"#, stats.evaluations)));
        assert!(result_line.contains(&format!(r#""accepted":{}"#, stats.accepted)));
    }

    #[test]
    fn zero_cadence_disables_moves_but_keeps_result() {
        let mut trace = Trace::new(TraceConfig {
            sa_move_sample_every: 0,
            sa_summary_every: 0,
            ..TraceConfig::default()
        });
        toy_anneal(&mut trace);
        assert_eq!(trace.count_kind("sa_move"), 0);
        assert_eq!(trace.count_kind("sa_summary"), 0);
        assert_eq!(trace.count_kind("sa_result"), 1);
    }

    #[test]
    fn for_replica_tags_every_event_and_pt_exchange_round_trips() {
        let mut trace = Trace::new(TraceConfig {
            sa_move_sample_every: 256,
            sa_summary_every: 1024,
            ..TraceConfig::default()
        });
        let cfg = ParallelConfig::new(4, 2, 2);
        let initial = Mapping::identity(cfg, ClusterTopology::new(4, 4));
        let annealer = Annealer::new(AnnealerConfig {
            iterations: 1_024,
            seed: 7,
            ..Default::default()
        });
        let mut observer = SaTraceObserver::for_replica(&mut trace, 2, 3);
        let (_, _, stats) = annealer.anneal_observed(
            &initial,
            &mut crate::mapping::FnObjective::new(|m: &Mapping| m.as_slice()[0].0 as f64),
            &mut observer,
        );
        observer.finish(&stats);
        push_pt_exchange(
            &mut trace,
            2,
            &PtExchangeRecord {
                round: 4,
                replica_lo: 2,
                replica_hi: 3,
                temp_lo: 0.5,
                temp_hi: 1.0,
                cost_lo: 3.0,
                cost_hi: 2.5,
                accepted: true,
            },
        );
        assert_eq!(trace.count_kind("pt_exchange"), 1);
        for line in trace.to_jsonl().lines() {
            if line.contains(r#""kind":"sa_"#) {
                assert!(line.contains(r#""replica":3"#), "untagged event: {line}");
            }
            if line.contains(r#""kind":"pt_exchange""#) {
                assert!(line.contains(r#""round":4"#), "bad round: {line}");
                assert!(line.contains(r#""replica_lo":2"#));
                assert!(line.contains(r#""replica_hi":3"#));
                assert!(line.contains(r#""accepted":true"#));
            }
        }
    }

    #[test]
    fn summary_acceptance_rate_is_windowed() {
        let mut trace = Trace::new(TraceConfig {
            sa_move_sample_every: 0,
            sa_summary_every: 512,
            ..TraceConfig::default()
        });
        toy_anneal(&mut trace);
        assert_eq!(trace.count_kind("sa_summary"), 4);
        for line in trace.to_jsonl().lines() {
            if line.contains(r#""kind":"sa_summary""#) {
                // Rate is a fraction in [0, 1].
                let rate: f64 = line
                    .split(r#""acceptance_rate":"#)
                    .nth(1)
                    .unwrap()
                    .split(',')
                    .next()
                    .unwrap()
                    .parse()
                    .unwrap();
                assert!((0.0..=1.0).contains(&rate), "rate {rate} out of range");
            }
        }
    }
}
