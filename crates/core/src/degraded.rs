//! Graceful degradation: running Algorithm 1 under a cluster-fault
//! episode.
//!
//! [`run_under_faults`] walks the degradation ladder end to end:
//!
//! 1. **Retry** — the robust profiler re-measures pairs whose readings
//!    come back corrupt or failed (bounded by the policy's retry budget).
//! 2. **Impute** — pairs that never produce a valid reading get the
//!    link-class mean of the valid measurements, else the nominal spec.
//! 3. **Exclude** — dead GPUs cordon their host node; the configurator
//!    re-runs on the surviving subcluster and reports a
//!    [`ReconfigurationPlan`] diff against the healthy recommendation.
//! 4. **Fall back** — if the surviving profiling corpus is too small or
//!    collapsed to train the MLP memory estimator, screening falls back
//!    to the analytic model with an explicit `fallback` trace event.
//!
//! Under the zero-fault [`FaultPlan`] every rung is a no-op and the
//! recommendation is bit-identical to [`Pipette::run`] — pinned by the
//! `fault_drill` integration tests.

use crate::configurator::{Pipette, PipetteOptions, Recommendation};
use crate::error::ConfigureError;
use crate::memory::{collect_samples_parallel, MemoryEstimator};
use pipette_cluster::{
    Cluster, FaultPlan, MeasurementQuality, MeasurementReport, ProfiledBandwidth,
    RobustProfilingPolicy,
};
use pipette_cluster::{GpuId, NodeId};
use pipette_model::GptConfig;
use pipette_obs::{CostUnit, EventKind, Trace};

/// How the degraded recommendation differs from what the healthy cluster
/// would have been told to run.
#[derive(Debug, Clone)]
pub struct ReconfigurationPlan {
    /// The recommendation for the full, healthy cluster.
    pub healthy: Recommendation,
    /// GPUs the healthy cluster had.
    pub healthy_gpus: usize,
    /// GPUs that survive the fault plan.
    pub surviving_gpus: usize,
    /// `degraded_seconds / healthy_seconds`: how much slower one
    /// iteration runs after reconfiguration.
    pub slowdown_factor: f64,
    /// Requests served in breaker-degraded (analytic-memory) mode; zero
    /// for one-shot drills, populated by `pipette drill --serve` replays.
    pub degraded_requests: u64,
}

/// Everything a degraded configuration run produced.
#[derive(Debug, Clone)]
pub struct DegradedOutcome {
    /// The recommendation for the surviving subcluster.
    pub recommendation: Recommendation,
    /// The surviving subcluster the recommendation targets (the whole
    /// cluster when the plan fails no nodes).
    pub survivor: Cluster,
    /// Per-pair measurement-quality accounting from the robust profiler.
    pub report: MeasurementReport,
    /// Diff against the healthy recommendation; `None` when no GPUs were
    /// excluded (nothing to reconfigure around).
    pub reconfiguration: Option<ReconfigurationPlan>,
    /// GPUs taken out of service (original cluster indices).
    pub excluded_gpus: Vec<GpuId>,
    /// Whether memory screening fell back to the analytic model because
    /// estimator training degenerated.
    pub used_analytic_fallback: bool,
}

/// Runs Algorithm 1 under a [`FaultPlan`], degrading gracefully instead
/// of panicking: retry → impute → exclude → analytic fallback.
///
/// The zero-fault plan with the default policy reproduces
/// [`Pipette::run`] bit for bit (same profiler RNG draws, same training
/// corpus, same search).
///
/// # Errors
///
/// [`ConfigureError::Cluster`] if the plan is malformed for this
/// topology; [`ConfigureError::ClusterExhausted`] if it fails every
/// node; plus everything [`Pipette::run`] can return.
pub fn run_under_faults(
    cluster: &Cluster,
    gpt: &GptConfig,
    global_batch: u64,
    options: PipetteOptions,
    plan: &FaultPlan,
    policy: &RobustProfilingPolicy,
    mut trace: Option<&mut Trace>,
) -> Result<DegradedOutcome, ConfigureError> {
    let topo = cluster.topology();
    plan.validate(topo)?;

    if let Some(t) = trace.as_deref_mut() {
        t.push(EventKind::FaultPlanApplied {
            plan_seed: plan.seed,
            degraded_links: plan.degraded_links.len(),
            straggler_gpus: plan.straggler_gpus.len(),
            failed_gpus: plan.failed_gpus.len(),
            failed_nodes: plan.failed_nodes.len(),
            corrupt_pairs: plan.corrupt_pairs.len(),
            measurement_failure_rate: plan.measurement_failure_rate,
            sample_loss_rate: plan.sample_loss_rate,
        });
        if let Some(d) = &plan.drift {
            t.push(EventKind::DriftApplied {
                day: d.day,
                daily_sigma: d.daily_sigma,
                reversion: d.reversion,
            });
        }
    }

    // Rung 3 first, structurally: who is even available?
    let excluded_gpus = plan.excluded_gpu_ids(topo);
    if let Some(t) = trace.as_deref_mut() {
        for &gpu in &excluded_gpus {
            t.push(EventKind::GpuExcluded {
                gpu: gpu.0,
                node: topo.node_of(gpu).0,
            });
        }
    }
    let surviving_nodes: Vec<NodeId> = plan.surviving_node_ids(topo);
    if surviving_nodes.is_empty() {
        return Err(ConfigureError::ClusterExhausted {
            failed_gpus: excluded_gpus.len(),
            total_gpus: topo.num_gpus(),
        });
    }

    // Rungs 1–2: robust profiling of the *full* degraded cluster (the
    // plan's fault coordinates reference original GPU indices), with
    // retries and imputation handled inside the profiler.
    let degraded_truth = plan.apply_to_truth(cluster.bandwidth());
    let robust_span = trace.as_deref_mut().map(|t| t.open_span("robust_profile"));
    let (profiled, cost) =
        match cluster
            .profiler()
            .profile_robust(&degraded_truth, options.seed, plan, policy)
        {
            Ok(result) => result,
            Err(e) => {
                if let (Some(t), Some(g)) = (trace.as_deref_mut(), robust_span) {
                    t.close_span(g, CostUnit::Pairs, 0);
                }
                return Err(e.into());
            }
        };
    let report = profiled.report().cloned().unwrap_or_default();
    if let Some(t) = trace.as_deref_mut() {
        for incident in &report.incidents {
            match incident.quality {
                MeasurementQuality::Clean => {}
                MeasurementQuality::Recovered {
                    retries,
                    corrupt_samples,
                } => t.push(EventKind::ProfilerRetry {
                    from: incident.from.0,
                    to: incident.to.0,
                    retries,
                    corrupt_samples,
                    recovered: true,
                }),
                MeasurementQuality::Imputed { gib_s, retries } => t.push(EventKind::PairImputed {
                    from: incident.from.0,
                    to: incident.to.0,
                    gib_s,
                    retries,
                }),
            }
        }
        if let Some(g) = robust_span {
            t.close_span(g, CostUnit::Pairs, report.incidents.len() as u64);
        }
    }

    // Restrict the measured matrix to the survivors. When nothing was
    // excluded the full profiled matrix (report and all) flows through
    // unchanged, preserving zero-fault bit-identity.
    let (survivor, survivor_profiled) = if excluded_gpus.is_empty() {
        (cluster.clone(), profiled)
    } else {
        let matrix = profiled.matrix().select_nodes(&surviving_nodes)?;
        (
            cluster.excluding_nodes(&plan.failed_node_ids(topo))?,
            ProfiledBandwidth::exact(matrix),
        )
    };

    // Rung 4: train the memory estimator on whatever profiling samples
    // survive; degenerate corpora fall back to the analytic model.
    let survivor_pipette =
        Pipette::new(&survivor, gpt, global_batch, options).with_profiled(survivor_profiled, cost);
    let (spec, truth_sim) = survivor_pipette.profiling_spec();
    let samples = collect_samples_parallel(&spec, &truth_sim, options.threads);
    let kept: Vec<_> = samples
        .iter()
        .enumerate()
        .filter(|&(i, _)| !plan.sample_lost(i))
        .map(|(_, s)| *s)
        .collect();
    let (survivor_pipette, used_analytic_fallback) =
        match MemoryEstimator::train_checked(&kept, &options.memory, options.threads) {
            Ok(estimator) => (survivor_pipette.with_memory_estimator(estimator), false),
            Err(degeneracy) => {
                if let Some(t) = trace.as_deref_mut() {
                    t.push(EventKind::Fallback {
                        component: "memory_estimator".to_string(),
                        reason: degeneracy.to_string(),
                    });
                }
                (survivor_pipette.with_analytic_memory(), true)
            }
        };

    let recommendation = survivor_pipette.run_with(trace.as_deref_mut())?;

    // Diff against the healthy baseline when the plan cost us GPUs.
    let reconfiguration = if excluded_gpus.is_empty() {
        None
    } else {
        let healthy = Pipette::new(cluster, gpt, global_batch, options).run()?;
        let slowdown = recommendation.estimated_seconds / healthy.estimated_seconds;
        if let Some(t) = trace {
            t.push(EventKind::Reconfiguration {
                healthy_pp: healthy.config.pp,
                healthy_tp: healthy.config.tp,
                healthy_dp: healthy.config.dp,
                healthy_micro: healthy.plan.micro_batch,
                healthy_seconds: healthy.estimated_seconds,
                degraded_pp: recommendation.config.pp,
                degraded_tp: recommendation.config.tp,
                degraded_dp: recommendation.config.dp,
                degraded_micro: recommendation.plan.micro_batch,
                degraded_seconds: recommendation.estimated_seconds,
                healthy_gpus: topo.num_gpus(),
                surviving_gpus: survivor.topology().num_gpus(),
            });
        }
        Some(ReconfigurationPlan {
            healthy,
            healthy_gpus: topo.num_gpus(),
            surviving_gpus: survivor.topology().num_gpus(),
            slowdown_factor: slowdown,
            degraded_requests: 0,
        })
    };

    Ok(DegradedOutcome {
        recommendation,
        survivor,
        report,
        reconfiguration,
        excluded_gpus,
        used_analytic_fallback,
    })
}
