//! The individual communication terms of the latency model (Eqs. 5–6),
//! each computable per stage / per hop / per replica, plus the shared
//! critical-path reduction over them.
//!
//! Both evaluation paths — the batch estimator
//! ([`crate::latency::PipetteLatencyModel::estimate`]) and the incremental
//! SA objective ([`crate::mapping::IncrementalObjective`]) — feed these
//! terms through [`reduce_latency_s`], so the two are bit-identical by
//! construction: the incremental path merely caches term values that the
//! batch path recomputes.

use pipette_cluster::{BandwidthMatrix, GpuId};
use pipette_model::{messages, GptConfig, MicrobatchPlan, ParallelConfig, WorkerId};
use pipette_sim::iteration::OPTIMIZER_STEP_S;
use pipette_sim::{CommModel, HierScratch, Mapping, ProfiledCompute};

/// Eq. 5 — pipeline-parallel communication on the critical path for one
/// data replica `z`: the slowest tensor rank of each hop, summed along the
/// chain, doubled for forward+backward.
pub fn t_pp_chain(matrix: &BandwidthMatrix, mapping: &Mapping, msg_pp: u64, z: usize) -> f64 {
    let cfg = mapping.config();
    let comm = CommModel::new(matrix);
    let mut total = 0.0;
    for x in 0..cfg.pp.saturating_sub(1) {
        let mut hop: f64 = 0.0;
        for y in 0..cfg.tp {
            let a = mapping.gpu_of(WorkerId {
                stage: x,
                tensor: y,
                data: z,
            });
            let b = mapping.gpu_of(WorkerId {
                stage: x + 1,
                tensor: y,
                data: z,
            });
            hop = hop.max(comm.p2p(a, b, msg_pp) + comm.p2p(b, a, msg_pp));
        }
        total += hop;
    }
    total
}

/// One hop of Eq. 5's chain: the round-trip transfer time between stages
/// `x` and `x + 1` of replica `z` (slowest tensor rank).
pub fn t_pp_chain_hop(
    matrix: &BandwidthMatrix,
    mapping: &Mapping,
    msg_pp: u64,
    z: usize,
    x: usize,
) -> f64 {
    let cfg = mapping.config();
    debug_assert!(x + 1 < cfg.pp, "hop {x} out of range");
    // Worker (s, y, z) lives at linear index ((s·dp + z)·tp + y), so the
    // two stages' tensor ranks are consecutive `tp`-slices of the
    // assignment (one block each).
    let a = (x * cfg.dp + z) * cfg.tp;
    let b = ((x + 1) * cfg.dp + z) * cfg.tp;
    let assign = mapping.as_slice();
    t_pp_hop_between(
        matrix,
        &assign[a..a + cfg.tp],
        &assign[b..b + cfg.tp],
        msg_pp,
    )
}

/// [`t_pp_chain_hop`] on raw block contents: the hop time between a block
/// holding `a` and a block holding `b` (same tensor rank talks to same
/// tensor rank). Depends only on the two GPU tuples — SA moves permute
/// whole blocks, so the incremental objective tabulates this per block
/// *pair* once and never recomputes it.
pub fn t_pp_hop_between(matrix: &BandwidthMatrix, a: &[GpuId], b: &[GpuId], msg_pp: u64) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "blocks must have equal tensor width");
    let comm = CommModel::new(matrix);
    let mut hop: f64 = 0.0;
    for y in 0..a.len() {
        hop = hop.max(comm.p2p(a[y], b[y], msg_pp) + comm.p2p(b[y], a[y], msg_pp));
    }
    hop
}

/// Eq. 5's outer `max` — the slowest end-to-end pipeline over all replicas.
pub fn t_pp(matrix: &BandwidthMatrix, mapping: &Mapping, msg_pp: u64) -> f64 {
    let cfg = mapping.config();
    (0..cfg.dp)
        .map(|z| t_pp_chain(matrix, mapping, msg_pp, z))
        .fold(0.0, f64::max)
}

/// Data-parallel all-reduce time of one pipeline stage: hierarchical ring
/// over each tensor rank's replica group, the slowest rank dominating.
pub fn t_dp_stage(
    matrix: &BandwidthMatrix,
    mapping: &Mapping,
    gpt: &GptConfig,
    stage: usize,
) -> f64 {
    t_dp_stage_with(
        &mut HierScratch::new(),
        &mut Vec::new(),
        matrix,
        mapping,
        gpt,
        stage,
    )
}

/// [`t_dp_stage`] with caller-provided scratch buffers (allocation-free on
/// the hot path); returns the identical value.
pub fn t_dp_stage_with(
    scratch: &mut HierScratch,
    group: &mut Vec<GpuId>,
    matrix: &BandwidthMatrix,
    mapping: &Mapping,
    gpt: &GptConfig,
    stage: usize,
) -> f64 {
    let cfg = mapping.config();
    if cfg.dp < 2 {
        return 0.0;
    }
    let comm = CommModel::new(matrix);
    let bytes = messages::dp_gradient_bytes(gpt, cfg.pp, cfg.tp, stage);
    let mut worst = 0.0f64;
    for tensor in 0..cfg.tp {
        group.clear();
        group.extend((0..cfg.dp).map(|data| {
            mapping.gpu_of(WorkerId {
                stage,
                tensor,
                data,
            })
        }));
        worst = worst.max(comm.hierarchical_allreduce_with(scratch, group, bytes));
    }
    worst
}

/// Eq. 6 — data-parallel all-reduce of the *first* pipeline stage, which
/// is usually the only stage whose DP communication lies on the critical
/// path (Fig. 4): it finishes its final backward last and carries the
/// embedding gradients.
pub fn t_dp_first_stage(matrix: &BandwidthMatrix, mapping: &Mapping, gpt: &GptConfig) -> f64 {
    t_dp_stage(matrix, mapping, gpt, 0)
}

/// Tensor-parallel all-reduce time for one microbatch on stage `stage` of
/// replica `z`: four all-reduces per layer (two forward, two backward)
/// over the group's slowest link, from the profiled matrix.
pub fn t_tp_stage(
    matrix: &BandwidthMatrix,
    mapping: &Mapping,
    gpt: &GptConfig,
    micro_batch: u64,
    stage: usize,
    z: usize,
) -> f64 {
    let cfg = mapping.config();
    if cfg.tp < 2 {
        return 0.0;
    }
    let comm = CommModel::new(matrix);
    let bytes = messages::tp_allreduce_bytes(gpt, micro_batch);
    t_tp_from_allreduce(
        gpt,
        cfg.pp,
        stage,
        comm.ring_allreduce(&mapping.tensor_group(stage, z), bytes),
    )
}

/// Scales one tensor group's ring all-reduce time into the stage's full
/// tensor-parallel cost (four all-reduces per layer). The all-reduce time
/// itself depends only on the group's GPUs, so the incremental objective
/// caches it per block and re-applies this stage-dependent scaling.
pub fn t_tp_from_allreduce(gpt: &GptConfig, pp: usize, stage: usize, allreduce: f64) -> f64 {
    let layers = gpt.layers_of_stage(pp, stage) as f64;
    messages::TP_ALLREDUCES_PER_LAYER as f64 * layers * allreduce
}

/// The shared Eq. 3–6 critical-path reduction over per-stage / per-hop
/// terms — the single source of truth behind both the batch estimator and
/// the incremental objective.
///
/// `tp_term(s, z)` is the tensor-parallel cost of stage `s` in replica
/// `z`; `hop(x, z)` is the round-trip inter-stage transfer between stages
/// `x` and `x + 1` of replica `z`; `dp_times[s]` is the stage's
/// data-parallel all-reduce time. `stage_cost` is caller-provided scratch.
/// Closure call order and floating-point reduction order are fixed, so two
/// callers feeding bitwise-equal terms get bitwise-equal estimates.
pub fn reduce_latency_s<FT, FH>(
    cfg: ParallelConfig,
    plan: MicrobatchPlan,
    compute: &ProfiledCompute,
    dp_times: &[f64],
    mut tp_term: FT,
    mut hop: FH,
    stage_cost: &mut Vec<f64>,
) -> f64
where
    FT: FnMut(usize, usize) -> f64,
    FH: FnMut(usize, usize) -> f64,
{
    let pp = cfg.pp as f64;
    // Per-replica critical paths; the slowest replica gates the DP sync.
    let mut worst = 0.0f64;
    for z in 0..cfg.dp {
        stage_cost.clear();
        stage_cost.extend((0..cfg.pp).map(|s| compute.compute(s) + tp_term(s, z)));
        let sum: f64 = stage_cost.iter().sum();
        let max = stage_cost.iter().cloned().fold(0.0, f64::max);
        let mean = sum / pp;
        let mut t_pp = 0.0;
        for x in 0..cfg.pp.saturating_sub(1) {
            t_pp += hop(x, z);
        }
        // Decomposition mirroring Eq. 3, generalized to non-uniform
        // stages (the last stage carries the LM head):
        //
        // * straggler steady-state work: `n_mb · max_s C_s`
        //   (Eq. 4's straggler term, which dominates when one stage is
        //   slower than the dependency loop);
        // * one pipeline fill+drain: `(pp − 1) · C̄ + T_pp`
        //   (Eq. 4's bubble);
        // * the hidden critical path: the 1F1B loop (forward down,
        //   backward up) closes `n_mb/pp − 1` times (§V), each time
        //   charging however much the loop `Σ C_s + T_pp` exceeds the
        //   straggler-bound work `pp · max_s C_s`.
        let loops = (plan.n_microbatches as f64 / pp - 1.0).max(0.0);
        let loop_excess = (sum + t_pp - pp * max).max(0.0);
        let chain =
            plan.n_microbatches as f64 * max + (pp - 1.0) * mean + t_pp + loops * loop_excess;

        // Data-parallel sync. Stage 0 finishes its final backward last,
        // so its all-reduce is fully exposed (Eq. 6). A later stage `s`
        // finishes earlier by the backward-wave gap (the time the final
        // gradient takes to travel from `s` to stage 0), so its
        // all-reduce only matters if it exceeds that slack.
        let mut gap = 0.0;
        let mut dp_exposed: f64 = dp_times[0];
        for s in 1..cfg.pp {
            gap += 2.0 * stage_cost[s - 1] / 3.0 + hop(s - 1, z) / 2.0;
            dp_exposed = dp_exposed.max(dp_times[s] - gap);
        }
        worst = worst.max(chain + dp_exposed);
    }
    worst + OPTIMIZER_STEP_S
}

/// Hot-path form of [`reduce_latency_s`] over precomputed slices — the
/// once-per-proposal call of [`crate::mapping::IncrementalObjective`].
///
/// The closure-based reduction re-derives two stage-static factors on
/// every call: the profiled compute time `compute.compute(s)` and the
/// tensor-parallel scaling `TP_ALLREDUCES_PER_LAYER · layers_of_stage`
/// (two integer divisions per stage per replica). Here both are hoisted
/// into caller-precomputed slices — `comp[s]` and `tp_factor[s]` — and
/// the three inner passes (stage costs, hop sum, backward-wave gap) are
/// fused into two. Every floating-point operation still happens in the
/// same order on the same values, so the result is **bit-identical** to
/// [`reduce_latency_s`] fed the equivalent closures (guarded by
/// `cached_reduce_is_bitwise_equal_to_closure_form` below and by the
/// propose-vs-batch parity suite).
///
/// Contract: `comp[s] = compute.compute(s)`; `tp_factor[s] =
/// TP_ALLREDUCES_PER_LAYER as f64 * (layers_of_stage(pp, s) as f64)`
/// (ignored when `cfg.tp < 2`); `block_allreduce` is indexed `s·dp + z`
/// and `hops` is indexed `x·dp + z`; `stage_cost` is caller scratch.
#[allow(clippy::too_many_arguments)]
pub fn reduce_latency_cached_s(
    cfg: ParallelConfig,
    plan: MicrobatchPlan,
    comp: &[f64],
    tp_factor: &[f64],
    block_allreduce: &[f64],
    hops: &[f64],
    dp_times: &[f64],
    stage_cost: &mut Vec<f64>,
) -> f64 {
    let pp = cfg.pp as f64;
    let dp = cfg.dp;
    let tp_small = cfg.tp < 2;
    if stage_cost.len() != cfg.pp {
        stage_cost.clear();
        stage_cost.resize(cfg.pp, 0.0);
    }
    // Prefix bindings let the compiler drop the per-element bounds checks
    // in the stage loops (every index is `< cfg.pp` by construction).
    let comp = &comp[..cfg.pp];
    let tp_factor = &tp_factor[..cfg.pp];
    let dp_times = &dp_times[..cfg.pp];
    let stage_cost = &mut stage_cost[..cfg.pp];
    // Replica-invariant factors, hoisted out of the z loop.
    let n_mb = plan.n_microbatches as f64;
    let loops = (n_mb / pp - 1.0).max(0.0);
    let mut worst = 0.0f64;
    for z in 0..dp {
        // Pass 1: per-stage costs, with the running sum and max folded in
        // (identical accumulation order to `iter().sum()` and
        // `fold(0.0, f64::max)` over the finished slice). The `tp < 2`
        // test is hoisted to loop selection; the degenerate branch keeps
        // the closure form's `+ 0.0` so signed zeros round-trip.
        let mut sum = 0.0f64;
        let mut max = 0.0f64;
        if tp_small {
            for s in 0..cfg.pp {
                let c = comp[s] + 0.0;
                stage_cost[s] = c;
                sum += c;
                max = f64::max(max, c);
            }
        } else {
            for s in 0..cfg.pp {
                let c = comp[s] + tp_factor[s] * block_allreduce[s * dp + z];
                stage_cost[s] = c;
                sum += c;
                max = f64::max(max, c);
            }
        }
        let mean = sum / pp;
        // Pass 2: hop sum and backward-wave gap share the same hop reads,
        // in the same left-to-right order as the two separate loops of
        // the closure form.
        let mut t_pp = 0.0;
        let mut gap = 0.0;
        let mut dp_exposed: f64 = dp_times[0];
        for s in 1..cfg.pp {
            let h = hops[(s - 1) * dp + z];
            t_pp += h;
            gap += 2.0 * stage_cost[s - 1] / 3.0 + h / 2.0;
            dp_exposed = dp_exposed.max(dp_times[s] - gap);
        }
        let loop_excess = (sum + t_pp - pp * max).max(0.0);
        let chain = n_mb * max + (pp - 1.0) * mean + t_pp + loops * loop_excess;
        worst = worst.max(chain + dp_exposed);
    }
    worst + OPTIMIZER_STEP_S
}

/// The Eq. 3–6 decomposition of one latency estimate, as recorded for
/// telemetry and `pipette explain`.
///
/// `total_seconds` is **bit-identical** to what [`reduce_latency_s`] returns
/// for the same inputs ([`reduce_latency_breakdown`] mirrors its arithmetic
/// op for op; `reduce_is_bitwise_equal_to_breakdown` guards the invariant).
/// The component terms are reported for the critical replica — the one
/// whose chain + exposed DP sync gates the iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyBreakdown {
    /// The full estimate: critical replica's path plus the optimizer step.
    pub total_seconds: f64,
    /// Straggler steady-state term (Eq. 4): `n_mb · max_s C_s`.
    pub t_straggler: f64,
    /// Pipeline fill+drain bubble (Eq. 4): `(pp − 1) · C̄ + T_pp`.
    pub t_bubble: f64,
    /// Hidden-critical-path term (§V): `loops · loop_excess`.
    pub t_hidden: f64,
    /// Exposed data-parallel all-reduce (Eq. 6) after backward-wave slack.
    pub t_dp: f64,
    /// Constant optimizer-step cost added on top of the critical path.
    pub t_optimizer: f64,
    /// Data replica whose critical path gates the iteration.
    pub critical_replica: usize,
    /// Stage with the largest compute + tensor-parallel cost in that
    /// replica (first such stage on ties).
    pub straggler_stage: usize,
}

/// [`reduce_latency_s`], but also reporting where the time went.
///
/// Mirrors [`reduce_latency_s`]'s floating-point operations in the same
/// order, so `breakdown.total_seconds` is bitwise equal to the plain
/// estimate. Kept separate from the hot-path reduction (which the SA inner
/// loop calls thousands of times per pass) so instrumentation costs
/// nothing when not asked for.
pub fn reduce_latency_breakdown<FT, FH>(
    cfg: ParallelConfig,
    plan: MicrobatchPlan,
    compute: &ProfiledCompute,
    dp_times: &[f64],
    mut tp_term: FT,
    mut hop: FH,
    stage_cost: &mut Vec<f64>,
) -> LatencyBreakdown
where
    FT: FnMut(usize, usize) -> f64,
    FH: FnMut(usize, usize) -> f64,
{
    let pp = cfg.pp as f64;
    let mut worst = 0.0f64;
    let mut best = LatencyBreakdown {
        total_seconds: 0.0,
        t_straggler: 0.0,
        t_bubble: 0.0,
        t_hidden: 0.0,
        t_dp: 0.0,
        t_optimizer: OPTIMIZER_STEP_S,
        critical_replica: 0,
        straggler_stage: 0,
    };
    for z in 0..cfg.dp {
        stage_cost.clear();
        stage_cost.extend((0..cfg.pp).map(|s| compute.compute(s) + tp_term(s, z)));
        let sum: f64 = stage_cost.iter().sum();
        let max = stage_cost.iter().cloned().fold(0.0, f64::max);
        let mean = sum / pp;
        let mut t_pp = 0.0;
        for x in 0..cfg.pp.saturating_sub(1) {
            t_pp += hop(x, z);
        }
        let loops = (plan.n_microbatches as f64 / pp - 1.0).max(0.0);
        let loop_excess = (sum + t_pp - pp * max).max(0.0);
        let chain =
            plan.n_microbatches as f64 * max + (pp - 1.0) * mean + t_pp + loops * loop_excess;

        let mut gap = 0.0;
        let mut dp_exposed: f64 = dp_times[0];
        for s in 1..cfg.pp {
            gap += 2.0 * stage_cost[s - 1] / 3.0 + hop(s - 1, z) / 2.0;
            dp_exposed = dp_exposed.max(dp_times[s] - gap);
        }
        let total = chain + dp_exposed;
        if z == 0 || total > worst {
            let mut straggler_stage = 0;
            for (s, &c) in stage_cost.iter().enumerate() {
                if c > stage_cost[straggler_stage] {
                    straggler_stage = s;
                }
            }
            best = LatencyBreakdown {
                total_seconds: 0.0, // filled below from `worst`
                t_straggler: plan.n_microbatches as f64 * max,
                t_bubble: (pp - 1.0) * mean + t_pp,
                t_hidden: loops * loop_excess,
                t_dp: dp_exposed,
                t_optimizer: OPTIMIZER_STEP_S,
                critical_replica: z,
                straggler_stage,
            };
        }
        worst = worst.max(total);
    }
    best.total_seconds = worst + OPTIMIZER_STEP_S;
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipette_cluster::{presets, ClusterTopology, GpuId};
    use pipette_model::ParallelConfig;

    fn setup() -> (pipette_cluster::Cluster, GptConfig) {
        (
            presets::mid_range(4).build(11),
            GptConfig::new(8, 1024, 16, 2048, 51200),
        )
    }

    #[test]
    fn cached_reduce_is_bitwise_equal_to_closure_form() {
        use pipette_sim::ComputeProfiler;
        let (c, gpt) = setup();
        // Cover tp ≥ 2 and the tp-small branch, plus pp = 1 edge.
        for cfg in [
            ParallelConfig::new(4, 2, 4),
            ParallelConfig::new(8, 2, 2),
            ParallelConfig::new(4, 1, 8),
            ParallelConfig::new(1, 4, 8),
        ] {
            let plan = MicrobatchPlan::new(64, 2).unwrap();
            let gpu = c.gpu().clone();
            let compute =
                ComputeProfiler::default().profile(c.bandwidth(), &gpu, &gpt, cfg, plan, 3);
            let (pp, dp) = (cfg.pp, cfg.dp);
            // Synthetic but irregular term values: bit-equality must hold
            // for arbitrary inputs, not just physically plausible ones.
            let block_allreduce: Vec<f64> = (0..pp * dp)
                .map(|i| 1e-4 * (1.0 + (i as f64).sin().abs()))
                .collect();
            let hops: Vec<f64> = (0..pp.saturating_sub(1) * dp)
                .map(|i| 2e-4 * (1.0 + (i as f64).cos().abs()))
                .collect();
            let dp_times: Vec<f64> = (0..pp)
                .map(|s| 3e-4 * (1.0 + (s as f64 * 0.7).fract()))
                .collect();
            let comp: Vec<f64> = (0..pp).map(|s| compute.compute(s)).collect();
            let tp_factor: Vec<f64> = (0..pp)
                .map(|s| {
                    messages::TP_ALLREDUCES_PER_LAYER as f64 * gpt.layers_of_stage(pp, s) as f64
                })
                .collect();
            let mut scratch_a = Vec::new();
            let mut scratch_b = Vec::new();
            let tp_small = cfg.tp < 2;
            let closure_form = reduce_latency_s(
                cfg,
                plan,
                &compute,
                &dp_times,
                |s, z| {
                    if tp_small {
                        0.0
                    } else {
                        t_tp_from_allreduce(&gpt, pp, s, block_allreduce[s * dp + z])
                    }
                },
                |x, z| hops[x * dp + z],
                &mut scratch_a,
            );
            let cached_form = reduce_latency_cached_s(
                cfg,
                plan,
                &comp,
                &tp_factor,
                &block_allreduce,
                &hops,
                &dp_times,
                &mut scratch_b,
            );
            assert_eq!(
                closure_form.to_bits(),
                cached_form.to_bits(),
                "{cfg:?}: {closure_form} vs {cached_form}"
            );
        }
    }

    #[test]
    fn t_pp_zero_for_single_stage() {
        let (c, _) = setup();
        let cfg = ParallelConfig::new(1, 8, 4);
        let m = Mapping::identity(cfg, *c.topology());
        assert_eq!(t_pp(c.bandwidth(), &m, 1 << 20), 0.0);
    }

    #[test]
    fn t_pp_grows_with_message_size() {
        let (c, _) = setup();
        let cfg = ParallelConfig::new(4, 8, 1);
        let m = Mapping::identity(cfg, *c.topology());
        let small = t_pp(c.bandwidth(), &m, 1 << 20);
        let big = t_pp(c.bandwidth(), &m, 1 << 24);
        assert!(big > 10.0 * small);
    }

    #[test]
    fn t_pp_is_max_over_chains() {
        let (c, _) = setup();
        let cfg = ParallelConfig::new(2, 8, 2);
        let m = Mapping::identity(cfg, *c.topology());
        let full = t_pp(c.bandwidth(), &m, 1 << 22);
        let per_chain: Vec<f64> = (0..2)
            .map(|z| t_pp_chain(c.bandwidth(), &m, 1 << 22, z))
            .collect();
        assert_eq!(full, per_chain.iter().cloned().fold(0.0, f64::max));
    }

    #[test]
    fn t_dp_zero_without_replicas() {
        let (c, gpt) = setup();
        let cfg = ParallelConfig::new(4, 8, 1);
        let m = Mapping::identity(cfg, *c.topology());
        assert_eq!(t_dp_first_stage(c.bandwidth(), &m, &gpt), 0.0);
    }

    #[test]
    fn t_dp_positive_with_replicas() {
        let (c, gpt) = setup();
        let cfg = ParallelConfig::new(2, 8, 2);
        let m = Mapping::identity(cfg, *c.topology());
        assert!(t_dp_first_stage(c.bandwidth(), &m, &gpt) > 0.0);
    }

    #[test]
    fn t_tp_zero_without_tensor_parallelism() {
        let (c, gpt) = setup();
        let cfg = ParallelConfig::new(4, 1, 8);
        let m = Mapping::identity(cfg, *c.topology());
        assert_eq!(t_tp_stage(c.bandwidth(), &m, &gpt, 2, 0, 0), 0.0);
    }

    #[test]
    fn reduce_is_bitwise_equal_to_breakdown() {
        use pipette_sim::ComputeProfiler;
        let (c, gpt) = setup();
        for (cfg, micro, mini) in [
            (ParallelConfig::new(2, 4, 4), 2u64, 32u64),
            (ParallelConfig::new(4, 8, 1), 2, 64),
            (ParallelConfig::new(1, 8, 4), 4, 16),
            (ParallelConfig::new(8, 2, 2), 1, 32),
        ] {
            let m = Mapping::identity(cfg, *c.topology());
            let plan = pipette_model::MicrobatchPlan::new(mini, micro).unwrap();
            let compute =
                ComputeProfiler::default().profile(c.bandwidth(), c.gpu(), &gpt, cfg, plan, 4);
            let msg_pp = messages::pp_message_bytes(&gpt, plan.micro_batch);
            let dp_times: Vec<f64> = (0..cfg.pp)
                .map(|s| t_dp_stage(c.bandwidth(), &m, &gpt, s))
                .collect();
            let mut scratch = Vec::new();
            let plain = reduce_latency_s(
                cfg,
                plan,
                &compute,
                &dp_times,
                |s, z| t_tp_stage(c.bandwidth(), &m, &gpt, plan.micro_batch, s, z),
                |x, z| t_pp_chain_hop(c.bandwidth(), &m, msg_pp, z, x),
                &mut scratch,
            );
            let breakdown = reduce_latency_breakdown(
                cfg,
                plan,
                &compute,
                &dp_times,
                |s, z| t_tp_stage(c.bandwidth(), &m, &gpt, plan.micro_batch, s, z),
                |x, z| t_pp_chain_hop(c.bandwidth(), &m, msg_pp, z, x),
                &mut scratch,
            );
            assert_eq!(
                plain.to_bits(),
                breakdown.total_seconds.to_bits(),
                "{cfg}: breakdown diverged from the estimate"
            );
            assert!(breakdown.critical_replica < cfg.dp);
            assert!(breakdown.straggler_stage < cfg.pp);
            assert!(breakdown.t_straggler > 0.0);
            assert_eq!(breakdown.t_optimizer, OPTIMIZER_STEP_S);
        }
    }

    #[test]
    fn mapping_changes_t_pp() {
        // A homogeneous-intra cluster with one slowed inter-node link: a
        // mapping that routes the pipeline over the slow link is worse.
        let (c, _) = setup();
        let cfg = ParallelConfig::new(4, 8, 1);
        let identity = Mapping::identity(cfg, *c.topology());
        let t_id = t_pp(c.bandwidth(), &identity, 1 << 24);
        // Reorder nodes: 0,2,1,3.
        let topo: ClusterTopology = *c.topology();
        let mut assign = Vec::new();
        for node in [0usize, 2, 1, 3] {
            for r in 0..8 {
                assign.push(topo.gpu(node, r));
            }
        }
        let reordered =
            Mapping::from_assignment(cfg, assign.into_iter().map(|g| GpuId(g.0)).collect());
        let t_re = t_pp(c.bandwidth(), &reordered, 1 << 24);
        assert_ne!(t_id, t_re);
    }
}
