//! The individual communication terms of the latency model (Eqs. 5–6).

use pipette_cluster::BandwidthMatrix;
use pipette_model::{messages, GptConfig, WorkerId};
use pipette_sim::{CommModel, Mapping};

/// Eq. 5 — pipeline-parallel communication on the critical path for one
/// data replica `z`: the slowest tensor rank of each hop, summed along the
/// chain, doubled for forward+backward.
pub fn t_pp_chain(matrix: &BandwidthMatrix, mapping: &Mapping, msg_pp: u64, z: usize) -> f64 {
    let cfg = mapping.config();
    let comm = CommModel::new(matrix);
    let mut total = 0.0;
    for x in 0..cfg.pp.saturating_sub(1) {
        let mut hop: f64 = 0.0;
        for y in 0..cfg.tp {
            let a = mapping.gpu_of(WorkerId { stage: x, tensor: y, data: z });
            let b = mapping.gpu_of(WorkerId { stage: x + 1, tensor: y, data: z });
            hop = hop.max(comm.p2p(a, b, msg_pp) + comm.p2p(b, a, msg_pp));
        }
        total += hop;
    }
    total
}

/// One hop of Eq. 5's chain: the round-trip transfer time between stages
/// `x` and `x + 1` of replica `z` (slowest tensor rank).
pub fn t_pp_chain_hop(
    matrix: &BandwidthMatrix,
    mapping: &Mapping,
    msg_pp: u64,
    z: usize,
    x: usize,
) -> f64 {
    let cfg = mapping.config();
    assert!(x + 1 < cfg.pp, "hop {x} out of range");
    let comm = CommModel::new(matrix);
    let mut hop: f64 = 0.0;
    for y in 0..cfg.tp {
        let a = mapping.gpu_of(WorkerId { stage: x, tensor: y, data: z });
        let b = mapping.gpu_of(WorkerId { stage: x + 1, tensor: y, data: z });
        hop = hop.max(comm.p2p(a, b, msg_pp) + comm.p2p(b, a, msg_pp));
    }
    hop
}

/// Eq. 5's outer `max` — the slowest end-to-end pipeline over all replicas.
pub fn t_pp(matrix: &BandwidthMatrix, mapping: &Mapping, msg_pp: u64) -> f64 {
    let cfg = mapping.config();
    (0..cfg.dp)
        .map(|z| t_pp_chain(matrix, mapping, msg_pp, z))
        .fold(0.0, f64::max)
}

/// Data-parallel all-reduce time of one pipeline stage: hierarchical ring
/// over each tensor rank's replica group, the slowest rank dominating.
pub fn t_dp_stage(matrix: &BandwidthMatrix, mapping: &Mapping, gpt: &GptConfig, stage: usize) -> f64 {
    let cfg = mapping.config();
    if cfg.dp < 2 {
        return 0.0;
    }
    let comm = CommModel::new(matrix);
    let bytes = messages::dp_gradient_bytes(gpt, cfg.pp, cfg.tp, stage);
    (0..cfg.tp)
        .map(|y| comm.hierarchical_allreduce(&mapping.data_group(stage, y), bytes))
        .fold(0.0, f64::max)
}

/// Eq. 6 — data-parallel all-reduce of the *first* pipeline stage, which
/// is usually the only stage whose DP communication lies on the critical
/// path (Fig. 4): it finishes its final backward last and carries the
/// embedding gradients.
pub fn t_dp_first_stage(matrix: &BandwidthMatrix, mapping: &Mapping, gpt: &GptConfig) -> f64 {
    t_dp_stage(matrix, mapping, gpt, 0)
}

/// Tensor-parallel all-reduce time for one microbatch on stage `stage` of
/// replica `z`: four all-reduces per layer (two forward, two backward)
/// over the group's slowest link, from the profiled matrix.
pub fn t_tp_stage(
    matrix: &BandwidthMatrix,
    mapping: &Mapping,
    gpt: &GptConfig,
    micro_batch: u64,
    stage: usize,
    z: usize,
) -> f64 {
    let cfg = mapping.config();
    if cfg.tp < 2 {
        return 0.0;
    }
    let comm = CommModel::new(matrix);
    let bytes = messages::tp_allreduce_bytes(gpt, micro_batch);
    let layers = gpt.layers_of_stage(cfg.pp, stage) as f64;
    messages::TP_ALLREDUCES_PER_LAYER as f64
        * layers
        * comm.ring_allreduce(&mapping.tensor_group(stage, z), bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipette_cluster::{presets, ClusterTopology, GpuId};
    use pipette_model::ParallelConfig;

    fn setup() -> (pipette_cluster::Cluster, GptConfig) {
        (presets::mid_range(4).build(11), GptConfig::new(8, 1024, 16, 2048, 51200))
    }

    #[test]
    fn t_pp_zero_for_single_stage() {
        let (c, _) = setup();
        let cfg = ParallelConfig::new(1, 8, 4);
        let m = Mapping::identity(cfg, *c.topology());
        assert_eq!(t_pp(c.bandwidth(), &m, 1 << 20), 0.0);
    }

    #[test]
    fn t_pp_grows_with_message_size() {
        let (c, _) = setup();
        let cfg = ParallelConfig::new(4, 8, 1);
        let m = Mapping::identity(cfg, *c.topology());
        let small = t_pp(c.bandwidth(), &m, 1 << 20);
        let big = t_pp(c.bandwidth(), &m, 1 << 24);
        assert!(big > 10.0 * small);
    }

    #[test]
    fn t_pp_is_max_over_chains() {
        let (c, _) = setup();
        let cfg = ParallelConfig::new(2, 8, 2);
        let m = Mapping::identity(cfg, *c.topology());
        let full = t_pp(c.bandwidth(), &m, 1 << 22);
        let per_chain: Vec<f64> =
            (0..2).map(|z| t_pp_chain(c.bandwidth(), &m, 1 << 22, z)).collect();
        assert_eq!(full, per_chain.iter().cloned().fold(0.0, f64::max));
    }

    #[test]
    fn t_dp_zero_without_replicas() {
        let (c, gpt) = setup();
        let cfg = ParallelConfig::new(4, 8, 1);
        let m = Mapping::identity(cfg, *c.topology());
        assert_eq!(t_dp_first_stage(c.bandwidth(), &m, &gpt), 0.0);
    }

    #[test]
    fn t_dp_positive_with_replicas() {
        let (c, gpt) = setup();
        let cfg = ParallelConfig::new(2, 8, 2);
        let m = Mapping::identity(cfg, *c.topology());
        assert!(t_dp_first_stage(c.bandwidth(), &m, &gpt) > 0.0);
    }

    #[test]
    fn t_tp_zero_without_tensor_parallelism() {
        let (c, gpt) = setup();
        let cfg = ParallelConfig::new(4, 1, 8);
        let m = Mapping::identity(cfg, *c.topology());
        assert_eq!(t_tp_stage(c.bandwidth(), &m, &gpt, 2, 0, 0), 0.0);
    }

    #[test]
    fn mapping_changes_t_pp() {
        // A homogeneous-intra cluster with one slowed inter-node link: a
        // mapping that routes the pipeline over the slow link is worse.
        let (c, _) = setup();
        let cfg = ParallelConfig::new(4, 8, 1);
        let identity = Mapping::identity(cfg, *c.topology());
        let t_id = t_pp(c.bandwidth(), &identity, 1 << 24);
        // Reorder nodes: 0,2,1,3.
        let topo: ClusterTopology = *c.topology();
        let mut assign = Vec::new();
        for node in [0usize, 2, 1, 3] {
            for r in 0..8 {
                assign.push(topo.gpu(node, r));
            }
        }
        let reordered = Mapping::from_assignment(cfg, assign.into_iter().map(|g| GpuId(g.0)).collect());
        let t_re = t_pp(c.bandwidth(), &reordered, 1 << 24);
        assert_ne!(t_id, t_re);
    }
}
