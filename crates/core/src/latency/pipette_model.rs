//! Pipette's latency estimator (Eqs. 3–4).
//!
//! ```text
//! T_Pipette   = T_bubble · (n_mb / pp) + T_straggler + T_dp
//! T_bubble    = Σ_s (C_s + T_tp_s)  +  (pp − 1) · T_pp      (≈ pp·(C+T_tp) for uniform stages)
//! T_straggler = (pp − 1) · max_s (C_s + T_tp_s)
//! ```
//!
//! The `(n_mb / pp)` factor on the bubble term is the paper's key insight:
//! under the memory-efficient 1F1B schedule, the first stage cannot run
//! more than `pp` microbatches ahead, so the pipeline re-synchronizes —
//! and pays the inter-stage communication round trip — `n_mb / pp` times
//! per iteration, not once. Communication terms use the *profiled*
//! bandwidth matrix; compute terms use profiled timings.

use crate::latency::terms;
use crate::latency::terms::LatencyBreakdown;
use pipette_cluster::{BandwidthMatrix, GpuId, ProfiledBandwidth};
use pipette_model::{messages, GptConfig, MicrobatchPlan, ParallelConfig, WorkerId};
use pipette_sim::iteration::OPTIMIZER_STEP_S;
use pipette_sim::{CommModel, Mapping, ProfiledCompute};

/// The slowest inter-stage pipeline link of the critical replica — the
/// "straggler link" a cluster operator would go inspect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowLink {
    /// Sending GPU.
    pub from: GpuId,
    /// Receiving GPU.
    pub to: GpuId,
    /// Pipeline stage on the sending side (the hop is `stage → stage+1`).
    pub stage: usize,
    /// Round-trip transfer seconds over this link for one microbatch's
    /// activations + gradients.
    pub seconds: f64,
}

/// A latency estimate with its Eq. 3–6 decomposition and the identity of
/// the straggler link ([`PipetteLatencyModel::breakdown`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyExplanation {
    /// The term decomposition; `terms.total_seconds` is bit-identical to
    /// [`PipetteLatencyModel::estimate`] on the same inputs.
    pub terms: LatencyBreakdown,
    /// Slowest pipeline hop of the critical replica; `None` when `pp = 1`
    /// (no inter-stage links exist).
    pub slow_link: Option<SlowLink>,
}

/// Latency estimator bound to one profiled cluster and model.
#[derive(Debug, Clone, Copy)]
pub struct PipetteLatencyModel<'a> {
    profiled: &'a BandwidthMatrix,
    gpt: &'a GptConfig,
}

impl<'a> PipetteLatencyModel<'a> {
    /// Creates an estimator over a profiled bandwidth matrix.
    pub fn new(profiled: &'a ProfiledBandwidth, gpt: &'a GptConfig) -> Self {
        Self {
            profiled: profiled.matrix(),
            gpt,
        }
    }

    /// Creates an estimator over a raw matrix (for ablations that feed the
    /// ground-truth or nominal matrix instead of a measurement).
    pub fn from_matrix(matrix: &'a BandwidthMatrix, gpt: &'a GptConfig) -> Self {
        Self {
            profiled: matrix,
            gpt,
        }
    }

    /// The bandwidth matrix the estimator reads (for building an
    /// [`crate::mapping::IncrementalObjective`] over the same data).
    pub fn matrix(&self) -> &'a BandwidthMatrix {
        self.profiled
    }

    /// Estimated iteration latency (seconds) of `cfg` under `mapping`.
    ///
    /// `compute` must have been profiled for the same `(cfg, micro_batch)`.
    ///
    /// # Panics
    ///
    /// Panics if `compute` has a different stage count than `cfg.pp` or the
    /// mapping belongs to a different configuration.
    pub fn estimate(
        &self,
        cfg: ParallelConfig,
        mapping: &Mapping,
        plan: MicrobatchPlan,
        compute: &ProfiledCompute,
    ) -> f64 {
        debug_assert_eq!(compute.num_stages(), cfg.pp, "profiled stages mismatch");
        debug_assert_eq!(
            mapping.config(),
            cfg,
            "mapping built for another configuration"
        );
        let msg_pp = messages::pp_message_bytes(self.gpt, plan.micro_batch);

        // Per-stage data-parallel all-reduce times (mapping-dependent).
        let dp_times: Vec<f64> = (0..cfg.pp)
            .map(|s| terms::t_dp_stage(self.profiled, mapping, self.gpt, s))
            .collect();

        // Every term is recomputed from the mapping on each call; the
        // incremental objective feeds the same reduction from its caches.
        let mut stage_cost = Vec::with_capacity(cfg.pp);
        terms::reduce_latency_s(
            cfg,
            plan,
            compute,
            &dp_times,
            |s, z| terms::t_tp_stage(self.profiled, mapping, self.gpt, plan.micro_batch, s, z),
            |x, z| terms::t_pp_chain_hop(self.profiled, mapping, msg_pp, z, x),
            &mut stage_cost,
        )
    }

    /// [`Self::estimate`] with the full Eq. 3–6 decomposition and the
    /// identity of the slowest pipeline link. Costs one extra pass over
    /// the mapping's hops; the returned `terms.total_seconds` is bitwise
    /// equal to what `estimate` returns for the same inputs.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::estimate`].
    pub fn breakdown(
        &self,
        cfg: ParallelConfig,
        mapping: &Mapping,
        plan: MicrobatchPlan,
        compute: &ProfiledCompute,
    ) -> LatencyExplanation {
        debug_assert_eq!(compute.num_stages(), cfg.pp, "profiled stages mismatch");
        debug_assert_eq!(
            mapping.config(),
            cfg,
            "mapping built for another configuration"
        );
        let msg_pp = messages::pp_message_bytes(self.gpt, plan.micro_batch);
        let dp_times: Vec<f64> = (0..cfg.pp)
            .map(|s| terms::t_dp_stage(self.profiled, mapping, self.gpt, s))
            .collect();
        let mut stage_cost = Vec::with_capacity(cfg.pp);
        let terms = terms::reduce_latency_breakdown(
            cfg,
            plan,
            compute,
            &dp_times,
            |s, z| terms::t_tp_stage(self.profiled, mapping, self.gpt, plan.micro_batch, s, z),
            |x, z| terms::t_pp_chain_hop(self.profiled, mapping, msg_pp, z, x),
            &mut stage_cost,
        );
        LatencyExplanation {
            terms,
            slow_link: self.slow_link(mapping, msg_pp, terms.critical_replica),
        }
    }

    /// The slowest `(stage → stage+1)` tensor-rank link of replica `z`,
    /// measured as a forward+backward round trip of the pipeline message.
    fn slow_link(&self, mapping: &Mapping, msg_pp: u64, z: usize) -> Option<SlowLink> {
        let cfg = mapping.config();
        if cfg.pp < 2 {
            return None;
        }
        let comm = CommModel::new(self.profiled);
        let mut worst: Option<SlowLink> = None;
        for x in 0..cfg.pp - 1 {
            for y in 0..cfg.tp {
                let a = mapping.gpu_of(WorkerId {
                    stage: x,
                    tensor: y,
                    data: z,
                });
                let b = mapping.gpu_of(WorkerId {
                    stage: x + 1,
                    tensor: y,
                    data: z,
                });
                let seconds = comm.p2p(a, b, msg_pp) + comm.p2p(b, a, msg_pp);
                if worst.is_none_or(|w| seconds > w.seconds) {
                    worst = Some(SlowLink {
                        from: a,
                        to: b,
                        stage: x,
                        seconds,
                    });
                }
            }
        }
        worst
    }

    /// Latency estimate for the *interleaved* 1F1B schedule with `v`
    /// virtual stages per device — the same critical-path decomposition at
    /// chunk granularity (an extension beyond the paper; see
    /// `pipette_sim::interleaved`). Accuracy against the simulator is
    /// ~±10 % at `v = 2` and degrades to ~±20 % for deeper interleaving
    /// (the chunk-level overlap is only approximated).
    ///
    /// `compute` must be profiled at `pp · v` stage granularity
    /// ([`pipette_sim::ComputeProfiler::profile_stages`]).
    ///
    /// # Panics
    ///
    /// Panics if `v < 2`, `compute` has the wrong stage count, the mapping
    /// belongs to another configuration, or `pp` does not divide `n_mb`.
    pub fn estimate_interleaved(
        &self,
        cfg: ParallelConfig,
        mapping: &Mapping,
        plan: MicrobatchPlan,
        v: usize,
        compute: &ProfiledCompute,
    ) -> f64 {
        debug_assert!(v >= 2, "use estimate() for v = 1");
        debug_assert_eq!(
            mapping.config(),
            cfg,
            "mapping built for another configuration"
        );
        let s_total = cfg.pp * v;
        debug_assert_eq!(compute.num_stages(), s_total, "profiled stages mismatch");
        debug_assert!(
            plan.n_microbatches.is_multiple_of(cfg.pp as u64),
            "interleaving requires pp | n_mb"
        );
        let pp = cfg.pp as f64;
        let msg_pp = messages::pp_message_bytes(self.gpt, plan.micro_batch);
        let comm = pipette_sim::CommModel::new(self.profiled);
        let tp_bytes = messages::tp_allreduce_bytes(self.gpt, plan.micro_batch);

        // Per-device DP all-reduce (all chunks' gradients sync together).
        let dp_times: Vec<f64> = (0..cfg.pp)
            .map(|d| {
                if cfg.dp < 2 {
                    return 0.0;
                }
                let bytes: u64 = (0..v)
                    .map(|c| messages::dp_gradient_bytes(self.gpt, s_total, cfg.tp, c * cfg.pp + d))
                    .sum();
                (0..cfg.tp)
                    .map(|y| comm.hierarchical_allreduce(&mapping.data_group(d, y), bytes))
                    .fold(0.0, f64::max)
            })
            .collect();

        let mut worst = 0.0f64;
        for z in 0..cfg.dp {
            // Per-virtual-stage cost: profiled compute plus the device's
            // tensor-parallel all-reduces for that chunk's layers.
            let stage_cost: Vec<f64> = (0..s_total)
                .map(|s| {
                    let device = s % cfg.pp;
                    let layers = self.gpt.layers_of_stage(s_total, s) as f64;
                    let ar = comm.ring_allreduce(&mapping.tensor_group(device, z), tp_bytes);
                    compute.compute(s) + messages::TP_ALLREDUCES_PER_LAYER as f64 * layers * ar
                })
                .collect();
            // Per-device work per microbatch (all its chunks).
            let device_work: Vec<f64> = (0..cfg.pp)
                .map(|d| (0..v).map(|c| stage_cost[c * cfg.pp + d]).sum())
                .collect();
            let w_max = device_work.iter().cloned().fold(0.0, f64::max);
            let sum: f64 = stage_cost.iter().sum();

            // Chain communication: every hop between consecutive virtual
            // stages that crosses devices (including the wrap-around).
            let mut t_pp = 0.0;
            for s in 0..(s_total - 1) {
                let (da, db) = (s % cfg.pp, (s + 1) % cfg.pp);
                if da == db {
                    continue;
                }
                let mut hop: f64 = 0.0;
                for y in 0..cfg.tp {
                    let a = mapping.gpu_of(pipette_model::WorkerId {
                        stage: da,
                        tensor: y,
                        data: z,
                    });
                    let b = mapping.gpu_of(pipette_model::WorkerId {
                        stage: db,
                        tensor: y,
                        data: z,
                    });
                    hop = hop.max(comm.p2p(a, b, msg_pp) + comm.p2p(b, a, msg_pp));
                }
                t_pp += hop;
            }

            // Same decomposition as the non-interleaved model, at device
            // granularity. The interleaved warm-up lets the first device
            // run `(pp·(v+1) − 1)/v` microbatches ahead (its warm-up of
            // `2(pp−1) + (v−1)·pp` chunk-items, `v` items per microbatch),
            // so the hidden-path loop closes every `window` microbatches
            // and each closure charges whatever the full-chain round trip
            // exceeds the work that window provides.
            let window = ((pp * (v as f64 + 1.0)) - 1.0) / v as f64;
            let loops = (plan.n_microbatches as f64 / window - 1.0).max(0.0);
            let loop_excess = (sum + t_pp - window * w_max).max(0.0);
            let mean_chunk = sum / s_total as f64;
            let chain = plan.n_microbatches as f64 * w_max
                + (pp - 1.0) * mean_chunk
                + t_pp
                + loops * loop_excess;

            let mut gap = 0.0;
            let mut dp_exposed: f64 = dp_times[0];
            for d in 1..cfg.pp {
                gap += 2.0 * device_work[d - 1] / (3.0 * v as f64);
                dp_exposed = dp_exposed.max(dp_times[d] - gap);
            }
            worst = worst.max(chain + dp_exposed);
        }
        worst + OPTIMIZER_STEP_S
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipette_cluster::presets;
    use pipette_sim::{ComputeProfiler, IterationSim};

    fn setup() -> (pipette_cluster::Cluster, GptConfig) {
        (
            presets::mid_range(2).build(21),
            GptConfig::new(8, 1024, 16, 2048, 51200),
        )
    }

    fn estimate_and_truth(
        cluster: &pipette_cluster::Cluster,
        gpt: &GptConfig,
        cfg: ParallelConfig,
        micro: u64,
        mini: u64,
    ) -> (f64, f64) {
        let mapping = Mapping::identity(cfg, *cluster.topology());
        let plan = MicrobatchPlan::new(mini, micro).unwrap();
        let gpu = cluster.gpu().clone();
        let (profiled, _) = cluster.profiler().profile(cluster.bandwidth(), 3);
        let compute =
            ComputeProfiler::default().profile(cluster.bandwidth(), &gpu, gpt, cfg, plan, 4);
        let est = PipetteLatencyModel::new(&profiled, gpt).estimate(cfg, &mapping, plan, &compute);
        let truth = IterationSim::new(cluster.bandwidth(), &gpu, gpt)
            .simulate(cfg, &mapping, plan)
            .total_seconds;
        (est, truth)
    }

    #[test]
    fn estimate_tracks_simulation_within_reason() {
        let (cluster, gpt) = setup();
        for (cfg, micro) in [
            (ParallelConfig::new(2, 4, 2), 2),
            (ParallelConfig::new(4, 4, 1), 2),
            (ParallelConfig::new(2, 8, 1), 4),
            (ParallelConfig::new(1, 8, 2), 2),
        ] {
            let (est, truth) = estimate_and_truth(&cluster, &gpt, cfg, micro, 32);
            let err = (est - truth).abs() / truth;
            assert!(
                err < 0.25,
                "{cfg}: est {est:.3}s vs sim {truth:.3}s (err {err:.2})"
            );
        }
    }

    #[test]
    fn estimate_scales_with_microbatches() {
        let (cluster, gpt) = setup();
        let (e16, _) = estimate_and_truth(&cluster, &gpt, ParallelConfig::new(2, 4, 2), 2, 16);
        let (e64, _) = estimate_and_truth(&cluster, &gpt, ParallelConfig::new(2, 4, 2), 2, 64);
        assert!(e64 > 3.0 * e16);
    }

    #[test]
    fn interleaved_estimate_tracks_interleaved_simulation() {
        use pipette_sim::TrainingOptions;
        let cluster = presets::mid_range(4).build(27);
        let gpt = GptConfig::new(16, 2048, 16, 2048, 51200);
        let gpu = cluster.gpu().clone();
        let (profiled, _) = cluster.profiler().profile(cluster.bandwidth(), 3);
        let model = PipetteLatencyModel::new(&profiled, &gpt);
        for (cfg, v, micro) in [
            (ParallelConfig::new(4, 8, 1), 2usize, 1u64),
            (ParallelConfig::new(4, 4, 2), 2, 2),
            (ParallelConfig::new(2, 8, 2), 4, 1),
        ] {
            let mini = 64 / cfg.dp as u64;
            let plan = MicrobatchPlan::new(mini, micro).unwrap();
            let mapping = Mapping::identity(cfg, *cluster.topology());
            let compute = ComputeProfiler::default().profile_stages(
                cluster.bandwidth(),
                &gpu,
                &gpt,
                cfg.pp * v,
                cfg.tp,
                plan,
                9,
            );
            let est = model.estimate_interleaved(cfg, &mapping, plan, v, &compute);
            let truth = IterationSim::new(cluster.bandwidth(), &gpu, &gpt)
                .with_options(TrainingOptions::new().with_interleaving(v))
                .simulate(cfg, &mapping, plan)
                .total_seconds;
            let err = (est - truth).abs() / truth;
            let tolerance = if v <= 2 { 0.12 } else { 0.20 };
            assert!(
                err < tolerance,
                "{cfg} v={v} micro={micro}: est {est:.3} vs sim {truth:.3} ({err:.3})"
            );
        }
    }

    #[test]
    fn breakdown_matches_estimate_and_names_slow_link() {
        let (cluster, gpt) = setup();
        let gpu = cluster.gpu().clone();
        let (profiled, _) = cluster.profiler().profile(cluster.bandwidth(), 3);
        let model = PipetteLatencyModel::new(&profiled, &gpt);
        for (cfg, micro) in [
            (ParallelConfig::new(2, 4, 2), 2u64),
            (ParallelConfig::new(4, 4, 1), 2),
            (ParallelConfig::new(1, 8, 2), 4),
        ] {
            let mapping = Mapping::identity(cfg, *cluster.topology());
            let plan = MicrobatchPlan::new(32, micro).unwrap();
            let compute =
                ComputeProfiler::default().profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 4);
            let est = model.estimate(cfg, &mapping, plan, &compute);
            let ex = model.breakdown(cfg, &mapping, plan, &compute);
            assert_eq!(
                est.to_bits(),
                ex.terms.total_seconds.to_bits(),
                "{cfg}: breakdown total diverged"
            );
            if cfg.pp >= 2 {
                let link = ex.slow_link.expect("pp >= 2 has pipeline links");
                assert_ne!(link.from, link.to);
                assert!(link.seconds > 0.0);
                assert!(link.stage + 1 < cfg.pp);
            } else {
                assert_eq!(ex.slow_link, None);
            }
        }
    }

    #[test]
    fn mapping_sensitivity_matches_direction() {
        // The estimator must prefer the same mapping the simulator prefers,
        // otherwise SA would optimize the wrong thing.
        let (cluster, gpt) = setup();
        let cfg = ParallelConfig::new(2, 8, 1);
        let plan = MicrobatchPlan::new(64, 2).unwrap();
        let gpu = cluster.gpu().clone();
        let (profiled, _) = cluster.profiler().profile(cluster.bandwidth(), 3);
        let compute =
            ComputeProfiler::default().profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 4);
        let model = PipetteLatencyModel::new(&profiled, &gpt);
        let sim = IterationSim::new(cluster.bandwidth(), &gpu, &gpt);

        let identity = Mapping::identity(cfg, *cluster.topology());
        let mut rev_assign: Vec<_> = cluster.topology().gpus().collect();
        rev_assign.reverse();
        // Keep tensor ranks in ascending order within each node.
        for chunk in rev_assign.chunks_mut(8) {
            chunk.reverse();
        }
        let reversed = Mapping::from_assignment(cfg, rev_assign);

        let e_id = model.estimate(cfg, &identity, plan, &compute);
        let e_rev = model.estimate(cfg, &reversed, plan, &compute);
        let s_id = sim.simulate(cfg, &identity, plan).total_seconds;
        let s_rev = sim.simulate(cfg, &reversed, plan).total_seconds;
        // Same preference direction (or both essentially equal).
        if (s_id - s_rev).abs() / s_id > 0.01 {
            assert_eq!(
                e_id < e_rev,
                s_id < s_rev,
                "estimator disagrees with simulator"
            );
        }
    }
}
