//! Compute-time extrapolation (§V, "Optionally, we provide an extrapolated
//! latency estimation model for other cluster sizes that have not been
//! profiled, similar to our memory estimator").
//!
//! Profiling `C` for every `(configuration, microbatch)` pair costs one
//! short run each; on a shared cluster with long queues that adds up. This
//! module fits a small linear model of per-microbatch stage time from a
//! handful of profiled configurations and predicts `C` for the rest:
//!
//! ```text
//! stage_time ≈ α · (layer work) + β · (head work) + γ · layers + δ
//! ```
//!
//! where *layer work* and *head work* are the analytic FLOP terms divided
//! by the tensor ways — i.e. the model learns the GPU's effective
//! throughput and per-layer overhead from data rather than assuming specs.

use pipette_model::{flops, GptConfig, MicrobatchPlan, ParallelConfig};
use pipette_sim::ProfiledCompute;
use serde::{Deserialize, Serialize};

/// One profiled observation used to fit the extrapolator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeObservation {
    /// Work terms of one stage: `[layer_flops/tp, head_flops/tp, layers, 1]`.
    pub regressors: [f64; 4],
    /// Observed forward time of that stage (seconds).
    pub fwd_seconds: f64,
    /// Observed backward time of that stage (seconds).
    pub bwd_seconds: f64,
}

/// Least-squares-fitted compute extrapolator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputeExtrapolator {
    fwd_coeffs: [f64; 4],
    bwd_coeffs: [f64; 4],
    observations: usize,
}

fn regressors(gpt: &GptConfig, cfg: ParallelConfig, stage: usize, micro: u64) -> [f64; 4] {
    let tokens = micro * gpt.seq_len as u64;
    let layers = gpt.layers_of_stage(cfg.pp, stage) as f64;
    let layer_flops = layers * flops::layer_fwd_flops(gpt, tokens) / cfg.tp as f64;
    let head_flops = if stage == cfg.pp - 1 {
        flops::head_fwd_flops(gpt, tokens) / cfg.tp as f64
    } else {
        0.0
    };
    // Scale FLOP terms to O(1) so the normal equations stay conditioned.
    [layer_flops / 1e12, head_flops / 1e12, layers, 1.0]
}

/// Solves the 4×4 normal equations `(XᵀX) w = Xᵀy` by Gaussian elimination
/// with partial pivoting, ridge-regularized for stability.
fn least_squares(rows: &[[f64; 4]], y: &[f64]) -> [f64; 4] {
    let mut ata = [[0.0f64; 4]; 4];
    let mut aty = [0.0f64; 4];
    for (r, &target) in rows.iter().zip(y) {
        for i in 0..4 {
            for j in 0..4 {
                ata[i][j] += r[i] * r[j];
            }
            aty[i] += r[i] * target;
        }
    }
    for (i, row) in ata.iter_mut().enumerate() {
        row[i] += 1e-9; // ridge term
    }
    // Gaussian elimination.
    let mut m = [[0.0f64; 5]; 4];
    for i in 0..4 {
        m[i][..4].copy_from_slice(&ata[i]);
        m[i][4] = aty[i];
    }
    for col in 0..4 {
        let pivot = (col..4)
            .max_by(|&a, &b| m[a][col].abs().total_cmp(&m[b][col].abs()))
            .unwrap_or(col);
        m.swap(col, pivot);
        let p = m[col][col];
        if p.abs() < 1e-30 {
            continue;
        }
        for row in (col + 1)..4 {
            let f = m[row][col] / p;
            let pivot_row = m[col];
            for (cell, pivot_cell) in m[row][col..5].iter_mut().zip(&pivot_row[col..5]) {
                *cell -= f * pivot_cell;
            }
        }
    }
    let mut w = [0.0f64; 4];
    for i in (0..4).rev() {
        let mut acc = m[i][4];
        for j in (i + 1)..4 {
            acc -= m[i][j] * w[j];
        }
        w[i] = if m[i][i].abs() < 1e-30 {
            0.0
        } else {
            acc / m[i][i]
        };
    }
    w
}

impl ComputeExtrapolator {
    /// Builds observations from one profiled configuration.
    pub fn observations_from(
        gpt: &GptConfig,
        cfg: ParallelConfig,
        plan: MicrobatchPlan,
        compute: &ProfiledCompute,
    ) -> Vec<ComputeObservation> {
        (0..cfg.pp)
            .map(|s| ComputeObservation {
                regressors: regressors(gpt, cfg, s, plan.micro_batch),
                fwd_seconds: compute.fwd[s],
                bwd_seconds: compute.bwd[s],
            })
            .collect()
    }

    /// Fits the extrapolator on profiled observations.
    ///
    /// # Panics
    ///
    /// Panics if fewer than four observations are provided (the model has
    /// four coefficients).
    pub fn fit(observations: &[ComputeObservation]) -> Self {
        // pipette-lint: allow(D2) -- documented `# Panics` contract: fewer observations than coefficients is a caller bug
        assert!(
            observations.len() >= 4,
            "need at least 4 observations to fit 4 coefficients"
        );
        let rows: Vec<[f64; 4]> = observations.iter().map(|o| o.regressors).collect();
        let fwd: Vec<f64> = observations.iter().map(|o| o.fwd_seconds).collect();
        let bwd: Vec<f64> = observations.iter().map(|o| o.bwd_seconds).collect();
        Self {
            fwd_coeffs: least_squares(&rows, &fwd),
            bwd_coeffs: least_squares(&rows, &bwd),
            observations: observations.len(),
        }
    }

    /// Number of observations the model was fitted on.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Predicted forward time of one stage (seconds).
    pub fn predict_fwd(
        &self,
        gpt: &GptConfig,
        cfg: ParallelConfig,
        stage: usize,
        micro: u64,
    ) -> f64 {
        dot(&self.fwd_coeffs, &regressors(gpt, cfg, stage, micro)).max(0.0)
    }

    /// Predicted backward time of one stage (seconds).
    pub fn predict_bwd(
        &self,
        gpt: &GptConfig,
        cfg: ParallelConfig,
        stage: usize,
        micro: u64,
    ) -> f64 {
        dot(&self.bwd_coeffs, &regressors(gpt, cfg, stage, micro)).max(0.0)
    }

    /// Predicts a full [`ProfiledCompute`] substitute for an unprofiled
    /// configuration. The tensor-parallel communication terms are left at
    /// zero — the latency model recomputes them from the profiled
    /// bandwidth matrix, which *is* available for every configuration.
    pub fn predict(
        &self,
        gpt: &GptConfig,
        cfg: ParallelConfig,
        plan: MicrobatchPlan,
    ) -> ProfiledCompute {
        let fwd: Vec<f64> = (0..cfg.pp)
            .map(|s| self.predict_fwd(gpt, cfg, s, plan.micro_batch))
            .collect();
        let bwd: Vec<f64> = (0..cfg.pp)
            .map(|s| self.predict_bwd(gpt, cfg, s, plan.micro_batch))
            .collect();
        ProfiledCompute {
            fwd,
            bwd,
            tp_comm: vec![0.0; cfg.pp],
        }
    }
}

fn dot(a: &[f64; 4], b: &[f64; 4]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipette_cluster::presets;
    use pipette_sim::ComputeProfiler;

    fn fit_from_small_configs() -> (pipette_cluster::Cluster, GptConfig, ComputeExtrapolator) {
        let cluster = presets::mid_range(4).build(7);
        let gpt = GptConfig::gpt_1_1b();
        let gpu = cluster.gpu().clone();
        let profiler = ComputeProfiler::new(0.005);
        let mut obs = Vec::new();
        for (cfg, micro) in [
            (ParallelConfig::new(2, 8, 2), 1u64),
            (ParallelConfig::new(4, 8, 1), 2),
            (ParallelConfig::new(2, 4, 4), 1),
            (ParallelConfig::new(4, 4, 2), 4),
            (ParallelConfig::new(8, 4, 1), 2),
        ] {
            let plan = MicrobatchPlan::new(32, micro).unwrap();
            let compute = profiler.profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 3);
            obs.extend(ComputeExtrapolator::observations_from(
                &gpt, cfg, plan, &compute,
            ));
        }
        let model = ComputeExtrapolator::fit(&obs);
        (cluster, gpt, model)
    }

    #[test]
    fn extrapolates_unprofiled_configurations_accurately() {
        let (cluster, gpt, model) = fit_from_small_configs();
        let gpu = cluster.gpu().clone();
        let exact = ComputeProfiler::new(0.0);
        // Configurations not in the training set.
        for (cfg, micro) in [
            (ParallelConfig::new(8, 2, 2), 1u64),
            (ParallelConfig::new(2, 2, 8), 2),
            (ParallelConfig::new(4, 2, 4), 8),
        ] {
            let plan = MicrobatchPlan::new(32, micro).unwrap();
            let truth = exact.profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 1);
            for s in 0..cfg.pp {
                let pred = model.predict_fwd(&gpt, cfg, s, micro);
                let err = (pred - truth.fwd[s]).abs() / truth.fwd[s];
                assert!(
                    err < 0.08,
                    "{cfg} stage {s} micro {micro}: pred {pred} vs {} ({err:.3})",
                    truth.fwd[s]
                );
            }
        }
    }

    #[test]
    fn backward_predictions_are_twice_forward() {
        let (_, gpt, model) = fit_from_small_configs();
        let cfg = ParallelConfig::new(4, 4, 2);
        let f = model.predict_fwd(&gpt, cfg, 1, 2);
        let b = model.predict_bwd(&gpt, cfg, 1, 2);
        let ratio = b / f;
        assert!(ratio > 1.7 && ratio < 2.3, "ratio {ratio}");
    }

    #[test]
    fn predicted_compute_feeds_the_latency_model() {
        use crate::latency::PipetteLatencyModel;
        use pipette_sim::{IterationSim, Mapping};
        let (cluster, gpt, model) = fit_from_small_configs();
        let cfg = ParallelConfig::new(2, 8, 2);
        let plan = MicrobatchPlan::new(64, 2).unwrap();
        let gpu = cluster.gpu().clone();
        let (profiled, _) = cluster.profiler().profile(cluster.bandwidth(), 3);
        let mapping = Mapping::identity(cfg, *cluster.topology());
        let compute = model.predict(&gpt, cfg, plan);
        let est = PipetteLatencyModel::new(&profiled, &gpt).estimate(cfg, &mapping, plan, &compute);
        let truth = IterationSim::new(cluster.bandwidth(), &gpu, &gpt)
            .simulate(cfg, &mapping, plan)
            .total_seconds;
        let err = (est - truth).abs() / truth;
        assert!(
            err < 0.10,
            "extrapolated estimate {est:.3} vs truth {truth:.3} ({err:.3})"
        );
    }

    #[test]
    fn head_term_is_learned() {
        // The fitted head coefficient must be positive and of the same
        // order as the layer coefficient (both are seconds per TFLOP).
        let (_, gpt, model) = fit_from_small_configs();
        let cfg = ParallelConfig::new(4, 8, 2);
        let last = model.predict_fwd(&gpt, cfg, 3, 1);
        let mid = model.predict_fwd(&gpt, cfg, 1, 1);
        assert!(last > mid, "last stage carries the head: {last} vs {mid}");
    }

    #[test]
    #[should_panic(expected = "at least 4 observations")]
    fn too_few_observations_rejected() {
        ComputeExtrapolator::fit(&[ComputeObservation {
            regressors: [1.0, 0.0, 1.0, 1.0],
            fwd_seconds: 0.1,
            bwd_seconds: 0.2,
        }]);
    }
}
