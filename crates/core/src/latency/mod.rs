//! Latency models: Pipette's refined critical-path estimator (Eqs. 3–6)
//! and the prior-art model it improves on (Eq. 1, used by AMP/Varuna).
//!
//! Both consume profiled compute times; they differ in (a) the pipeline
//! critical path — Pipette charges the inter-stage communication once per
//! `pp` microbatches (the hidden critical path of the 1F1B schedule),
//! Eq. 1 charges it once per iteration — and (b) the bandwidths — Pipette
//! uses the *measured* per-link matrix, the baseline uses datasheet
//! numbers.

mod amp_model;
pub mod extrapolate;
mod pipette_model;
pub mod terms;

pub use amp_model::{AmpLatencyModel, Eq1Flavor};
pub use extrapolate::ComputeExtrapolator;
pub use pipette_model::{LatencyExplanation, PipetteLatencyModel, SlowLink};
pub use terms::LatencyBreakdown;
