//! The prior-art latency model (Eq. 1), as used by AMP.
//!
//! ```text
//! T_prev = (n_mb − 1)·(C + T_tp) + pp·(C + T_tp) + (pp − 1)·T_pp + T_dp
//! ```
//!
//! Two systematic errors, both diagnosed in §II-B/§V of the paper:
//!
//! * it models the GPipe-era schedule, charging the inter-stage
//!   communication `(pp − 1)` hops *once*, while the memory-efficient 1F1B
//!   schedule actually pays a round trip every `pp` microbatches;
//! * it uses the *document-specified* homogeneous bandwidth for every
//!   link, while attained bandwidths vary per pair.

use pipette_cluster::{BandwidthMatrix, LinkSpec};
use pipette_model::{messages, GptConfig, MicrobatchPlan, ParallelConfig};
use pipette_sim::iteration::OPTIMIZER_STEP_S;
use pipette_sim::{CommModel, Mapping, ProfiledCompute};

/// How Eq. 1's compute term `C` is interpreted.
///
/// The DATE paper writes Eq. 1 with a single scalar `C` ("the
/// computational latency to process one microbatch"), implicitly assuming
/// uniform stages — that literal reading is [`Eq1Flavor::Scalar`] and is
/// what Fig. 5a's 23.18 % MAPE measures. AMP *the system*, however, plans
/// with per-layer costs and does know that the last stage carries the LM
/// head; [`Eq1Flavor::PerStage`] models that more charitable reading and
/// is what the configurator baseline uses (otherwise AMP walks into
/// degenerate deep-pipeline configurations no real run of it picked).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Eq1Flavor {
    /// Single scalar `C` = mean per-stage cost (Eq. 1 verbatim).
    Scalar,
    /// Straggler-aware `C` = max per-stage cost.
    #[default]
    PerStage,
}

/// Eq. 1 latency model over nominal (datasheet) bandwidths.
#[derive(Debug, Clone)]
pub struct AmpLatencyModel<'a> {
    nominal: BandwidthMatrix,
    gpt: &'a GptConfig,
    flavor: Eq1Flavor,
}

impl<'a> AmpLatencyModel<'a> {
    /// Builds the model for a cluster shape with nominal link specs.
    pub fn new(
        topology: pipette_cluster::ClusterTopology,
        intra: LinkSpec,
        inter: LinkSpec,
        gpt: &'a GptConfig,
    ) -> Self {
        Self {
            nominal: BandwidthMatrix::homogeneous(topology, intra, inter),
            gpt,
            flavor: Eq1Flavor::default(),
        }
    }

    /// Selects the Eq. 1 interpretation (see [`Eq1Flavor`]).
    pub fn with_flavor(mut self, flavor: Eq1Flavor) -> Self {
        self.flavor = flavor;
        self
    }

    /// Convenience constructor taking the nominal specs from an existing
    /// matrix (uses its `intra_spec`/`inter_spec`, ignoring attained data).
    pub fn from_specs_of(matrix: &BandwidthMatrix, gpt: &'a GptConfig) -> Self {
        Self::new(
            *matrix.topology(),
            matrix.intra_spec(),
            matrix.inter_spec(),
            gpt,
        )
    }

    /// The homogeneous matrix the model believes in.
    pub fn nominal_matrix(&self) -> &BandwidthMatrix {
        &self.nominal
    }

    /// Estimated iteration latency (seconds) for `cfg`. The model is
    /// placement-unaware: it always assumes the identity mapping.
    ///
    /// # Panics
    ///
    /// Panics if `compute` has a different stage count than `cfg.pp`.
    pub fn estimate(
        &self,
        cfg: ParallelConfig,
        plan: MicrobatchPlan,
        compute: &ProfiledCompute,
    ) -> f64 {
        debug_assert_eq!(compute.num_stages(), cfg.pp, "profiled stages mismatch");
        let mapping = Mapping::identity(cfg, *self.nominal.topology());
        let comm = CommModel::new(&self.nominal);

        // Eq. 1 uses a single scalar `C + T_tp` — the per-microbatch cost
        // of "a stage", implicitly assuming uniform stages. We average the
        // profiled per-stage costs, which is exactly where the model loses
        // accuracy when the last stage carries the LM head.
        let tp_bytes = messages::tp_allreduce_bytes(self.gpt, plan.micro_batch);
        let stage_cost: Vec<f64> = (0..cfg.pp)
            .map(|s| {
                let layers = self.gpt.layers_of_stage(cfg.pp, s) as f64;
                let ar = comm.ring_allreduce(&mapping.tensor_group(s, 0), tp_bytes);
                compute.compute(s) + messages::TP_ALLREDUCES_PER_LAYER as f64 * layers * ar
            })
            .collect();
        let c_sum: f64 = stage_cost.iter().sum();
        let c_steady = match self.flavor {
            Eq1Flavor::Scalar => c_sum / cfg.pp as f64,
            Eq1Flavor::PerStage => stage_cost.iter().cloned().fold(0.0, f64::max),
        };

        // (pp - 1) single hops at nominal speed, forward + backward.
        let msg_pp = messages::pp_message_bytes(self.gpt, plan.micro_batch);
        let hop = if cfg.pp > 1 {
            let a = mapping.gpu_of(pipette_model::WorkerId {
                stage: 0,
                tensor: 0,
                data: 0,
            });
            let b = mapping.gpu_of(pipette_model::WorkerId {
                stage: 1,
                tensor: 0,
                data: 0,
            });
            comm.p2p(a, b, msg_pp) + comm.p2p(b, a, msg_pp)
        } else {
            0.0
        };
        let t_pp = (cfg.pp as f64 - 1.0) * hop;

        let t_dp = if cfg.dp > 1 {
            let bytes = messages::dp_gradient_bytes(self.gpt, cfg.pp, cfg.tp, 0);
            comm.hierarchical_allreduce(&mapping.data_group(0, 0), bytes)
        } else {
            0.0
        };

        // Eq. 1: straggler term + bubble terms + PP + DP.
        (plan.n_microbatches as f64 - 1.0) * c_steady + c_sum + t_pp + t_dp + OPTIMIZER_STEP_S
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::PipetteLatencyModel;
    use pipette_cluster::presets;
    use pipette_sim::{ComputeProfiler, IterationSim};

    fn setup() -> (pipette_cluster::Cluster, GptConfig) {
        (
            presets::mid_range(2).build(33),
            GptConfig::new(8, 1024, 16, 2048, 51200),
        )
    }

    #[test]
    fn amp_underestimates_pipeline_heavy_configs() {
        // With many stages and many microbatches, the hidden critical path
        // makes reality slower than Eq. 1 predicts.
        let (cluster, gpt) = setup();
        let cfg = ParallelConfig::new(4, 4, 1);
        let plan = MicrobatchPlan::new(64, 1).unwrap();
        let gpu = cluster.gpu().clone();
        let compute =
            ComputeProfiler::new(0.0).profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 1);
        let amp =
            AmpLatencyModel::from_specs_of(cluster.bandwidth(), &gpt).estimate(cfg, plan, &compute);
        let mapping = Mapping::identity(cfg, *cluster.topology());
        let truth = IterationSim::new(cluster.bandwidth(), &gpu, &gpt)
            .simulate(cfg, &mapping, plan)
            .total_seconds;
        assert!(
            amp < truth,
            "Eq.1 {amp:.3}s should undershoot 1F1B reality {truth:.3}s"
        );
    }

    #[test]
    fn pipette_model_is_more_accurate_than_amp() {
        // Needs enough nodes that data-parallel groups span the inter-node
        // fabric, where AMP's nominal-bandwidth assumption bites. The build
        // seed must realize at least one straggler inter-node link or the
        // nominal matrix equals reality and the comparison is vacuous.
        let cluster = presets::mid_range(4).build(3);
        let gpt = GptConfig::new(16, 2048, 16, 2048, 51200);
        let gpu = cluster.gpu().clone();
        // Average the profiled-model error over several profiling seeds so
        // the comparison reflects typical measurement noise rather than one
        // lucky or unlucky draw of the profiler's RNG stream.
        let profiles: Vec<_> = (1..=8)
            .map(|seed| cluster.profiler().profile(cluster.bandwidth(), seed).0)
            .collect();
        let mut amp_errs = Vec::new();
        let mut ppt_errs = Vec::new();
        for (cfg, micro) in [
            (ParallelConfig::new(2, 1, 16), 1u64),
            (ParallelConfig::new(2, 2, 8), 1),
            (ParallelConfig::new(4, 1, 8), 2),
            (ParallelConfig::new(2, 4, 4), 2),
            (ParallelConfig::new(4, 4, 2), 1),
            (ParallelConfig::new(8, 4, 1), 1),
        ] {
            let plan = MicrobatchPlan::new(128, micro).unwrap();
            // Exact compute profile: both models receive the same compute
            // term, so the MAPE gap isolates the communication models (the
            // subject of the comparison) instead of shared profiling noise.
            let compute =
                ComputeProfiler::new(0.0).profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 9);
            let mapping = Mapping::identity(cfg, *cluster.topology());
            let truth = IterationSim::new(cluster.bandwidth(), &gpu, &gpt)
                .simulate(cfg, &mapping, plan)
                .total_seconds;
            let amp = AmpLatencyModel::from_specs_of(cluster.bandwidth(), &gpt)
                .estimate(cfg, plan, &compute);
            amp_errs.push((amp - truth).abs() / truth);
            for profiled in &profiles {
                let ppt = PipetteLatencyModel::new(profiled, &gpt)
                    .estimate(cfg, &mapping, plan, &compute);
                ppt_errs.push((ppt - truth).abs() / truth);
            }
        }
        let amp_mape: f64 = amp_errs.iter().sum::<f64>() / amp_errs.len() as f64;
        let ppt_mape: f64 = ppt_errs.iter().sum::<f64>() / ppt_errs.len() as f64;
        assert!(
            ppt_mape < amp_mape,
            "Pipette MAPE {ppt_mape:.3} should beat AMP MAPE {amp_mape:.3}"
        );
    }

    #[test]
    fn estimate_is_positive_and_monotone_in_microbatches() {
        let (cluster, gpt) = setup();
        let cfg = ParallelConfig::new(2, 4, 2);
        let gpu = cluster.gpu().clone();
        let model = AmpLatencyModel::from_specs_of(cluster.bandwidth(), &gpt);
        let p16 = MicrobatchPlan::new(16, 1).unwrap();
        let p64 = MicrobatchPlan::new(64, 1).unwrap();
        let c16 = ComputeProfiler::new(0.0).profile(cluster.bandwidth(), &gpu, &gpt, cfg, p16, 1);
        let t16 = model.estimate(cfg, p16, &c16);
        let t64 = model.estimate(cfg, p64, &c16);
        assert!(t16 > 0.0 && t64 > t16);
    }
}
