//! Deterministic fork-join over a slice using scoped threads.
//!
//! The configurator's two expensive phases — candidate evaluation
//! (memory filter + compute profiling + identity estimate) and the
//! per-candidate annealing passes — are embarrassingly parallel: every
//! item is independent and seeded by its *index*, not by shared RNG
//! state. [`ordered_map`] exploits that with plain `std::thread::scope`
//! (no extra dependencies): workers pull items off an atomic counter,
//! tag results with their index, and the merge sorts by index — so the
//! output is the same `Vec` a sequential `map` would produce, bit for
//! bit, at any thread count.

use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `f` over `items` using up to `threads` worker threads, returning
/// results in item order. `f(i, &items[i])` must be pure with respect to
/// ordering — it may run on any thread, in any interleaving.
///
/// With `threads <= 1` or fewer than two items this runs inline on the
/// caller's thread with no synchronization at all, so `threads == 1` is
/// exactly the sequential code path, not a one-worker pool.
///
/// # Panics
///
/// Re-raises the first observed panic from `f`.
pub fn ordered_map<I, R, F>(threads: usize, items: &[I], f: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(usize, &I) -> R + Sync,
{
    if threads <= 1 || items.len() < 2 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let workers = threads.min(items.len());
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        let mut all = Vec::with_capacity(items.len());
        for h in handles {
            match h.join() {
                Ok(part) => all.extend(part),
                Err(payload) => panic::resume_unwind(payload),
            }
        }
        all
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// [`ordered_map`] with a per-worker scratch value — the *candidate ring*
/// of the parallel evaluator. `init()` builds one scratch per worker
/// (once, at fork time) and `f(scratch, i, &items[i])` reuses it for every
/// item that worker pulls, so per-candidate buffers (mappings, objective
/// state) are recycled instead of reallocated per item.
///
/// Determinism contract: `f` must leave no *observable* state in the
/// scratch — each call must reset whatever it reads — because which items
/// share a scratch depends on thread count and scheduling. Under that
/// contract the output is bit-identical to the sequential path at any
/// thread count (tested in `tests/incremental_objective.rs`).
///
/// # Panics
///
/// Re-raises the first observed panic from `init` or `f`.
pub fn ordered_map_scratch<I, R, S, F, N>(threads: usize, items: &[I], init: N, f: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    N: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &I) -> R + Sync,
{
    if threads <= 1 || items.len() < 2 {
        let mut scratch = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(&mut scratch, i, item))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let workers = threads.min(items.len());
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut scratch = init();
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(&mut scratch, i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        let mut all = Vec::with_capacity(items.len());
        for h in handles {
            match h.join() {
                Ok(part) => all.extend(part),
                Err(payload) => panic::resume_unwind(payload),
            }
        }
        all
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// The default worker count: every available core, falling back to 1 when
/// the platform cannot report parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order_at_any_thread_count() {
        let items: Vec<usize> = (0..97).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64, 200] {
            let got = ordered_map(threads, &items, |_, &x| x * x);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn passes_the_item_index() {
        let items = ["a", "b", "c", "d"];
        let got = ordered_map(4, &items, |i, s| format!("{i}:{s}"));
        assert_eq!(got, ["0:a", "1:b", "2:c", "3:d"]);
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(ordered_map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(ordered_map(8, &[5u32], |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn zero_threads_degrades_to_sequential() {
        assert_eq!(ordered_map(0, &[1u32, 2, 3], |_, &x| x), vec![1, 2, 3]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        assert_eq!(ordered_map(32, &[1u32, 2], |_, &x| x * 10), vec![10, 20]);
    }

    #[test]
    fn propagates_panics() {
        let result = panic::catch_unwind(|| {
            ordered_map(4, &[0u32, 1, 2, 3, 4, 5, 6, 7], |_, &x| {
                assert_ne!(x, 5, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn scratch_map_matches_plain_map_at_any_thread_count() {
        let items: Vec<usize> = (0..53).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [0, 1, 2, 7, 64] {
            // Scratch is a reusable buffer; each call fully overwrites the
            // part it reads, as the determinism contract requires.
            let got = ordered_map_scratch(
                threads,
                &items,
                || vec![0usize; 1],
                |scratch, _, &x| {
                    scratch[0] = x * 3 + 1;
                    scratch[0]
                },
            );
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn scratch_is_built_once_per_worker_not_per_item() {
        use std::sync::atomic::AtomicUsize;
        let builds = AtomicUsize::new(0);
        let items: Vec<u32> = (0..40).collect();
        let threads = 4;
        let _ = ordered_map_scratch(
            threads,
            &items,
            || builds.fetch_add(1, Ordering::Relaxed),
            |_, _, &x| x,
        );
        let built = builds.load(Ordering::Relaxed);
        assert!(
            built <= threads && built >= 1,
            "{built} scratches for {threads} workers"
        );
    }

    #[test]
    fn scratch_map_propagates_panics() {
        let result = panic::catch_unwind(|| {
            ordered_map_scratch(
                4,
                &[0u32, 1, 2, 3, 4, 5, 6, 7],
                || (),
                |_, _, &x| {
                    assert_ne!(x, 5, "boom");
                    x
                },
            )
        });
        assert!(result.is_err());
    }
}
