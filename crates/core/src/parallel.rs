//! Deterministic fork-join over a slice using scoped threads.
//!
//! The configurator's two expensive phases — candidate evaluation
//! (memory filter + compute profiling + identity estimate) and the
//! per-candidate annealing passes — are embarrassingly parallel: every
//! item is independent and seeded by its *index*, not by shared RNG
//! state. [`ordered_map`] exploits that with plain `std::thread::scope`
//! (no extra dependencies): workers pull items off an atomic counter,
//! tag results with their index, and the merge sorts by index — so the
//! output is the same `Vec` a sequential `map` would produce, bit for
//! bit, at any thread count.

use std::any::Any;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex, MutexGuard, PoisonError};

/// Per-worker result-buffer capacity for the counter-based pools below:
/// the balanced share of the items. Workers pull from a shared counter,
/// so a worker that never stalls can exceed its share (the `Vec` then
/// grows normally); in the steady state every worker lands within one
/// item of this bound.
fn per_worker_capacity(items: usize, workers: usize) -> usize {
    items.div_ceil(workers.max(1))
}

/// Maps `f` over `items` using up to `threads` worker threads, returning
/// results in item order. `f(i, &items[i])` must be pure with respect to
/// ordering — it may run on any thread, in any interleaving.
///
/// With `threads <= 1` or fewer than two items this runs inline on the
/// caller's thread with no synchronization at all, so `threads == 1` is
/// exactly the sequential code path, not a one-worker pool.
///
/// # Panics
///
/// Re-raises the first observed panic from `f`.
pub fn ordered_map<I, R, F>(threads: usize, items: &[I], f: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(usize, &I) -> R + Sync,
{
    if threads <= 1 || items.len() < 2 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let workers = threads.min(items.len());
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::with_capacity(per_worker_capacity(items.len(), workers));
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        let mut all = Vec::with_capacity(items.len());
        for h in handles {
            match h.join() {
                Ok(part) => all.extend(part),
                Err(payload) => panic::resume_unwind(payload),
            }
        }
        all
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// [`ordered_map`] with a per-worker scratch value — the *candidate ring*
/// of the parallel evaluator. `init()` builds one scratch per worker
/// (once, at fork time) and `f(scratch, i, &items[i])` reuses it for every
/// item that worker pulls, so per-candidate buffers (mappings, objective
/// state) are recycled instead of reallocated per item.
///
/// Determinism contract: `f` must leave no *observable* state in the
/// scratch — each call must reset whatever it reads — because which items
/// share a scratch depends on thread count and scheduling. Under that
/// contract the output is bit-identical to the sequential path at any
/// thread count (tested in `tests/incremental_objective.rs`).
///
/// # Panics
///
/// Re-raises the first observed panic from `init` or `f`.
pub fn ordered_map_scratch<I, R, S, F, N>(threads: usize, items: &[I], init: N, f: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    N: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &I) -> R + Sync,
{
    if threads <= 1 || items.len() < 2 {
        let mut scratch = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(&mut scratch, i, item))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let workers = threads.min(items.len());
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut scratch = init();
                    let mut out = Vec::with_capacity(per_worker_capacity(items.len(), workers));
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(&mut scratch, i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        let mut all = Vec::with_capacity(items.len());
        for h in handles {
            match h.join() {
                Ok(part) => all.extend(part),
                Err(payload) => panic::resume_unwind(payload),
            }
        }
        all
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Round-based fork-join over a set of persistent states — the engine of
/// the parallel-tempering annealer.
///
/// Unlike [`ordered_map_scratch`]'s counter-based work stealing, every
/// worker here *owns a fixed subset* of the states (worker `w` owns
/// indices `w, w + W, w + 2W, …`): state `i` is stepped by the same
/// worker every round, and rounds are separated by a barrier. Between
/// rounds the coordinating thread gets exclusive access to all states and
/// runs `exchange(round, &mut refs)` — this is where tempering swaps
/// states by index. `exchange` returns `false` to stop the run early.
///
/// Determinism contract: `step(i, round, &mut states[i])` may depend only
/// on its own state (plus immutable captures), and `exchange` must be a
/// deterministic function of the states — under that contract the final
/// states are bit-identical at any thread count, because with
/// `threads <= 1` (or a single state) the rounds execute sequentially in
/// index order and the barrier schedule makes the parallel execution
/// observationally identical to that sequential one.
///
/// # Panics
///
/// Re-raises the first observed panic from `step` or `exchange` (workers
/// rendezvous normally first, so a panicking round never deadlocks the
/// barrier).
pub fn barrier_rounds<S, F, X>(
    threads: usize,
    states: &mut [S],
    rounds: usize,
    step: F,
    exchange: X,
) where
    S: Send,
    F: Fn(usize, usize, &mut S) + Sync,
    X: FnMut(usize, &mut [&mut S]) -> bool,
{
    let mut exchange = exchange;
    if states.is_empty() || rounds == 0 {
        return;
    }
    if threads <= 1 || states.len() < 2 {
        let mut refs: Vec<&mut S> = states.iter_mut().collect();
        for round in 0..rounds {
            for (i, s) in refs.iter_mut().enumerate() {
                step(i, round, s);
            }
            if !exchange(round, &mut refs) {
                return;
            }
        }
        return;
    }

    let workers = threads.min(states.len());
    // Two waits per round: A (all steps done, coordinator may touch the
    // states) and B (exchange done, workers may start the next round).
    let barrier = Barrier::new(workers + 1);
    // Exit protocol: workers only ever *flag* trouble (`failed`, written
    // while stepping, before their A-wait); the exit decision (`quit`) is
    // written exclusively by the coordinator inside its A→B window, when
    // every worker is parked at B. Workers read `quit` right after B,
    // where it is frozen until the next A completes — which cannot happen
    // before every worker has done that read. A single shared flag
    // checked after B is racy: a fast worker can panic early in round
    // r + 1 and raise the flag while a slow worker is still between B(r)
    // and its own check, so the two disagree about which round to exit at
    // and the stragglers deadlock on the barrier.
    let failed = AtomicBool::new(false);
    let quit = AtomicBool::new(false);
    let failure: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    let record_failure = |payload: Box<dyn Any + Send>| {
        let mut slot = failure.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(payload);
        }
        failed.store(true, Ordering::Release);
    };
    // Workers step disjoint states, but the borrow checker cannot see the
    // stride partition — each state sits behind its own mutex. Locks are
    // uncontended by construction (owner-only during rounds, coordinator-
    // only between barriers), so this costs one atomic per state per
    // round, amortized over `exchange_interval` SA iterations.
    let cells: Vec<Mutex<&mut S>> = states.iter_mut().map(Mutex::new).collect();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let barrier = &barrier;
            let quit = &quit;
            let record_failure = &record_failure;
            let cells = &cells;
            let step = &step;
            scope.spawn(move || {
                for round in 0..rounds {
                    let result = panic::catch_unwind(AssertUnwindSafe(|| {
                        let mut i = w;
                        while i < cells.len() {
                            let mut guard = cells[i].lock().unwrap_or_else(PoisonError::into_inner);
                            step(i, round, &mut guard);
                            i += workers;
                        }
                    }));
                    if let Err(payload) = result {
                        record_failure(payload);
                    }
                    barrier.wait(); // A: this round's steps are done.
                    barrier.wait(); // B: the coordinator's exchange is done.
                    if quit.load(Ordering::Acquire) {
                        return;
                    }
                }
            });
        }

        for round in 0..rounds {
            barrier.wait(); // A
                            // Exclusive window: all workers are parked at B, so every
                            // failure flagged up to this round is visible and no new one
                            // can appear until after the quit decision below is read.
            if failed.load(Ordering::Acquire) {
                quit.store(true, Ordering::Release);
            } else {
                let result = panic::catch_unwind(AssertUnwindSafe(|| {
                    let mut guards: Vec<MutexGuard<&mut S>> = cells
                        .iter()
                        .map(|c| c.lock().unwrap_or_else(PoisonError::into_inner))
                        .collect();
                    let mut refs: Vec<&mut S> = guards.iter_mut().map(|g| &mut ***g).collect();
                    exchange(round, &mut refs)
                }));
                match result {
                    Ok(true) => {}
                    Ok(false) => quit.store(true, Ordering::Release),
                    Err(payload) => {
                        record_failure(payload);
                        quit.store(true, Ordering::Release);
                    }
                }
            }
            barrier.wait(); // B
            if quit.load(Ordering::Acquire) {
                break;
            }
        }
    });

    if let Some(payload) = failure.into_inner().unwrap_or_else(PoisonError::into_inner) {
        panic::resume_unwind(payload);
    }
}

/// The default worker count: every available core, falling back to 1 when
/// the platform cannot report parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order_at_any_thread_count() {
        let items: Vec<usize> = (0..97).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64, 200] {
            let got = ordered_map(threads, &items, |_, &x| x * x);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn passes_the_item_index() {
        let items = ["a", "b", "c", "d"];
        let got = ordered_map(4, &items, |i, s| format!("{i}:{s}"));
        assert_eq!(got, ["0:a", "1:b", "2:c", "3:d"]);
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(ordered_map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(ordered_map(8, &[5u32], |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn zero_threads_degrades_to_sequential() {
        assert_eq!(ordered_map(0, &[1u32, 2, 3], |_, &x| x), vec![1, 2, 3]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        assert_eq!(ordered_map(32, &[1u32, 2], |_, &x| x * 10), vec![10, 20]);
    }

    #[test]
    fn propagates_panics() {
        let result = panic::catch_unwind(|| {
            ordered_map(4, &[0u32, 1, 2, 3, 4, 5, 6, 7], |_, &x| {
                assert_ne!(x, 5, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn scratch_map_matches_plain_map_at_any_thread_count() {
        let items: Vec<usize> = (0..53).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [0, 1, 2, 7, 64] {
            // Scratch is a reusable buffer; each call fully overwrites the
            // part it reads, as the determinism contract requires.
            let got = ordered_map_scratch(
                threads,
                &items,
                || vec![0usize; 1],
                |scratch, _, &x| {
                    scratch[0] = x * 3 + 1;
                    scratch[0]
                },
            );
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn scratch_is_built_once_per_worker_not_per_item() {
        use std::sync::atomic::AtomicUsize;
        let builds = AtomicUsize::new(0);
        let items: Vec<u32> = (0..40).collect();
        let threads = 4;
        let _ = ordered_map_scratch(
            threads,
            &items,
            || builds.fetch_add(1, Ordering::Relaxed),
            |_, _, &x| x,
        );
        let built = builds.load(Ordering::Relaxed);
        assert!(
            built <= threads && built >= 1,
            "{built} scratches for {threads} workers"
        );
    }

    /// Deterministic reference model for the barrier tests: state `i`
    /// accumulates a mix of its index and the round, and the exchange
    /// swaps adjacent pairs (alternating parity) whenever the lower slot
    /// holds the larger value — a miniature tempering pass.
    fn barrier_reference(states: usize, rounds: usize, threads: usize) -> Vec<u64> {
        let mut v: Vec<u64> = (0..states as u64).collect();
        barrier_rounds(
            threads,
            &mut v,
            rounds,
            |i, round, s| {
                *s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(((i as u64) << 32) | round as u64);
            },
            |round, refs| {
                let mut lo = round % 2;
                while lo + 1 < refs.len() {
                    if *refs[lo] > *refs[lo + 1] {
                        let (a, b) = refs.split_at_mut(lo + 1);
                        std::mem::swap(a[lo], b[0]);
                    }
                    lo += 2;
                }
                true
            },
        );
        v
    }

    #[test]
    fn barrier_rounds_is_identical_at_any_thread_count() {
        for (states, rounds) in [(1, 5), (2, 3), (5, 9), (8, 17), (13, 4)] {
            let expected = barrier_reference(states, rounds, 1);
            for threads in [1, 2, 3, 8, 64, 200] {
                let got = barrier_reference(states, rounds, threads);
                assert_eq!(
                    got, expected,
                    "states = {states}, rounds = {rounds}, threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn barrier_rounds_steps_every_state_every_round() {
        let rounds = 7;
        let mut v = vec![0usize; 6];
        barrier_rounds(4, &mut v, rounds, |_, _, s| *s += 1, |_, _| true);
        assert!(v.iter().all(|&c| c == rounds), "{v:?}");
    }

    #[test]
    fn barrier_rounds_exchange_false_stops_early() {
        for threads in [1, 4] {
            let mut v = vec![0usize; 5];
            barrier_rounds(
                threads,
                &mut v,
                100,
                |_, _, s| *s += 1,
                |round, _| round < 2,
            );
            // Rounds 0, 1, 2 ran; the exchange after round 2 stopped the run.
            assert!(v.iter().all(|&c| c == 3), "threads = {threads}: {v:?}");
        }
    }

    #[test]
    fn barrier_rounds_handles_empty_and_zero_rounds() {
        let mut empty: Vec<u32> = Vec::new();
        barrier_rounds(4, &mut empty, 10, |_, _, _| {}, |_, _| true);
        let mut v = vec![1u32, 2];
        barrier_rounds(4, &mut v, 0, |_, _, s| *s += 1, |_, _| true);
        assert_eq!(v, [1, 2]);
    }

    #[test]
    fn barrier_rounds_propagates_step_panics() {
        for threads in [1, 4] {
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                let mut v = vec![0usize; 8];
                barrier_rounds(
                    threads,
                    &mut v,
                    4,
                    |i, round, _| {
                        assert!(!(i == 5 && round == 2), "boom");
                    },
                    |_, _| true,
                );
            }));
            assert!(result.is_err(), "threads = {threads}");
        }
    }

    #[test]
    fn barrier_rounds_propagates_exchange_panics() {
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            let mut v = vec![0usize; 8];
            barrier_rounds(
                4,
                &mut v,
                4,
                |_, _, s| *s += 1,
                |round, _| {
                    assert_ne!(round, 1, "boom");
                    true
                },
            );
        }));
        assert!(result.is_err());
    }

    #[test]
    fn scratch_map_propagates_panics() {
        let result = panic::catch_unwind(|| {
            ordered_map_scratch(
                4,
                &[0u32, 1, 2, 3, 4, 5, 6, 7],
                || (),
                |_, _, &x| {
                    assert_ne!(x, 5, "boom");
                    x
                },
            )
        });
        assert!(result.is_err());
    }
}
