//! Pipette's learned memory estimator (§VI, Eq. 7).
//!
//! An MLP maps the ten configuration features to peak memory. Rather than
//! regressing raw bytes, the network predicts the *log-residual over the
//! analytic prior* — `ln(actual / analytic)` — i.e. the multiplicative
//! correction for everything the naive model misses (1F1B in-flight
//! activations, framework and communicator overheads, fragmentation).
//! The correction is a smooth, bounded function of the features, which is
//! what lets a network trained on ≤ 4-node profiles extrapolate to the
//! full cluster: Eq. 7's raw features are log-collinear
//! (`dp = n_gpus / (pp·tp)`), so direct regression extrapolates along an
//! unidentifiable direction, while the residual barely depends on the
//! collinear axes at all. A *soft margin* inflates predictions before
//! comparing against the GPU capacity so that borderline configurations
//! are rejected — the paper's mechanism for "stably recommending runnable
//! configurations".

use crate::memory::analytic::AnalyticMemoryEstimator;
use crate::memory::dataset::MemorySample;
use pipette_mlp::{Matrix, Mlp, StandardScaler, TrainConfig};
use pipette_model::{GptConfig, MicrobatchPlan, ParallelConfig};
use serde::{Deserialize, Serialize};

/// Training/behaviour knobs for the estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryEstimatorConfig {
    /// MLP training protocol.
    pub train: TrainConfig,
    /// Hidden width of the MLP (the paper uses five layers × 200).
    pub hidden: usize,
    /// Number of hidden layers.
    pub depth: usize,
    /// Safety margin applied to predictions in [`MemoryEstimator::is_runnable`].
    pub soft_margin: f64,
    /// Weight-init / shuffling seed.
    pub seed: u64,
}

impl Default for MemoryEstimatorConfig {
    fn default() -> Self {
        Self {
            train: TrainConfig {
                iterations: 12_000,
                learning_rate: 1.5e-3,
                batch_size: 128,
                record_every: 500,
                seed: 0,
            },
            hidden: 96,
            depth: 3,
            soft_margin: 0.08,
            seed: 0,
        }
    }
}

impl MemoryEstimatorConfig {
    /// The paper's protocol: five layers of 200 hidden units, 50,000
    /// iterations.
    pub fn paper() -> Self {
        Self {
            train: TrainConfig::paper(),
            hidden: 200,
            depth: 4,
            ..Self::default()
        }
    }
}

/// How the estimator's MLP training went — kept on the trained estimator
/// (and in its cache entries) so a warm run can still report the loss
/// curve of the training that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainSummary {
    /// Profiled samples in the training corpus.
    pub samples: usize,
    /// Adam iterations taken.
    pub iterations: usize,
    /// Cadence of [`Self::loss_curve`] (one point per `record_every`
    /// iterations).
    pub record_every: usize,
    /// Minibatch loss of the final step.
    pub final_loss: f64,
    /// Sampled loss curve.
    pub loss_curve: Vec<f64>,
}

/// The trained estimator.
///
/// ```
/// use pipette::memory::{collect_samples, MemoryEstimator, MemoryEstimatorConfig, SampleSpec};
/// use pipette_model::GptConfig;
/// use pipette_sim::MemorySim;
///
/// let spec = SampleSpec {
///     gpu_counts: vec![8],
///     gpus_per_node: 8,
///     models: vec![GptConfig::new(8, 1024, 16, 2048, 51200)],
///     global_batches: vec![32],
///     max_micro: 2,
/// };
/// let samples = collect_samples(&spec, &MemorySim::new(1));
/// let mut config = MemoryEstimatorConfig::default();
/// config.train.iterations = 400; // keep the example quick
/// let estimator = MemoryEstimator::train(&samples, &config);
/// let predicted = estimator.predict_bytes(&samples[0].features);
/// assert!(predicted > 1 << 30); // more than a GiB — overheads included
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryEstimator {
    mlp: Mlp,
    x_scaler: StandardScaler,
    y_mean: f64,
    y_std: f64,
    soft_margin: f64,
    /// Sequence length of the profiled models (needed to rebuild the
    /// analytic prior at prediction time; uniform across the paper's
    /// experiments).
    seq_len: usize,
    /// Vocabulary size of the profiled models.
    vocab: usize,
    /// Telemetry of the training run that produced this estimator.
    train_summary: TrainSummary,
}

fn log_features(features: &[f64; 10]) -> Vec<f64> {
    features.iter().map(|&f| f.max(1.0).ln()).collect()
}

/// Why memory-estimator training cannot produce a trustworthy network.
///
/// Under cluster faults the profiling sweep can lose most of its samples
/// (crashed profiling jobs) or return a collapsed target distribution
/// (every surviving sample identical). Training an MLP on such a corpus
/// silently yields garbage; [`MemoryEstimator::train_checked`] detects
/// both so the caller can fall back to the analytic model instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EstimatorDegeneracy {
    /// The corpus is too small to fit the ten-feature MLP.
    TooFewSamples {
        /// Samples that survived.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// The log-residual targets have (near-)zero variance; the network
    /// would learn a constant and extrapolate it everywhere.
    CollapsedTargets {
        /// Standard deviation of the residual targets.
        y_std: f64,
    },
}

impl std::fmt::Display for EstimatorDegeneracy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EstimatorDegeneracy::TooFewSamples { got, need } => {
                write!(f, "only {got} profiled samples survived (need {need})")
            }
            EstimatorDegeneracy::CollapsedTargets { y_std } => {
                write!(f, "memory targets collapsed (residual std {y_std:e})")
            }
        }
    }
}

impl std::error::Error for EstimatorDegeneracy {}

/// The analytic prior for a feature vector: rebuild the model and
/// configuration Eq. 7's features describe and run the baseline \[20\]
/// estimate on them. Also the fallback estimate when MLP training
/// degenerates (see [`EstimatorDegeneracy`]).
pub(crate) fn analytic_prior(features: &[f64; 10], seq_len: usize, vocab: usize) -> f64 {
    let gpt = GptConfig::new(
        features[1] as usize,
        features[2] as usize,
        features[3] as usize,
        seq_len,
        vocab,
    );
    let cfg = ParallelConfig::new(
        features[5] as usize,
        features[4] as usize,
        features[6] as usize,
    );
    let Ok(plan) = MicrobatchPlan::new(features[8] as u64, features[7] as u64) else {
        // Feature vectors come from features_for, whose plans are valid
        // by construction; a degenerate vector degrades to the 1-byte floor.
        return 1.0;
    };
    AnalyticMemoryEstimator::new()
        .estimate_bytes(&gpt, cfg, plan)
        .max(1) as f64
}

impl MemoryEstimator {
    /// Trains the estimator on profiled samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn train(samples: &[MemorySample], config: &MemoryEstimatorConfig) -> Self {
        Self::train_with_threads(samples, config, 1)
    }

    /// [`Self::train`] with the MLP's forward matmuls split over up to
    /// `threads` row blocks. Bit-identical at any thread count (rows are
    /// independent; see `pipette_mlp::Mlp::fit_with_threads`).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn train_with_threads(
        samples: &[MemorySample],
        config: &MemoryEstimatorConfig,
        threads: usize,
    ) -> Self {
        debug_assert!(!samples.is_empty(), "need at least one training sample");
        let seq_len = samples[0].seq_len;
        let vocab = samples[0].vocab;
        debug_assert!(
            samples
                .iter()
                .all(|s| s.seq_len == seq_len && s.vocab == vocab),
            "profiled samples must share sequence length and vocabulary"
        );
        let rows: Vec<Vec<f64>> = samples.iter().map(|s| log_features(&s.features)).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x_raw = Matrix::from_rows(&refs);
        let x_scaler = StandardScaler::fit(&x_raw);
        let x = x_scaler.transform(&x_raw);

        let y_log: Vec<f64> = samples
            .iter()
            .map(|s| {
                (s.peak_bytes as f64 / analytic_prior(&s.features, seq_len, vocab))
                    .max(1e-6)
                    .ln()
            })
            .collect();
        let n = y_log.len() as f64;
        let y_mean = y_log.iter().sum::<f64>() / n;
        let y_std = {
            let var = y_log.iter().map(|v| (v - y_mean).powi(2)).sum::<f64>() / n;
            var.sqrt().max(1e-9)
        };
        let y_data: Vec<f64> = y_log.iter().map(|v| (v - y_mean) / y_std).collect();
        let y = Matrix::from_vec(y_data.len(), 1, y_data);

        let mut widths = vec![10usize];
        widths.extend(std::iter::repeat_n(config.hidden, config.depth));
        widths.push(1);
        let mut mlp = Mlp::new(&widths, config.seed);
        let report = mlp.fit_with_threads(&x, &y, &config.train, threads);

        Self {
            mlp,
            x_scaler,
            y_mean,
            y_std,
            soft_margin: config.soft_margin,
            seq_len,
            vocab,
            train_summary: TrainSummary {
                samples: samples.len(),
                iterations: report.iterations,
                record_every: config.train.record_every,
                final_loss: report.final_loss,
                loss_curve: report.loss_curve,
            },
        }
    }

    /// Fallible variant of [`Self::train_with_threads`] for corpora that
    /// may have degenerated under cluster faults: checks the sample count
    /// and target variance *before* spending the training iterations.
    ///
    /// On a healthy corpus the returned estimator is bit-identical to
    /// [`Self::train_with_threads`].
    ///
    /// # Errors
    ///
    /// [`EstimatorDegeneracy`] when the corpus cannot support training;
    /// the caller should fall back to the analytic memory model.
    ///
    /// # Panics
    ///
    /// Panics if non-empty `samples` mix sequence lengths or vocabularies
    /// (a profiling-pipeline bug, not a runtime fault).
    pub fn train_checked(
        samples: &[MemorySample],
        config: &MemoryEstimatorConfig,
        threads: usize,
    ) -> Result<Self, EstimatorDegeneracy> {
        const MIN_SAMPLES: usize = 8;
        if samples.len() < MIN_SAMPLES {
            return Err(EstimatorDegeneracy::TooFewSamples {
                got: samples.len(),
                need: MIN_SAMPLES,
            });
        }
        let seq_len = samples[0].seq_len;
        let vocab = samples[0].vocab;
        let y_log: Vec<f64> = samples
            .iter()
            .map(|s| {
                (s.peak_bytes as f64 / analytic_prior(&s.features, seq_len, vocab))
                    .max(1e-6)
                    .ln()
            })
            .collect();
        let n = y_log.len() as f64;
        let y_mean = y_log.iter().sum::<f64>() / n;
        let var = y_log.iter().map(|v| (v - y_mean).powi(2)).sum::<f64>() / n;
        let y_std = var.sqrt();
        if !(y_std.is_finite() && y_std >= 1e-12) {
            return Err(EstimatorDegeneracy::CollapsedTargets { y_std });
        }
        Ok(Self::train_with_threads(samples, config, threads))
    }

    /// Telemetry of the training run that produced this estimator (also
    /// available on cache-loaded instances).
    pub fn train_summary(&self) -> &TrainSummary {
        &self.train_summary
    }

    /// The soft margin in use.
    pub fn soft_margin(&self) -> f64 {
        self.soft_margin
    }

    /// Every field of the estimator, for the binary cache-index writer
    /// (`memory::mmap_index`). Order: network, feature scaler,
    /// `(y_mean, y_std, soft_margin)`, `(seq_len, vocab)`, train summary.
    #[allow(clippy::type_complexity)]
    pub(crate) fn index_parts(
        &self,
    ) -> (
        &Mlp,
        &StandardScaler,
        (f64, f64, f64),
        (usize, usize),
        &TrainSummary,
    ) {
        (
            &self.mlp,
            &self.x_scaler,
            (self.y_mean, self.y_std, self.soft_margin),
            (self.seq_len, self.vocab),
            &self.train_summary,
        )
    }

    /// Reassembles an estimator from the parts [`Self::index_parts`]
    /// persists. Inverse of `index_parts` by construction.
    pub(crate) fn from_index_parts(
        mlp: Mlp,
        x_scaler: StandardScaler,
        (y_mean, y_std, soft_margin): (f64, f64, f64),
        (seq_len, vocab): (usize, usize),
        train_summary: TrainSummary,
    ) -> Self {
        Self {
            mlp,
            x_scaler,
            y_mean,
            y_std,
            soft_margin,
            seq_len,
            vocab,
            train_summary,
        }
    }

    /// Overrides the soft margin (for the ablation sweep).
    pub fn with_soft_margin(mut self, margin: f64) -> Self {
        self.soft_margin = margin;
        self
    }

    /// Predicted peak memory in bytes for Eq. 7's feature vector.
    pub fn predict_bytes(&self, features: &[f64; 10]) -> u64 {
        let row = log_features(features);
        let x = self
            .x_scaler
            .transform(&Matrix::from_rows(&[row.as_slice()]));
        let out = self.mlp.predict(&x).get(0, 0);
        let correction = (out * self.y_std + self.y_mean).exp();
        (analytic_prior(features, self.seq_len, self.vocab) * correction.max(0.0)) as u64
    }

    /// Predicted peak memory for a whole candidate set in **one** forward
    /// pass through the MLP (the batched screen Algorithm 1 uses).
    ///
    /// Every network layer is row-independent (matmul, bias broadcast,
    /// elementwise ReLU), so stacking the candidates into one matrix
    /// changes nothing about the arithmetic of any single row: the result
    /// is bit-identical to calling [`Self::predict_bytes`] per candidate
    /// (property-tested in `tests/estimator_cache.rs`), at any `threads`.
    pub fn predict_bytes_batch(&self, features: &[[f64; 10]], threads: usize) -> Vec<u64> {
        if features.is_empty() {
            return Vec::new();
        }
        let rows: Vec<Vec<f64>> = features.iter().map(log_features).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = self.x_scaler.transform(&Matrix::from_rows(&refs));
        let out = self.mlp.predict_with_threads(&x, threads);
        features
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let correction = (out.get(i, 0) * self.y_std + self.y_mean).exp();
                (analytic_prior(f, self.seq_len, self.vocab) * correction.max(0.0)) as u64
            })
            .collect()
    }

    /// Whether a configuration is considered runnable under `limit_bytes`
    /// per GPU, applying the soft margin.
    pub fn is_runnable(&self, features: &[f64; 10], limit_bytes: u64) -> bool {
        let predicted = self.predict_bytes(features) as f64;
        predicted * (1.0 + self.soft_margin) <= limit_bytes as f64
    }

    /// Batched [`Self::is_runnable`]: one forward pass over all
    /// candidates, same soft margin, same accepted/rejected set as the
    /// one-row-at-a-time screen.
    pub fn is_runnable_batch(
        &self,
        features: &[[f64; 10]],
        limit_bytes: u64,
        threads: usize,
    ) -> Vec<bool> {
        self.predict_bytes_batch(features, threads)
            .into_iter()
            .map(|p| p as f64 * (1.0 + self.soft_margin) <= limit_bytes as f64)
            .collect()
    }

    /// Mean absolute percentage error over a sample set.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn mape(&self, samples: &[MemorySample]) -> f64 {
        debug_assert!(!samples.is_empty(), "need samples to evaluate");
        let sum: f64 = samples
            .iter()
            .map(|s| {
                let p = self.predict_bytes(&s.features) as f64;
                (p - s.peak_bytes as f64).abs() / s.peak_bytes as f64
            })
            .sum();
        sum / samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::dataset::{collect_samples, SampleSpec};
    use pipette_model::GptConfig;
    use pipette_sim::MemorySim;

    fn corpus() -> Vec<MemorySample> {
        let spec = SampleSpec {
            gpu_counts: vec![8, 16, 32],
            gpus_per_node: 8,
            models: vec![
                GptConfig::new(8, 1024, 16, 2048, 51200),
                GptConfig::new(16, 1536, 16, 2048, 51200),
            ],
            global_batches: vec![64],
            max_micro: 4,
        };
        collect_samples(&spec, &MemorySim::new(1))
    }

    fn quick_config() -> MemoryEstimatorConfig {
        MemoryEstimatorConfig {
            train: TrainConfig {
                iterations: 2_500,
                learning_rate: 3e-3,
                batch_size: 64,
                record_every: 500,
                seed: 0,
            },
            hidden: 48,
            depth: 3,
            soft_margin: 0.08,
            seed: 1,
        }
    }

    #[test]
    fn learns_the_training_distribution() {
        let samples = corpus();
        let est = MemoryEstimator::train(&samples, &quick_config());
        let mape = est.mape(&samples);
        assert!(mape < 0.15, "training MAPE {mape:.3} too high");
    }

    #[test]
    fn beats_the_analytic_baseline() {
        use crate::memory::AnalyticMemoryEstimator;
        use pipette_model::{MicrobatchPlan, ParallelConfig};
        let samples = corpus();
        let est = MemoryEstimator::train(&samples, &quick_config());
        let analytic = AnalyticMemoryEstimator::new();
        // Evaluate both on the corpus (the analytic baseline needs the
        // structured config back, so recompute from features).
        let mut an_err = 0.0;
        for s in &samples {
            let gpt = GptConfig::new(
                s.features[1] as usize,
                s.features[2] as usize,
                s.features[3] as usize,
                2048,
                51200,
            );
            let cfg = ParallelConfig::new(
                s.features[5] as usize,
                s.features[4] as usize,
                s.features[6] as usize,
            );
            let plan = MicrobatchPlan::new(s.features[8] as u64, s.features[7] as u64).unwrap();
            let a = analytic.estimate_bytes(&gpt, cfg, plan) as f64;
            an_err += (a - s.peak_bytes as f64).abs() / s.peak_bytes as f64;
        }
        an_err /= samples.len() as f64;
        let learned = est.mape(&samples);
        assert!(
            learned < an_err / 2.0,
            "learned MAPE {learned:.3} should be far below analytic {an_err:.3}"
        );
    }

    #[test]
    fn soft_margin_rejects_borderline() {
        let samples = corpus();
        let est = MemoryEstimator::train(&samples, &quick_config());
        let s = &samples[0];
        let p = est.predict_bytes(&s.features);
        // Limit exactly at the prediction: rejected by the margin.
        assert!(!est.is_runnable(&s.features, p));
        // Generous limit: accepted.
        assert!(est.is_runnable(&s.features, p * 2));
        // Zero-margin variant accepts the exact limit.
        let loose = est.clone().with_soft_margin(0.0);
        assert!(loose.is_runnable(&s.features, p + (p / 50)));
    }

    #[test]
    fn train_summary_describes_the_run() {
        let samples = corpus();
        let config = quick_config();
        let est = MemoryEstimator::train(&samples, &config);
        let s = est.train_summary();
        assert_eq!(s.samples, samples.len());
        assert_eq!(s.iterations, config.train.iterations);
        assert_eq!(s.record_every, config.train.record_every);
        assert_eq!(
            s.loss_curve.len(),
            config.train.iterations.div_ceil(config.train.record_every)
        );
        assert!(s.final_loss.is_finite());
        // Training converges: the curve ends well below where it starts.
        assert!(s.loss_curve.last().unwrap() < s.loss_curve.first().unwrap());
    }

    #[test]
    fn train_checked_matches_plain_training_on_healthy_corpus() {
        let samples = corpus();
        let checked = MemoryEstimator::train_checked(&samples, &quick_config(), 1)
            .expect("healthy corpus trains");
        let plain = MemoryEstimator::train(&samples, &quick_config());
        assert_eq!(checked, plain);
    }

    #[test]
    fn train_checked_rejects_degenerate_corpora() {
        let samples = corpus();
        // Too few samples: a corpus decimated by failed profiling jobs.
        let few = &samples[..3];
        assert!(matches!(
            MemoryEstimator::train_checked(few, &quick_config(), 1),
            Err(EstimatorDegeneracy::TooFewSamples { got: 3, need: 8 })
        ));
        // Collapsed targets: every sample reports the same residual.
        let collapsed: Vec<MemorySample> = (0..12).map(|_| samples[0]).collect();
        assert!(matches!(
            MemoryEstimator::train_checked(&collapsed, &quick_config(), 1),
            Err(EstimatorDegeneracy::CollapsedTargets { .. })
        ));
        // The errors render a reason.
        let e = EstimatorDegeneracy::TooFewSamples { got: 3, need: 8 };
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn prediction_is_deterministic() {
        let samples = corpus();
        let a = MemoryEstimator::train(&samples, &quick_config());
        let b = MemoryEstimator::train(&samples, &quick_config());
        assert_eq!(
            a.predict_bytes(&samples[3].features),
            b.predict_bytes(&samples[3].features)
        );
    }
}
