//! Binary, mmap-readable snapshots of trained memory estimators.
//!
//! The JSON cache entries (see [`super::cache`]) are the durable,
//! inspectable source of truth — this module adds a *fixed-layout* `.idx`
//! sibling per entry so that readers (many concurrent configurator
//! workers, the future `pipette-serve` daemon) load an estimator with no
//! text parsing at all: the file is mapped (or read) once, the header is
//! validated, and every weight is copied straight out of the
//! little-endian payload at a known offset. Numbers survive bit-exactly
//! by construction — `f64::to_le_bytes` round-trips — so a snapshot-
//! loaded estimator predicts byte-identically to the JSON path (which is
//! itself bit-exact; both are test-covered in `tests/estimator_cache.rs`).
//!
//! ## Layout (all little-endian)
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"PIPMEMIX"
//!      8     4  format version (currently 1)
//!     12     4  reserved (zero)
//!     16     8  training-input fingerprint (must match the cache key)
//!     24     8  payload length in bytes
//!     32     8  FNV-1a checksum of the payload
//!     40     …  payload
//! ```
//!
//! Payload, a flat run of 8-byte little-endian words (`u64` or `f64`):
//! `y_mean, y_std, soft_margin`, `seq_len, vocab`, the train summary
//! (`samples, iterations, record_every, final_loss, curve_len, curve…`),
//! the scaler (`num_features, means…, stds…`), then the network
//! (`num_layers`, and per layer `rows, cols, relu, weights…, bias…`).
//!
//! ## Corruption policy
//!
//! `read_index` returns `None` — never an error, never a partial value —
//! on *any* defect: short file, bad magic, version or fingerprint
//! mismatch, checksum mismatch, truncated payload, or counts that do not
//! fit the remaining bytes. The caller falls back to the JSON entry and
//! rewrites the snapshot, so a torn write costs one parse, not a wrong
//! answer.

// The crate denies unsafe_code; this module is the single opt-out — two
// audited unsafe blocks (the mmap syscall and the slice view over the
// mapping) live in `mmap_sys` below, each with a SAFETY comment.
#![allow(unsafe_code)]

use crate::memory::estimator::MemoryEstimator;
use pipette_mlp::{Dense, Matrix, Mlp, StandardScaler};
use std::path::Path;

use crate::memory::estimator::TrainSummary;

const MAGIC: [u8; 8] = *b"PIPMEMIX";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 40;

/// FNV-1a over the payload (same constants as the cache fingerprint).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Read-only view of a file: memory-mapped on unix, buffered elsewhere
/// (and whenever mapping fails — empty files, exotic filesystems).
enum FileBytes {
    #[cfg(unix)]
    Mapped(mmap_sys::MappedFile),
    Owned(Vec<u8>),
}

impl FileBytes {
    fn open(path: &Path) -> Option<Self> {
        #[cfg(unix)]
        {
            if let Some(mapped) = mmap_sys::MappedFile::open(path) {
                return Some(FileBytes::Mapped(mapped));
            }
        }
        std::fs::read(path).ok().map(FileBytes::Owned)
    }

    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            FileBytes::Mapped(m) => m.bytes(),
            FileBytes::Owned(v) => v,
        }
    }
}

/// `mmap(2)` via direct `extern "C"` bindings: the toolchain vendors no
/// `libc`/`memmap2` crate, but std already links the platform libc, so
/// the two symbols we need are available to declare by hand.
#[cfg(unix)]
mod mmap_sys {
    use std::fs::File;
    use std::os::unix::io::AsRawFd;
    use std::path::Path;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    /// A whole file mapped read-only private; unmapped on drop.
    pub(super) struct MappedFile {
        ptr: *const u8,
        len: usize,
    }

    // The mapping is read-only and owned: sharing a `&MappedFile` across
    // threads only ever reads immutable pages.
    unsafe impl Send for MappedFile {}
    unsafe impl Sync for MappedFile {}

    impl MappedFile {
        /// Maps `path` read-only, or `None` when anything fails (missing
        /// file, zero length — `mmap` rejects empty ranges — or platform
        /// refusal); the caller then falls back to a buffered read.
        pub(super) fn open(path: &Path) -> Option<Self> {
            let file = File::open(path).ok()?;
            let len = usize::try_from(file.metadata().ok()?.len()).ok()?;
            if len == 0 {
                return None;
            }
            // SAFETY: fd is a valid open file for the duration of the
            // call; we request a fresh read-only private mapping (addr
            // null, offset 0) of exactly the file's length and check for
            // MAP_FAILED before use. The fd may close after mmap returns;
            // the mapping survives it (POSIX).
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 || ptr.is_null() {
                return None;
            }
            Some(Self {
                ptr: ptr as *const u8,
                len,
            })
        }

        pub(super) fn bytes(&self) -> &[u8] {
            // SAFETY: ptr/len describe a live read-only mapping owned by
            // self; it is unmapped only in Drop, after every borrow ends.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for MappedFile {
        fn drop(&mut self) {
            // SAFETY: exactly the range mmap returned; called once.
            unsafe {
                munmap(self.ptr as *mut core::ffi::c_void, self.len);
            }
        }
    }
}

/// Bounds-checked little-endian reader over the payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let chunk = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(chunk)
    }

    fn u64(&mut self) -> Option<u64> {
        let chunk = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(chunk);
        Some(u64::from_le_bytes(buf))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    fn usize(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }

    /// Reads `n` f64s. The length is validated against the remaining
    /// bytes *before* allocating, so a corrupt count cannot trigger a
    /// huge allocation.
    fn f64s(&mut self, n: usize) -> Option<Vec<f64>> {
        let byte_len = n.checked_mul(8)?;
        if self.bytes.len().saturating_sub(self.pos) < byte_len {
            return None;
        }
        let chunk = self.take(byte_len)?;
        Some(
            chunk
                .chunks_exact(8)
                .map(|c| {
                    let mut buf = [0u8; 8];
                    buf.copy_from_slice(c);
                    f64::from_bits(u64::from_le_bytes(buf))
                })
                .collect(),
        )
    }

    fn finished(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Little-endian writer building the payload.
#[derive(Default)]
struct Builder {
    bytes: Vec<u8>,
}

impl Builder {
    fn u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn f64s(&mut self, vs: &[f64]) {
        for &v in vs {
            self.f64(v);
        }
    }
}

/// Serializes `estimator` into the fixed payload layout.
fn encode_payload(estimator: &MemoryEstimator) -> Vec<u8> {
    let (mlp, scaler, (y_mean, y_std, soft_margin), (seq_len, vocab), summary) =
        estimator.index_parts();
    let mut b = Builder::default();
    b.f64(y_mean);
    b.f64(y_std);
    b.f64(soft_margin);
    b.u64(seq_len as u64);
    b.u64(vocab as u64);
    b.u64(summary.samples as u64);
    b.u64(summary.iterations as u64);
    b.u64(summary.record_every as u64);
    b.f64(summary.final_loss);
    b.u64(summary.loss_curve.len() as u64);
    b.f64s(&summary.loss_curve);
    b.u64(scaler.num_features() as u64);
    b.f64s(scaler.means());
    b.f64s(scaler.stds());
    b.u64(mlp.layers().len() as u64);
    for layer in mlp.layers() {
        b.u64(layer.weights.rows() as u64);
        b.u64(layer.weights.cols() as u64);
        b.u64(u64::from(layer.relu));
        b.f64s(layer.weights.as_slice());
        b.f64s(&layer.bias);
    }
    b.bytes
}

/// Parses a payload back into an estimator; `None` on any truncation or
/// inconsistency.
fn decode_payload(payload: &[u8]) -> Option<MemoryEstimator> {
    let mut c = Cursor::new(payload);
    let y_mean = c.f64()?;
    let y_std = c.f64()?;
    let soft_margin = c.f64()?;
    let seq_len = c.usize()?;
    let vocab = c.usize()?;
    let samples = c.usize()?;
    let iterations = c.usize()?;
    let record_every = c.usize()?;
    let final_loss = c.f64()?;
    let curve_len = c.usize()?;
    let loss_curve = c.f64s(curve_len)?;
    let num_features = c.usize()?;
    let means = c.f64s(num_features)?;
    let stds = c.f64s(num_features)?;
    let num_layers = c.usize()?;
    if num_layers == 0 {
        return None;
    }
    let mut layers = Vec::new();
    for _ in 0..num_layers {
        let rows = c.usize()?;
        let cols = c.usize()?;
        let relu = match c.u64()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        let n = rows.checked_mul(cols)?;
        let weights = c.f64s(n)?;
        let bias = c.f64s(cols)?;
        layers.push(Dense::from_parts(
            Matrix::from_vec(rows, cols, weights),
            bias,
            relu,
        ));
    }
    if !c.finished() {
        return None;
    }
    Some(MemoryEstimator::from_index_parts(
        Mlp::from_layers(layers),
        StandardScaler::from_parts(means, stds),
        (y_mean, y_std, soft_margin),
        (seq_len, vocab),
        TrainSummary {
            samples,
            iterations,
            record_every,
            final_loss,
            loss_curve,
        },
    ))
}

/// Writes the binary snapshot of `estimator` for cache key `fingerprint`
/// to `path`. Best-effort like the JSON writer: an error only costs the
/// fast read path, never correctness.
pub(crate) fn write_index(
    path: &Path,
    fingerprint: u64,
    estimator: &MemoryEstimator,
) -> std::io::Result<()> {
    let payload = encode_payload(estimator);
    let mut file = Vec::with_capacity(HEADER_LEN + payload.len());
    file.extend_from_slice(&MAGIC);
    file.extend_from_slice(&VERSION.to_le_bytes());
    file.extend_from_slice(&0u32.to_le_bytes());
    file.extend_from_slice(&fingerprint.to_le_bytes());
    file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    file.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    file.extend_from_slice(&payload);
    std::fs::write(path, file)
}

/// Loads the snapshot at `path` if — and only if — it is intact and was
/// written for `fingerprint`. Any defect returns `None` (see the module
/// docs' corruption policy).
pub(crate) fn read_index(path: &Path, fingerprint: u64) -> Option<MemoryEstimator> {
    let file = FileBytes::open(path)?;
    let bytes = file.bytes();
    if bytes.len() < HEADER_LEN || bytes[..8] != MAGIC {
        return None;
    }
    let mut header = Cursor::new(&bytes[8..HEADER_LEN]);
    let version = header.u64()? as u32; // version u32 + reserved u32 read together
    if version != VERSION {
        return None;
    }
    if header.u64()? != fingerprint {
        return None;
    }
    let payload_len = header.usize()?;
    let checksum = header.u64()?;
    let payload = bytes.get(HEADER_LEN..)?;
    if payload.len() != payload_len || fnv1a(payload) != checksum {
        return None;
    }
    decode_payload(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::dataset::{collect_samples, SampleSpec};
    use crate::memory::estimator::MemoryEstimatorConfig;
    use pipette_mlp::TrainConfig;
    use pipette_model::GptConfig;
    use pipette_sim::MemorySim;

    fn tiny_estimator() -> MemoryEstimator {
        tiny_estimator_with_features().0
    }

    fn tiny_estimator_with_features() -> (MemoryEstimator, [f64; 10]) {
        let gpt = GptConfig::new(8, 1024, 16, 2048, 51200);
        let spec = SampleSpec {
            gpu_counts: vec![8],
            gpus_per_node: 8,
            models: vec![gpt],
            global_batches: vec![32],
            max_micro: 2,
        };
        let config = MemoryEstimatorConfig {
            train: TrainConfig {
                iterations: 120,
                learning_rate: 3e-3,
                batch_size: 32,
                record_every: 40,
                seed: 0,
            },
            hidden: 12,
            depth: 2,
            soft_margin: 0.08,
            seed: 1,
        };
        let samples = collect_samples(&spec, &MemorySim::new(1));
        let features = samples[0].features;
        (MemoryEstimator::train(&samples, &config), features)
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pipette-mmap-index-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trip_is_exactly_equal() {
        let (estimator, features) = tiny_estimator_with_features();
        let path = temp_path("round-trip.idx");
        write_index(&path, 0xdead_beef, &estimator).unwrap();
        let loaded = read_index(&path, 0xdead_beef).expect("intact snapshot loads");
        assert_eq!(loaded, estimator);
        // Byte-identical predictions, not merely close ones.
        assert_eq!(
            loaded.predict_bytes(&features),
            estimator.predict_bytes(&features)
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let estimator = tiny_estimator();
        let path = temp_path("fingerprint.idx");
        write_index(&path, 1, &estimator).unwrap();
        assert!(read_index(&path, 2).is_none());
        assert!(read_index(&path, 1).is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncation_anywhere_is_rejected() {
        let estimator = tiny_estimator();
        let path = temp_path("truncate.idx");
        write_index(&path, 7, &estimator).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Every strictly shorter prefix must fail cleanly — header cuts,
        // payload cuts, and the empty file alike.
        for keep in [0, 1, 8, 16, HEADER_LEN - 1, HEADER_LEN, full.len() - 1] {
            std::fs::write(&path, &full[..keep]).unwrap();
            assert!(read_index(&path, 7).is_none(), "prefix of {keep} accepted");
        }
        std::fs::write(&path, &full).unwrap();
        assert!(read_index(&path, 7).is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let estimator = tiny_estimator();
        let path = temp_path("bitflip.idx");
        write_index(&path, 9, &estimator).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_index(&path, 9).is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let estimator = tiny_estimator();
        let path = temp_path("trailing.idx");
        write_index(&path, 3, &estimator).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0u8; 16]);
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_index(&path, 3).is_none(), "length check must catch");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_a_clean_none() {
        assert!(read_index(Path::new("/nonexistent/p.idx"), 0).is_none());
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let estimator = tiny_estimator();
        let path = temp_path("magic.idx");
        write_index(&path, 5, &estimator).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let good = bytes.clone();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_index(&path, 5).is_none());
        bytes = good;
        bytes[8] = 99; // version
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_index(&path, 5).is_none());
        let _ = std::fs::remove_file(&path);
    }
}
