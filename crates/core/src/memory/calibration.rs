//! Calibrating the memory estimator's soft margin from data.
//!
//! The paper "sets a soft margin to stably recommend runnable
//! configurations" but does not say how large. A fixed margin is a blunt
//! instrument: too small and OOM configurations slip through, too large
//! and the fastest runnable configurations are rejected. This module
//! chooses the margin *empirically*: hold out part of the profiled
//! samples, train on the rest, and set the margin to the
//! `confidence`-quantile of the estimator's relative underestimation on
//! the held-out set — i.e. the smallest margin such that, at the chosen
//! confidence, a configuration predicted to fit actually fits.

use crate::memory::dataset::MemorySample;
use crate::memory::estimator::{MemoryEstimator, MemoryEstimatorConfig};
use serde::{Deserialize, Serialize};

/// Outcome of a margin calibration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// The chosen soft margin.
    pub margin: f64,
    /// Requested confidence (fraction of held-out samples whose
    /// underestimation the margin covers).
    pub confidence: f64,
    /// Held-out samples used.
    pub holdout_size: usize,
    /// Worst relative underestimation observed on the hold-out
    /// (`actual/predicted − 1`, 0 if the estimator never underestimates).
    pub worst_underestimation: f64,
}

/// Splits `samples` deterministically (every `k`-th sample held out),
/// trains on the rest, and returns an estimator whose margin covers the
/// `confidence`-quantile of held-out underestimation.
///
/// # Panics
///
/// Panics if `confidence` is not in `(0, 1]`, fewer than 20 samples are
/// given, or the holdout would be empty.
pub fn calibrate(
    samples: &[MemorySample],
    config: &MemoryEstimatorConfig,
    confidence: f64,
) -> (MemoryEstimator, CalibrationReport) {
    debug_assert!(
        confidence > 0.0 && confidence <= 1.0,
        "confidence must be in (0, 1]"
    );
    debug_assert!(samples.len() >= 20, "need at least 20 samples to calibrate");
    const HOLDOUT_EVERY: usize = 5;
    let mut train = Vec::new();
    let mut holdout = Vec::new();
    for (i, s) in samples.iter().enumerate() {
        if i % HOLDOUT_EVERY == 0 {
            holdout.push(*s);
        } else {
            train.push(*s);
        }
    }
    let estimator = MemoryEstimator::train(&train, config);

    // Relative underestimation per held-out point: how much larger the
    // truth is than the prediction.
    let mut under: Vec<f64> = holdout
        .iter()
        .map(|s| {
            let predicted = estimator.predict_bytes(&s.features).max(1) as f64;
            (s.peak_bytes as f64 / predicted - 1.0).max(0.0)
        })
        .collect();
    under.sort_by(|a, b| a.total_cmp(b));
    let idx = ((under.len() as f64 * confidence).ceil() as usize).clamp(1, under.len()) - 1;
    let margin = under[idx];
    let worst = under.last().copied().unwrap_or(margin);

    let report = CalibrationReport {
        margin,
        confidence,
        holdout_size: holdout.len(),
        worst_underestimation: worst,
    };
    (estimator.with_soft_margin(margin), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::dataset::{collect_samples, SampleSpec};
    use pipette_model::GptConfig;
    use pipette_sim::MemorySim;

    fn corpus() -> Vec<MemorySample> {
        collect_samples(
            &SampleSpec {
                gpu_counts: vec![8, 16, 32],
                gpus_per_node: 8,
                models: vec![GptConfig::new(12, 1536, 16, 2048, 51200)],
                global_batches: vec![64, 128],
                max_micro: 4,
            },
            &MemorySim::new(5),
        )
    }

    fn quick_config() -> MemoryEstimatorConfig {
        MemoryEstimatorConfig {
            train: pipette_mlp::TrainConfig {
                iterations: 2_500,
                learning_rate: 3e-3,
                batch_size: 64,
                record_every: 500,
                seed: 0,
            },
            hidden: 48,
            depth: 3,
            soft_margin: 0.0,
            seed: 1,
        }
    }

    #[test]
    fn calibrated_margin_covers_holdout_at_confidence() {
        let samples = corpus();
        let (estimator, report) = calibrate(&samples, &quick_config(), 0.95);
        assert!(report.holdout_size >= samples.len() / 6);
        assert!(report.margin >= 0.0);
        assert!(estimator.soft_margin() == report.margin);
        // Check the guarantee on the holdout itself: at least 95 % of
        // held-out samples satisfy predicted*(1+margin) >= actual.
        let covered = samples
            .iter()
            .step_by(5)
            .filter(|s| {
                estimator.predict_bytes(&s.features) as f64 * (1.0 + report.margin)
                    >= s.peak_bytes as f64
            })
            .count();
        let frac = covered as f64 / report.holdout_size as f64;
        assert!(frac >= 0.95, "coverage {frac}");
    }

    #[test]
    fn full_confidence_covers_the_worst_case() {
        let samples = corpus();
        let (_, report) = calibrate(&samples, &quick_config(), 1.0);
        assert!((report.margin - report.worst_underestimation).abs() < 1e-12);
    }

    #[test]
    fn higher_confidence_needs_no_smaller_margin() {
        let samples = corpus();
        let (_, r80) = calibrate(&samples, &quick_config(), 0.80);
        let (_, r99) = calibrate(&samples, &quick_config(), 0.99);
        assert!(r99.margin >= r80.margin);
    }

    #[test]
    fn calibrated_estimator_rejects_oom_on_holdout() {
        // Operationally: classify held-out samples against a 16 GiB limit.
        // With the calibrated margin, OOM configs accepted should be rare.
        let samples = corpus();
        let (estimator, _) = calibrate(&samples, &quick_config(), 0.97);
        let limit = 16u64 << 30;
        let mut false_accepts = 0;
        let mut total_oom = 0;
        for s in samples.iter().step_by(5) {
            let fits = s.peak_bytes <= limit;
            if !fits {
                total_oom += 1;
                if estimator.is_runnable(&s.features, limit) {
                    false_accepts += 1;
                }
            }
        }
        assert!(
            total_oom > 3,
            "corpus should contain OOM points: {total_oom}"
        );
        assert!(
            false_accepts * 10 <= total_oom,
            "{false_accepts}/{total_oom} OOM configs accepted"
        );
    }
}
