//! Memory estimation (§VI): the analytic baseline \[20\] and Pipette's
//! learned MLP estimator, plus the sample-collection pipeline that feeds
//! it.

mod analytic;
mod cache;
mod calibration;
mod dataset;
mod estimator;
mod mmap_index;

pub use analytic::AnalyticMemoryEstimator;
pub use cache::{estimator_fingerprint, CacheCounters, SweepReport, TrainedEstimatorCache};
pub use calibration::{calibrate, CalibrationReport};
pub use dataset::{
    collect_samples, collect_samples_cancellable, collect_samples_parallel, MemorySample,
    SampleSpec,
};
pub use estimator::{EstimatorDegeneracy, MemoryEstimator, MemoryEstimatorConfig, TrainSummary};

pub(crate) use estimator::analytic_prior;
