//! Memory estimation (§VI): the analytic baseline \[20\] and Pipette's
//! learned MLP estimator, plus the sample-collection pipeline that feeds
//! it.

mod analytic;
mod calibration;
mod dataset;
mod estimator;

pub use analytic::AnalyticMemoryEstimator;
pub use calibration::{calibrate, CalibrationReport};
pub use dataset::{collect_samples, MemorySample, SampleSpec};
pub use estimator::{MemoryEstimator, MemoryEstimatorConfig};
