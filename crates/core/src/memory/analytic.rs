//! The analytic memory baseline (\[20\] in the paper).
//!
//! "A common way to estimate the memory requirement is by dividing the
//! model size by the number of stages and tensor-parallel ways and then
//! approximating the activation size by considering the layer structures."
//! It counts model state plus the activations of *one* microbatch — it is
//! blind to the 1F1B in-flight multiplicity and to every framework/library
//! overhead, which is why it "underestimates the maximum memory usage"
//! (Fig. 7).

use pipette_model::{memory, GptConfig, MicrobatchPlan, ParallelConfig};

/// Stateless analytic estimator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalyticMemoryEstimator;

impl AnalyticMemoryEstimator {
    /// Creates the estimator.
    pub fn new() -> Self {
        Self
    }

    /// Estimated peak bytes per GPU for `stage`.
    pub fn stage_bytes(
        &self,
        gpt: &GptConfig,
        cfg: ParallelConfig,
        plan: MicrobatchPlan,
        stage: usize,
    ) -> u64 {
        let layers = gpt.layers_of_stage(cfg.pp, stage) as u64;
        memory::model_state_bytes(gpt, cfg.pp, cfg.tp, stage)
            + layers * memory::activation_bytes_per_layer(gpt, plan.micro_batch, cfg.tp)
    }

    /// Estimated peak bytes per GPU (worst stage).
    pub fn estimate_bytes(
        &self,
        gpt: &GptConfig,
        cfg: ParallelConfig,
        plan: MicrobatchPlan,
    ) -> u64 {
        (0..cfg.pp)
            .map(|s| self.stage_bytes(gpt, cfg, plan, s))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipette_sim::MemorySim;

    #[test]
    fn underestimates_ground_truth() {
        let gpt = GptConfig::gpt_3_1b();
        let truth = MemorySim::new(1);
        let analytic = AnalyticMemoryEstimator::new();
        for (cfg, micro) in [
            (ParallelConfig::new(8, 4, 4), 2u64),
            (ParallelConfig::new(4, 8, 4), 4),
            (ParallelConfig::new(2, 8, 8), 1),
        ] {
            let plan = MicrobatchPlan::new(32, micro).unwrap();
            let t = truth.report(&gpt, cfg, plan).peak_bytes;
            let e = analytic.estimate_bytes(&gpt, cfg, plan);
            assert!(e < t, "{cfg}: analytic {e} must undershoot truth {t}");
        }
    }

    #[test]
    fn severe_underestimation_with_deep_pipelines() {
        // With pp=8 the first stage holds 8 in-flight microbatches the
        // baseline does not count: the error should be large (Fig. 7 shows
        // ~60 % MAPE).
        let gpt = GptConfig::gpt_3_1b();
        let cfg = ParallelConfig::new(8, 4, 4);
        let plan = MicrobatchPlan::new(32, 2).unwrap();
        let t = MemorySim::new(1).report(&gpt, cfg, plan).peak_bytes as f64;
        let e = AnalyticMemoryEstimator::new().estimate_bytes(&gpt, cfg, plan) as f64;
        let err = (t - e) / t;
        assert!(
            err > 0.4,
            "relative underestimation {err:.2} should be severe"
        );
    }

    #[test]
    fn monotone_in_microbatch() {
        let gpt = GptConfig::gpt_1_1b();
        let cfg = ParallelConfig::new(4, 4, 2);
        let a = AnalyticMemoryEstimator::new();
        let m1 = a.estimate_bytes(&gpt, cfg, MicrobatchPlan::new(32, 1).unwrap());
        let m4 = a.estimate_bytes(&gpt, cfg, MicrobatchPlan::new(32, 4).unwrap());
        assert!(m4 > m1);
    }
}
