//! Sample collection for the learned memory estimator.
//!
//! The paper profiles "all possible configurations using up to four
//! cluster nodes (32 GPUs)" and validates extrapolation up to 128 GPUs.
//! Here we run the ground-truth memory simulator over every valid
//! configuration of a handful of subcluster sizes and model scales, which
//! plays the role of those profiling jobs.

use crate::cancel::CancelToken;
use pipette_model::{GptConfig, MicrobatchPlan, ParallelConfig};
use pipette_sim::MemorySim;
use serde::{Deserialize, Serialize};

/// One profiled data point: Eq. 7's ten input features and the observed
/// peak memory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemorySample {
    /// Eq. 7 features: `n_gpus, n_layers, n_hidden, n_heads, tp, pp, dp,
    /// bs_micro, bs_mini, bs_global`.
    pub features: [f64; 10],
    /// Observed peak memory of the worst GPU, bytes.
    pub peak_bytes: u64,
    /// Sequence length of the profiled model (metadata, not an Eq. 7
    /// feature; needed to rebuild the analytic prior).
    pub seq_len: usize,
    /// Vocabulary size of the profiled model (metadata).
    pub vocab: usize,
}

impl MemorySample {
    /// Builds the Eq. 7 feature vector for a configuration.
    pub fn features_for(
        gpt: &GptConfig,
        n_gpus: usize,
        cfg: ParallelConfig,
        plan: MicrobatchPlan,
        global_batch: u64,
    ) -> [f64; 10] {
        [
            n_gpus as f64,
            gpt.n_layers as f64,
            gpt.hidden as f64,
            gpt.n_heads as f64,
            cfg.tp as f64,
            cfg.pp as f64,
            cfg.dp as f64,
            plan.micro_batch as f64,
            plan.minibatch() as f64,
            global_batch as f64,
        ]
    }
}

/// What to sweep while collecting samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleSpec {
    /// Subcluster GPU counts to profile (the paper uses up to 4 nodes).
    pub gpu_counts: Vec<usize>,
    /// GPUs per node (tensor parallelism is capped at this).
    pub gpus_per_node: usize,
    /// Model scales to profile.
    pub models: Vec<GptConfig>,
    /// Global batch sizes to profile.
    pub global_batches: Vec<u64>,
    /// Largest microbatch to consider.
    pub max_micro: u64,
}

impl SampleSpec {
    /// The paper's protocol on a 8-GPU-per-node cluster: subclusters of
    /// 1–4 nodes, a small ladder of model scales, two global batches.
    pub fn paper_default(models: Vec<GptConfig>) -> Self {
        Self {
            gpu_counts: vec![8, 16, 24, 32],
            gpus_per_node: 8,
            models,
            global_batches: vec![128, 256],
            max_micro: 8,
        }
    }
}

/// Runs the sweep against the ground-truth memory simulator `truth`.
///
/// Only structurally valid configurations are emitted (divisible batches,
/// `tp` within a node, `pp ≤ layers`). OOM configurations are *kept* —
/// the estimator must learn where the cliff is, and a profiling job that
/// OOMs still reports its attempted allocation size.
pub fn collect_samples(spec: &SampleSpec, truth: &MemorySim) -> Vec<MemorySample> {
    collect_samples_parallel(spec, truth, 1)
}

/// [`collect_samples`] with the grid points simulated on up to `threads`
/// worker threads. Each grid point (model × subcluster × parallel config ×
/// global batch) is independent and the results are merged in grid order
/// via [`crate::parallel::ordered_map`], so the corpus is identical to the
/// sequential sweep at any thread count.
pub fn collect_samples_parallel(
    spec: &SampleSpec,
    truth: &MemorySim,
    threads: usize,
) -> Vec<MemorySample> {
    // With no token the sweep cannot be cancelled, so `None` (an empty
    // corpus) is unreachable.
    collect_samples_cancellable(spec, truth, threads, None).unwrap_or_default()
}

/// [`collect_samples_parallel`] polling a [`CancelToken`] before each
/// grid point. Returns `None` if cancellation was observed at any point:
/// a *partial* corpus would make the trained estimator depend on when the
/// cancel landed, so the sweep is all-or-nothing and a cancelled caller
/// falls back to the analytic memory model instead.
pub fn collect_samples_cancellable(
    spec: &SampleSpec,
    truth: &MemorySim,
    threads: usize,
    cancel: Option<&CancelToken>,
) -> Option<Vec<MemorySample>> {
    // Enumerate the (cheap) outer grid sequentially, then fan the
    // simulator runs out over the pool.
    let mut grid: Vec<(&GptConfig, usize, ParallelConfig, u64, u64)> = Vec::new();
    for gpt in &spec.models {
        for &g in &spec.gpu_counts {
            for cfg in ParallelConfig::enumerate(g, spec.gpus_per_node, gpt.n_layers) {
                for &global in &spec.global_batches {
                    let Ok(mini) = pipette_model::BatchConfig::new(global).minibatch(cfg.dp) else {
                        continue;
                    };
                    grid.push((gpt, g, cfg, global, mini));
                }
            }
        }
    }
    let samples: Vec<MemorySample> =
        crate::parallel::ordered_map(threads, &grid, |_, &(gpt, g, cfg, global, mini)| {
            if cancel.is_some_and(CancelToken::is_cancelled) {
                // Skip the (expensive) simulation; the partial result is
                // discarded below anyway.
                return Vec::new();
            }
            MicrobatchPlan::enumerate(mini, spec.max_micro)
                .into_iter()
                .map(|plan| MemorySample {
                    features: MemorySample::features_for(gpt, g, cfg, plan, global),
                    peak_bytes: truth.report(gpt, cfg, plan).peak_bytes,
                    seq_len: gpt.seq_len,
                    vocab: gpt.vocab,
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
    if cancel.is_some_and(CancelToken::is_cancelled) {
        None
    } else {
        Some(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> SampleSpec {
        SampleSpec {
            gpu_counts: vec![8, 16],
            gpus_per_node: 8,
            models: vec![GptConfig::new(8, 1024, 16, 2048, 51200)],
            global_batches: vec![64],
            max_micro: 4,
        }
    }

    #[test]
    fn collects_a_reasonable_corpus() {
        let samples = collect_samples(&small_spec(), &MemorySim::new(1));
        assert!(samples.len() > 30, "got {}", samples.len());
        assert!(samples.iter().all(|s| s.peak_bytes > 0));
    }

    #[test]
    fn features_match_configuration() {
        let gpt = GptConfig::gpt_1_1b();
        let cfg = ParallelConfig::new(4, 8, 2);
        let plan = MicrobatchPlan::new(32, 2).unwrap();
        let f = MemorySample::features_for(&gpt, 64, cfg, plan, 64);
        assert_eq!(f[0], 64.0); // n_gpus
        assert_eq!(f[1], 24.0); // layers
        assert_eq!(f[4], 8.0); // tp
        assert_eq!(f[5], 4.0); // pp
        assert_eq!(f[7], 2.0); // micro
        assert_eq!(f[8], 32.0); // mini
    }

    #[test]
    fn all_samples_are_valid_configs() {
        for s in collect_samples(&small_spec(), &MemorySim::new(1)) {
            let gpus = s.features[0] as usize;
            let (tp, pp, dp) = (
                s.features[4] as usize,
                s.features[5] as usize,
                s.features[6] as usize,
            );
            assert_eq!(tp * pp * dp, gpus);
            assert!(tp <= 8);
            // micro divides mini.
            assert_eq!(s.features[8] as u64 % s.features[7] as u64, 0);
        }
    }

    #[test]
    fn deterministic() {
        let a = collect_samples(&small_spec(), &MemorySim::new(1));
        let b = collect_samples(&small_spec(), &MemorySim::new(1));
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_collection_is_thread_invariant() {
        let seq = collect_samples(&small_spec(), &MemorySim::new(1));
        for threads in [2, 4, 8] {
            let par = collect_samples_parallel(&small_spec(), &MemorySim::new(1), threads);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn cancelled_sweep_yields_no_corpus() {
        let token = CancelToken::new();
        token.cancel();
        assert_eq!(
            collect_samples_cancellable(&small_spec(), &MemorySim::new(1), 2, Some(&token)),
            None,
            "a cancelled sweep must not surface a partial corpus"
        );
        let live = CancelToken::new();
        let full = collect_samples_cancellable(&small_spec(), &MemorySim::new(1), 1, Some(&live));
        assert_eq!(
            full,
            Some(collect_samples(&small_spec(), &MemorySim::new(1))),
            "an un-cancelled token must not perturb the corpus"
        );
    }
}
