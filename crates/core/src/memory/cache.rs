//! Trained-estimator cache: skip the 12k–50k-iteration MLP training when
//! an identical estimator has already been produced.
//!
//! A trained [`MemoryEstimator`] is a pure function of what it was trained
//! on: the profiling sweep ([`SampleSpec`]), the ground-truth simulator
//! ([`MemorySim`], which carries the cluster's memory options and noise
//! seed), the target model ([`GptConfig`]), and the training protocol
//! ([`MemoryEstimatorConfig`], which contains the `TrainConfig`, soft
//! margin, and weight-init seed). The cache keys on a fingerprint of that
//! tuple — FNV-1a over its canonical JSON — so two `configure()` calls
//! that would train byte-for-byte the same network share one entry, and
//! anything that changes the result (a different margin, seed, iteration
//! count, cluster, or model) misses.
//!
//! Entries live in memory and, when a directory is configured, on disk as
//! serde JSON. The vendored `serde_json` prints `f64` shortest-round-trip
//! and parses correctly rounded, so a reloaded estimator is **bit-exact**:
//! warm-cache recommendations are identical to cold ones (see
//! `tests/estimator_cache.rs`).

use crate::memory::dataset::{collect_samples_parallel, SampleSpec};
use crate::memory::estimator::{MemoryEstimator, MemoryEstimatorConfig};
use crate::memory::mmap_index;
use pipette_model::GptConfig;
use pipette_sim::MemorySim;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// 64-bit FNV-1a fingerprint of the training inputs (via canonical JSON).
/// The four parts are everything a trained estimator is a deterministic
/// function of; a `0x1e` record separator between them keeps e.g.
/// `("ab", "c")` and `("a", "bc")` from colliding.
pub fn estimator_fingerprint(
    spec: &SampleSpec,
    gpt: &GptConfig,
    config: &MemoryEstimatorConfig,
    truth: &MemorySim,
) -> u64 {
    fn fnv(hash: &mut u64, bytes: &[u8]) {
        for byte in bytes {
            *hash ^= u64::from(*byte);
            *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn part<T: Serialize>(hash: &mut u64, value: &T) {
        // An unserializable value degrades to hashing only the separator:
        // the key stays deterministic, at worst less discriminating.
        if let Ok(json) = serde_json::to_string(value) {
            fnv(hash, json.as_bytes());
        }
        fnv(hash, &[0x1e]);
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    part(&mut hash, spec);
    part(&mut hash, gpt);
    part(&mut hash, config);
    part(&mut hash, truth);
    hash
}

/// Snapshot of a cache's lookup counters, for reports and telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheCounters {
    /// Lookups answered from memory or disk.
    pub hits: u64,
    /// Lookups that had to train (including corrupt-entry retrains).
    pub misses: u64,
    /// Disk entries that existed but failed to parse and were retrained
    /// (each such miss is counted in `misses` too). Nonzero is normal
    /// exactly once after an estimator schema change; persistent growth
    /// means something is clobbering the cache directory.
    pub corrupt: u64,
}

/// What a crash-only startup [`sweep`](TrainedEstimatorCache::sweep) of
/// the cache directory found and repaired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepReport {
    /// JSON entries examined.
    pub scanned: u64,
    /// Corrupt JSON entries renamed to `.json.corrupt`.
    pub quarantined: u64,
    /// Missing or defective `.idx` snapshots rebuilt from valid JSON.
    pub healed_indexes: u64,
}

/// In-memory (and optionally on-disk) cache of trained memory estimators.
///
/// Thread-safe behind `&self`; hit/miss/corrupt counters let callers (and
/// the CI perf smoke job) assert that a warm `configure()` really skipped
/// training.
#[derive(Debug, Default)]
pub struct TrainedEstimatorCache {
    dir: Option<PathBuf>,
    // Ordered by fingerprint so any future iteration (debug dumps,
    // eviction) is deterministic by construction (rule D4).
    entries: Mutex<BTreeMap<u64, MemoryEstimator>>,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
}

impl TrainedEstimatorCache {
    /// A purely in-memory cache (lives as long as the value).
    pub fn in_memory() -> Self {
        Self::default()
    }

    /// A cache that also persists entries as JSON files under `dir`
    /// (created on first write). Corrupt or unreadable files are treated
    /// as misses and overwritten.
    pub fn with_dir(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: Some(dir.into()),
            ..Self::default()
        }
    }

    /// Number of lookups answered from memory or disk.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to train.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of on-disk entries that existed but failed to parse (each
    /// also counted as a miss and retrained).
    pub fn corrupt(&self) -> u64 {
        self.corrupt.load(Ordering::Relaxed)
    }

    /// All lookup counters in one snapshot.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits(),
            misses: self.misses(),
            corrupt: self.corrupt(),
        }
    }

    /// Entries currently held in memory.
    pub fn len(&self) -> usize {
        self.lock_entries().len()
    }

    /// Whether the in-memory map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Locks the entry map, recovering from poisoning: a panic in some
    /// other thread mid-training never half-writes the map (inserts are
    /// single calls), so the data is still sound and a typed-error-free
    /// recovery beats propagating a panic (rule D2).
    fn lock_entries(&self) -> std::sync::MutexGuard<'_, BTreeMap<u64, MemoryEstimator>> {
        self.entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn disk_path(&self, fp: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("pipette-mem-estimator-{fp:016x}.json")))
    }

    /// The binary-snapshot sibling of [`Self::disk_path`], read by mmap
    /// (see [`mmap_index`]). Purely an acceleration of the JSON entry:
    /// both deserialize bit-exactly, so whichever answers first is
    /// interchangeable with the other.
    fn index_path(&self, fp: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("pipette-mem-estimator-{fp:016x}.idx")))
    }

    fn load_from_disk(&self, fp: u64) -> Option<MemoryEstimator> {
        let path = self.disk_path(fp)?;
        // Fast path: the mmap-backed snapshot, no JSON parsing at all.
        // `read_index` refuses anything torn, truncated, stale-versioned,
        // or checksum-broken, so falling through here is always safe.
        if let Some(idx) = self.index_path(fp) {
            if let Some(estimator) = mmap_index::read_index(&idx, fp) {
                return Some(estimator);
            }
            // The snapshot (if any) is unreadable. Unlike a corrupt JSON
            // entry it carries no unique bytes worth quarantining — it is
            // a derived artifact — so just drop it; it is rebuilt below.
            let _ = std::fs::remove_file(&idx);
        }
        let text = std::fs::read_to_string(&path).ok()?;
        // The file exists: a parse failure here is a *corrupt* entry
        // (truncated write, schema change), not a plain miss. Quarantine
        // it as `<name>.corrupt` so the bad bytes stay inspectable and the
        // retrained entry gets a clean slot — without the rename the same
        // corrupt file would be re-parsed (and silently retrained over)
        // every single run.
        match serde_json::from_str(&text) {
            Ok(estimator) => {
                // Heal the fast path: the JSON entry was readable but its
                // snapshot was missing or bad, so rewrite it (best-effort)
                // and the next cold process maps instead of parsing.
                if let Some(idx) = self.index_path(fp) {
                    let _ = mmap_index::write_index(&idx, fp, &estimator);
                }
                Some(estimator)
            }
            Err(_) => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                let quarantine = path.with_extension("json.corrupt");
                let _ = std::fs::rename(&path, quarantine);
                None
            }
        }
    }

    fn store_to_disk(&self, fp: u64, estimator: &MemoryEstimator) {
        let Some(path) = self.disk_path(fp) else {
            return;
        };
        // Persistence is best-effort: a read-only disk must not break
        // configuration, only cost a retrain next process.
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Ok(json) = serde_json::to_string(estimator) {
            let _ = std::fs::write(path, json);
        }
        // Write the binary snapshot alongside (same best-effort policy,
        // JSON source of truth first). A torn snapshot write fails the
        // checksum on the next read and falls back to the JSON entry.
        if let Some(idx) = self.index_path(fp) {
            let _ = mmap_index::write_index(&idx, fp, estimator);
        }
    }

    /// Crash-only startup sweep of the on-disk cache directory: every
    /// `pipette-mem-estimator-*.json` entry is parsed eagerly, corrupt
    /// entries are quarantined as `.json.corrupt` *now* (instead of
    /// lazily at first lookup), and any missing or defective `.idx`
    /// snapshot next to a valid entry is rebuilt. After a sweep, every
    /// remaining entry is known-good: a process that died mid-write
    /// leaves nothing a later lookup can trip over. Entries are visited
    /// in path order, so the report is deterministic for a given
    /// directory state. A no-op (all zeros) for in-memory caches.
    pub fn sweep(&self) -> SweepReport {
        let mut report = SweepReport::default();
        let Some(dir) = &self.dir else {
            return report;
        };
        let Ok(entries) = std::fs::read_dir(dir) else {
            return report;
        };
        let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        paths.sort();
        for path in paths {
            let Some(fp) = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_prefix("pipette-mem-estimator-"))
                .and_then(|n| n.strip_suffix(".json"))
                .and_then(|hex| u64::from_str_radix(hex, 16).ok())
            else {
                continue;
            };
            report.scanned += 1;
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            match serde_json::from_str::<MemoryEstimator>(&text) {
                Ok(estimator) => {
                    if let Some(idx) = self.index_path(fp) {
                        if mmap_index::read_index(&idx, fp).is_none() {
                            let _ = std::fs::remove_file(&idx);
                            if mmap_index::write_index(&idx, fp, &estimator).is_ok() {
                                report.healed_indexes += 1;
                            }
                        }
                    }
                }
                Err(_) => {
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                    let _ = std::fs::rename(&path, path.with_extension("json.corrupt"));
                    report.quarantined += 1;
                }
            }
        }
        report
    }

    /// Returns the cached estimator for these training inputs, or collects
    /// samples and trains one (recording it in memory and, if configured,
    /// on disk). `threads` drives both the profiling sweep and the MLP
    /// training; results are bit-identical at any thread count, so cached
    /// and fresh estimators are interchangeable.
    pub fn get_or_train(
        &self,
        spec: &SampleSpec,
        gpt: &GptConfig,
        config: &MemoryEstimatorConfig,
        truth: &MemorySim,
        threads: usize,
    ) -> MemoryEstimator {
        let fp = estimator_fingerprint(spec, gpt, config, truth);
        if let Some(found) = self.lock_entries().get(&fp) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return found.clone();
        }
        if let Some(found) = self.load_from_disk(fp) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.lock_entries().insert(fp, found.clone());
            return found;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let samples = collect_samples_parallel(spec, truth, threads);
        let estimator = MemoryEstimator::train_with_threads(&samples, config, threads);
        self.store_to_disk(fp, &estimator);
        self.lock_entries().insert(fp, estimator.clone());
        estimator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipette_mlp::TrainConfig;

    fn tiny_inputs() -> (SampleSpec, GptConfig, MemoryEstimatorConfig, MemorySim) {
        let gpt = GptConfig::new(8, 1024, 16, 2048, 51200);
        let spec = SampleSpec {
            gpu_counts: vec![8],
            gpus_per_node: 8,
            models: vec![gpt],
            global_batches: vec![32],
            max_micro: 2,
        };
        let config = MemoryEstimatorConfig {
            train: TrainConfig {
                iterations: 150,
                learning_rate: 3e-3,
                batch_size: 32,
                record_every: 50,
                seed: 0,
            },
            hidden: 16,
            depth: 2,
            soft_margin: 0.08,
            seed: 1,
        };
        (spec, gpt, config, MemorySim::new(1))
    }

    #[test]
    fn fingerprint_separates_training_inputs() {
        let (spec, gpt, config, truth) = tiny_inputs();
        let base = estimator_fingerprint(&spec, &gpt, &config, &truth);
        assert_eq!(base, estimator_fingerprint(&spec, &gpt, &config, &truth));
        let mut other = config;
        other.soft_margin = 0.2;
        assert_ne!(base, estimator_fingerprint(&spec, &gpt, &other, &truth));
        let mut other = config;
        other.train.iterations += 1;
        assert_ne!(base, estimator_fingerprint(&spec, &gpt, &other, &truth));
        let mut other_spec = spec.clone();
        other_spec.max_micro = 4;
        assert_ne!(
            base,
            estimator_fingerprint(&other_spec, &gpt, &config, &truth)
        );
    }

    #[test]
    fn second_lookup_hits_and_matches_exactly() {
        let (spec, gpt, config, truth) = tiny_inputs();
        let cache = TrainedEstimatorCache::in_memory();
        let first = cache.get_or_train(&spec, &gpt, &config, &truth, 1);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let second = cache.get_or_train(&spec, &gpt, &config, &truth, 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(first, second);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disk_round_trip_is_bit_exact() {
        let (spec, gpt, config, truth) = tiny_inputs();
        let dir = std::env::temp_dir().join("pipette-estimator-cache-test");
        let _ = std::fs::remove_dir_all(&dir);
        let trained = {
            let cold = TrainedEstimatorCache::with_dir(&dir);
            cold.get_or_train(&spec, &gpt, &config, &truth, 1)
        };
        // A fresh cache (empty memory map) must find the file and return
        // the identical estimator.
        let warm = TrainedEstimatorCache::with_dir(&dir);
        let reloaded = warm.get_or_train(&spec, &gpt, &config, &truth, 1);
        assert_eq!((warm.hits(), warm.misses()), (1, 0));
        assert_eq!(reloaded, trained);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entry_retrains() {
        let (spec, gpt, config, truth) = tiny_inputs();
        let dir = std::env::temp_dir().join("pipette-estimator-cache-corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let fp = estimator_fingerprint(&spec, &gpt, &config, &truth);
        std::fs::write(
            dir.join(format!("pipette-mem-estimator-{fp:016x}.json")),
            "not json",
        )
        .unwrap();
        let cache = TrainedEstimatorCache::with_dir(&dir);
        let _ = cache.get_or_train(&spec, &gpt, &config, &truth, 1);
        assert_eq!(
            cache.counters(),
            CacheCounters {
                hits: 0,
                misses: 1,
                corrupt: 1,
            }
        );
        // The corrupt bytes are quarantined, not overwritten: the slot now
        // holds the retrained entry and the `.corrupt` file keeps the
        // original for inspection.
        let entry = dir.join(format!("pipette-mem-estimator-{fp:016x}.json"));
        let quarantined = entry.with_extension("json.corrupt");
        assert_eq!(
            std::fs::read_to_string(&quarantined).unwrap(),
            "not json",
            "quarantine file preserves the corrupt bytes"
        );
        assert!(
            serde_json::from_str::<MemoryEstimator>(&std::fs::read_to_string(&entry).unwrap())
                .is_ok()
        );
        // A second cold cache now hits the retrained entry cleanly.
        let warm = TrainedEstimatorCache::with_dir(&dir);
        let _ = warm.get_or_train(&spec, &gpt, &config, &truth, 1);
        assert_eq!(
            warm.counters(),
            CacheCounters {
                hits: 1,
                misses: 0,
                corrupt: 0,
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn index_snapshot_alone_serves_a_warm_lookup() {
        let (spec, gpt, config, truth) = tiny_inputs();
        let dir = std::env::temp_dir().join("pipette-estimator-cache-idx-only");
        let _ = std::fs::remove_dir_all(&dir);
        let trained = {
            let cold = TrainedEstimatorCache::with_dir(&dir);
            cold.get_or_train(&spec, &gpt, &config, &truth, 1)
        };
        // Remove the JSON entry so only the binary snapshot can answer:
        // this pins the lookup to the mmap path, and the estimator it
        // yields must be the bit-exact original.
        let fp = estimator_fingerprint(&spec, &gpt, &config, &truth);
        std::fs::remove_file(dir.join(format!("pipette-mem-estimator-{fp:016x}.json"))).unwrap();
        let warm = TrainedEstimatorCache::with_dir(&dir);
        let reloaded = warm.get_or_train(&spec, &gpt, &config, &truth, 1);
        assert_eq!((warm.hits(), warm.misses()), (1, 0));
        assert_eq!(reloaded, trained);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_index_falls_back_to_json_and_heals() {
        let (spec, gpt, config, truth) = tiny_inputs();
        let dir = std::env::temp_dir().join("pipette-estimator-cache-idx-corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let trained = {
            let cold = TrainedEstimatorCache::with_dir(&dir);
            cold.get_or_train(&spec, &gpt, &config, &truth, 1)
        };
        let fp = estimator_fingerprint(&spec, &gpt, &config, &truth);
        let idx = dir.join(format!("pipette-mem-estimator-{fp:016x}.idx"));
        std::fs::write(&idx, b"definitely not a snapshot").unwrap();
        let warm = TrainedEstimatorCache::with_dir(&dir);
        let reloaded = warm.get_or_train(&spec, &gpt, &config, &truth, 1);
        // Still a clean hit (via JSON), still bit-exact, and *not* counted
        // as corrupt — the JSON source of truth was fine.
        assert_eq!(
            warm.counters(),
            CacheCounters {
                hits: 1,
                misses: 0,
                corrupt: 0,
            }
        );
        assert_eq!(reloaded, trained);
        // The fallback healed the snapshot: it now round-trips again.
        assert_eq!(
            super::super::mmap_index::read_index(&idx, fp),
            Some(trained)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_index_falls_back_to_json() {
        let (spec, gpt, config, truth) = tiny_inputs();
        let dir = std::env::temp_dir().join("pipette-estimator-cache-idx-truncated");
        let _ = std::fs::remove_dir_all(&dir);
        let trained = {
            let cold = TrainedEstimatorCache::with_dir(&dir);
            cold.get_or_train(&spec, &gpt, &config, &truth, 1)
        };
        let fp = estimator_fingerprint(&spec, &gpt, &config, &truth);
        let idx = dir.join(format!("pipette-mem-estimator-{fp:016x}.idx"));
        let bytes = std::fs::read(&idx).unwrap();
        std::fs::write(&idx, &bytes[..bytes.len() / 2]).unwrap();
        let warm = TrainedEstimatorCache::with_dir(&dir);
        let reloaded = warm.get_or_train(&spec, &gpt, &config, &truth, 1);
        assert_eq!((warm.hits(), warm.misses()), (1, 0));
        assert_eq!(reloaded, trained);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_quarantines_and_heals_eagerly() {
        let (spec, gpt, config, truth) = tiny_inputs();
        let dir = std::env::temp_dir().join("pipette-estimator-cache-sweep");
        let _ = std::fs::remove_dir_all(&dir);
        let trained = {
            let cold = TrainedEstimatorCache::with_dir(&dir);
            cold.get_or_train(&spec, &gpt, &config, &truth, 1)
        };
        let fp = estimator_fingerprint(&spec, &gpt, &config, &truth);
        // Simulate a crash: a second entry died mid-write (truncated
        // JSON) and the good entry's snapshot got torn.
        std::fs::write(
            dir.join("pipette-mem-estimator-00000000deadbeef.json"),
            "{\"truncat",
        )
        .unwrap();
        let idx = dir.join(format!("pipette-mem-estimator-{fp:016x}.idx"));
        std::fs::write(&idx, b"torn").unwrap();
        let cache = TrainedEstimatorCache::with_dir(&dir);
        let report = cache.sweep();
        assert_eq!(
            report,
            SweepReport {
                scanned: 2,
                quarantined: 1,
                healed_indexes: 1,
            }
        );
        assert_eq!(cache.corrupt(), 1);
        // The torn entry is quarantined with its bytes intact...
        assert_eq!(
            std::fs::read_to_string(
                dir.join("pipette-mem-estimator-00000000deadbeef.json.corrupt")
            )
            .unwrap(),
            "{\"truncat"
        );
        // ...and the healed snapshot round-trips the good estimator.
        assert_eq!(
            super::super::mmap_index::read_index(&idx, fp),
            Some(trained)
        );
        // A second sweep finds a fully healthy directory.
        assert_eq!(
            cache.sweep(),
            SweepReport {
                scanned: 1,
                quarantined: 0,
                healed_indexes: 0,
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plain_miss_is_not_corrupt() {
        let (spec, gpt, config, truth) = tiny_inputs();
        let dir = std::env::temp_dir().join("pipette-estimator-cache-plain-miss");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = TrainedEstimatorCache::with_dir(&dir);
        let _ = cache.get_or_train(&spec, &gpt, &config, &truth, 1);
        assert_eq!(
            cache.counters(),
            CacheCounters {
                hits: 0,
                misses: 1,
                corrupt: 0,
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
