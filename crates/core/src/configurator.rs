//! Algorithm 1 — the Pipette procedure.
//!
//! ```text
//! BW ← network_profile()
//! for Conf ∈ {(pp, tp, dp) | pp·tp·dp = G}:
//!   for bs_micro ∈ divisors(bs_mini):
//!     if MemEstimator(Conf, bs_micro) > M_limit: continue
//!     while Map ← SA_NextMap(Map):
//!       T ← LatEstimator(Conf, Map, bs_mini, bs_micro, BW)
//!       keep the best (Conf, Map, T)
//! ```
//!
//! Two ablation points mirror the paper's Fig. 6: `PPT-L` (latency +
//! memory estimators, identity mapping) and `PPT-LF` (adding fine-grained
//! worker dedication).

use crate::cancel::{CancelToken, DeadlineReport};
use crate::error::ConfigureError;
use crate::latency::{LatencyExplanation, PipetteLatencyModel};
use crate::mapping::{
    AnnealStats, Annealer, AnnealerConfig, IncrementalObjective, NoOpObserver,
    ParallelTemperingAnnealer, TemperingSchedule,
};
use crate::memory::{
    analytic_prior, collect_samples_cancellable, collect_samples_parallel, CacheCounters,
    MemoryEstimator, MemoryEstimatorConfig, MemorySample, SampleSpec, TrainedEstimatorCache,
};
use crate::parallel;
use crate::report::OverheadReport;
use crate::telemetry::{self, SaTraceObserver};
use pipette_cluster::{Cluster, ProfiledBandwidth, ProfilingCost};
use pipette_model::{BatchConfig, GptConfig, MicrobatchPlan, ParallelConfig};
use pipette_obs::{CostUnit, EventKind, Metrics, Trace, SCHEMA_VERSION};
use pipette_sim::{ClusterRun, ComputeProfiler, Mapping, MemorySim, ProfiledCompute};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Knobs of the Pipette procedure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipetteOptions {
    /// Largest microbatch size considered (the paper sweeps 1–8).
    pub max_micro: u64,
    /// Enable fine-grained worker dedication (PPT-LF); disable for the
    /// PPT-L ablation.
    pub use_worker_dedication: bool,
    /// Simulated-annealing budget per annealed candidate.
    pub annealer: AnnealerConfig,
    /// How many of the best candidates (by identity-mapping estimate) get
    /// an SA pass. Annealing every candidate matches Algorithm 1 exactly
    /// but wastes budget on hopeless configurations.
    pub sa_top_k: usize,
    /// Memory-estimator training protocol (used only when no pretrained
    /// estimator is supplied).
    pub memory: MemoryEstimatorConfig,
    /// Seed for profiling noise and annealing.
    pub seed: u64,
    /// Worker threads for candidate evaluation and the SA passes. Every
    /// unit of work is seeded by its index, so the result is identical at
    /// any thread count; `1` runs fully inline. Defaults to the machine's
    /// available parallelism.
    pub threads: usize,
    /// Cap on [`Recommendation::alternatives`] — the paper surfaces a
    /// short ranked list, not the whole (often hundreds-deep) feasible set.
    pub top_n: usize,
    /// Parallel-tempering replicas per SA pass. `1` (the default) runs
    /// the classic single chain, bit-identical to every earlier release.
    /// Deliberately *not* defaulted from `threads`: the recommendation
    /// must never depend on the machine's core count, so widening the
    /// ladder is an explicit opt-in ([`PipetteOptions::with_tempering`]).
    #[serde(default = "default_replicas")]
    pub replicas: usize,
    /// Iterations each tempering chain runs between replica-exchange
    /// rounds. Ignored when `replicas == 1`.
    #[serde(default = "default_exchange_interval")]
    pub exchange_interval: usize,
}

fn default_replicas() -> usize {
    1
}

fn default_exchange_interval() -> usize {
    TemperingSchedule::default().exchange_interval
}

impl Default for PipetteOptions {
    fn default() -> Self {
        Self {
            max_micro: 8,
            use_worker_dedication: true,
            annealer: AnnealerConfig::default(),
            sa_top_k: 4,
            memory: MemoryEstimatorConfig::default(),
            seed: 0,
            threads: parallel::default_threads(),
            top_n: 10,
            replicas: default_replicas(),
            exchange_interval: default_exchange_interval(),
        }
    }
}

impl PipetteOptions {
    /// A configuration small enough for unit tests and doc tests.
    pub fn fast_test() -> Self {
        Self {
            annealer: AnnealerConfig::fast_test(),
            sa_top_k: 2,
            memory: MemoryEstimatorConfig {
                train: pipette_mlp::TrainConfig {
                    iterations: 1_200,
                    learning_rate: 3e-3,
                    batch_size: 64,
                    record_every: 400,
                    seed: 0,
                },
                hidden: 32,
                depth: 2,
                soft_margin: 0.08,
                seed: 0,
            },
            ..Self::default()
        }
    }

    /// The PPT-L ablation: latency + memory estimators, no worker
    /// dedication.
    pub fn latency_only(mut self) -> Self {
        self.use_worker_dedication = false;
        self
    }

    /// Opts into parallel tempering with a ladder sized for `threads`
    /// workers ([`TemperingSchedule::for_threads`]). The result is still
    /// bit-identical at any *runtime* thread count — only this explicit
    /// replica choice changes the search trajectory.
    pub fn with_tempering(mut self, threads: usize) -> Self {
        let schedule = TemperingSchedule::for_threads(threads);
        self.replicas = schedule.replicas;
        self.exchange_interval = schedule.exchange_interval;
        self
    }
}

/// One scored candidate before annealing.
#[derive(Debug, Clone)]
struct Candidate {
    config: ParallelConfig,
    plan: MicrobatchPlan,
    compute: ProfiledCompute,
    identity_estimate: f64,
    /// Term breakdown of `identity_estimate`; recorded only on traced
    /// runs (`None` keeps the untraced path allocation-free).
    explanation: Option<LatencyExplanation>,
}

/// One ranked runner-up configuration (identity-mapping estimate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alternative {
    /// The runner-up `(pp, tp, dp)`.
    pub config: ParallelConfig,
    /// Its microbatch plan.
    pub plan: MicrobatchPlan,
    /// Its identity-mapping latency estimate (seconds).
    pub estimated_seconds: f64,
}

/// Parallel-tempering shape and exchange outcome of the winning run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TemperingSummary {
    /// Chains per SA pass.
    pub replicas: usize,
    /// Iterations between exchange rounds.
    pub exchange_interval: usize,
    /// Adjacent-pair swap decisions taken across all annealed candidates.
    pub exchanges_attempted: usize,
    /// Decisions that swapped states.
    pub exchanges_accepted: usize,
}

/// Predicted memory position of the recommendation on its GPUs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryHeadroom {
    /// Estimator-predicted peak bytes per GPU.
    pub predicted_bytes: u64,
    /// Per-GPU memory capacity.
    pub limit_bytes: u64,
    /// Soft margin the screen applied on top of the raw prediction.
    pub soft_margin: f64,
}

impl MemoryHeadroom {
    /// `1 − predicted/limit`: slack before the raw prediction exhausts
    /// the GPU (the soft margin eats into this from below).
    pub fn headroom_fraction(&self) -> f64 {
        1.0 - self.predicted_bytes as f64 / self.limit_bytes as f64
    }
}

/// Pipette's final answer.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// Chosen `(pp, tp, dp)`.
    pub config: ParallelConfig,
    /// Chosen microbatch plan.
    pub plan: MicrobatchPlan,
    /// Chosen worker → GPU mapping.
    pub mapping: Mapping,
    /// Estimated iteration latency of the recommendation (seconds).
    pub estimated_seconds: f64,
    /// Eq. 3–6 decomposition of that estimate under the chosen mapping,
    /// with the straggler-link identity; `breakdown.terms.total_seconds`
    /// is bit-identical to `estimated_seconds`.
    pub breakdown: LatencyExplanation,
    /// Predicted memory position of the winner.
    pub memory: MemoryHeadroom,
    /// Configuration-time cost breakdown (Table II).
    pub overhead: OverheadReport,
    /// Candidates examined (Algorithm 1's loop trips).
    pub examined: usize,
    /// Candidates rejected by the memory estimator.
    pub memory_rejected: usize,
    /// Annealing statistics of the winning candidate (None for PPT-L).
    /// Under tempering this is the merged view (counters summed across
    /// replicas, best cost over the ladder).
    pub anneal_stats: Option<AnnealStats>,
    /// Parallel-tempering shape and exchange counters (None for the
    /// single-chain path and for PPT-L).
    pub tempering: Option<TemperingSummary>,
    /// Estimator-cache counters, when a cache was attached.
    pub cache_counters: Option<CacheCounters>,
    /// Runner-up candidates (identity mapping), best first — Pipette's
    /// ranked fallback list should the top pick fail to launch, capped at
    /// [`PipetteOptions::top_n`].
    pub alternatives: Vec<Alternative>,
    /// Logical deadline accounting, when a budget was set via
    /// [`Pipette::with_deadline_units`]; `None` on unbudgeted runs.
    pub deadline: Option<DeadlineReport>,
}

/// The memory model the screen runs against: the learned MLP on the
/// happy path, the analytic baseline \[20\] when estimator training has
/// degenerated under faults (the last rung of the degradation ladder).
#[derive(Debug, Clone)]
enum MemoryModel {
    Learned(MemoryEstimator),
    Analytic {
        margin: f64,
        seq_len: usize,
        vocab: usize,
    },
}

impl MemoryModel {
    fn predict_bytes(&self, features: &[f64; 10]) -> u64 {
        match self {
            MemoryModel::Learned(e) => e.predict_bytes(features),
            MemoryModel::Analytic { seq_len, vocab, .. } => {
                analytic_prior(features, *seq_len, *vocab) as u64
            }
        }
    }

    fn is_runnable_batch(
        &self,
        features: &[[f64; 10]],
        limit_bytes: u64,
        threads: usize,
    ) -> Vec<bool> {
        match self {
            MemoryModel::Learned(e) => e.is_runnable_batch(features, limit_bytes, threads),
            MemoryModel::Analytic {
                margin,
                seq_len,
                vocab,
            } => features
                .iter()
                .map(|f| analytic_prior(f, *seq_len, *vocab) * (1.0 + margin) <= limit_bytes as f64)
                .collect(),
        }
    }

    fn soft_margin(&self) -> f64 {
        match self {
            MemoryModel::Learned(e) => e.soft_margin(),
            MemoryModel::Analytic { margin, .. } => *margin,
        }
    }
}

/// The Pipette configurator (Algorithm 1).
#[derive(Debug, Clone)]
pub struct Pipette<'a> {
    cluster: &'a Cluster,
    gpt: &'a GptConfig,
    global_batch: u64,
    options: PipetteOptions,
    pretrained: Option<MemoryEstimator>,
    estimator_cache: Option<&'a TrainedEstimatorCache>,
    /// A pre-measured bandwidth matrix (robust profiling under faults)
    /// that replaces the in-run profiling sweep when present.
    profiled_override: Option<(ProfiledBandwidth, ProfilingCost)>,
    /// Screen with the analytic memory model instead of training an MLP
    /// (the degradation ladder's last rung).
    analytic_memory: bool,
    /// Logical deadline budget (Table II units); phases charge against it
    /// and the SA passes are truncated deterministically when it runs low.
    deadline_units: Option<u64>,
    /// Cooperative cancellation, polled by the SA step loops and the
    /// profiling sweep.
    cancel: Option<CancelToken>,
}

impl<'a> Pipette<'a> {
    /// Creates a configurator for a cluster, model, and global batch size.
    pub fn new(
        cluster: &'a Cluster,
        gpt: &'a GptConfig,
        global_batch: u64,
        options: PipetteOptions,
    ) -> Self {
        Self {
            cluster,
            gpt,
            global_batch,
            options,
            pretrained: None,
            estimator_cache: None,
            profiled_override: None,
            analytic_memory: false,
            deadline_units: None,
            cancel: None,
        }
    }

    /// Supplies a pretrained memory estimator (training is once per
    /// cluster; reuse it across configurator invocations).
    pub fn with_memory_estimator(mut self, estimator: MemoryEstimator) -> Self {
        self.pretrained = Some(estimator);
        self
    }

    /// Attaches a [`TrainedEstimatorCache`]: [`Self::run`] looks the
    /// estimator up by its training-input fingerprint and only trains on a
    /// miss. Cached estimators are bit-exact copies of what training
    /// would produce, so recommendations are identical cold or warm. A
    /// supplied pretrained estimator still takes precedence.
    pub fn with_estimator_cache(mut self, cache: &'a TrainedEstimatorCache) -> Self {
        self.estimator_cache = Some(cache);
        self
    }

    /// Supplies an already-measured bandwidth matrix (and its cost) in
    /// place of the in-run profiling sweep. Degraded runs use this to
    /// feed the robustly-profiled matrix of the surviving subcluster into
    /// the search.
    pub fn with_profiled(mut self, profiled: ProfiledBandwidth, cost: ProfilingCost) -> Self {
        self.profiled_override = Some((profiled, cost));
        self
    }

    /// Screens candidates with the analytic memory model \[20\] instead
    /// of training the MLP — the explicit fallback when estimator
    /// training degenerates (too few / collapsed profiling samples).
    /// The analytic model overestimates less precisely than the learned
    /// one, so recommendations may be more conservative, but the run
    /// always completes.
    pub fn with_analytic_memory(mut self) -> Self {
        self.analytic_memory = true;
        self
    }

    /// Sets a *logical* deadline budget, in the Table II cost units the
    /// trace spans already report: profiled pairs + estimator-training
    /// iterations + screened/estimated candidates + SA iterations. Phases
    /// charge against the budget in a fixed sequential order, so the same
    /// request, budget, and seed spend identically at any thread count.
    /// When the budget runs low the run degrades deterministically —
    /// estimator training falls back to the analytic model, SA passes are
    /// shortened or skipped — and the recommendation carries a
    /// [`DeadlineReport`] with `truncated = true`. Only a budget exhausted
    /// before *any* candidate estimate exists yields
    /// [`ConfigureError::DeadlineExpired`] (there is no best-so-far to
    /// return).
    pub fn with_deadline_units(mut self, budget_units: u64) -> Self {
        self.deadline_units = Some(budget_units);
        self
    }

    /// Attaches a cooperative [`CancelToken`], polled by the SA step
    /// loops (at their existing wall-clock checkpoint cadence) and by the
    /// profiling sweep. Cancellation is best-so-far, never an error: SA
    /// passes return the best mapping found, and a sweep cancelled before
    /// training falls back to the analytic memory model. An un-cancelled
    /// token leaves the run bit-identical.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Rejects unusable inputs before any search work: a bandwidth matrix
    /// carrying NaN/zero/negative links, or a GPU spec with no memory.
    /// Catching these up front turns what would be silent nonsense deep in
    /// the cost model into typed [`ConfigureError`]s.
    fn validate_inputs(&self) -> Result<(), ConfigureError> {
        let topo = self.cluster.topology();
        let bw = self.cluster.bandwidth();
        for a in topo.gpus() {
            for b in topo.gpus() {
                if a == b {
                    continue;
                }
                let value = bw.between(a, b);
                if !(value.is_finite() && value > 0.0) {
                    return Err(ConfigureError::InvalidBandwidth {
                        from: a.0,
                        to: b.0,
                        value,
                    });
                }
            }
        }
        if self.cluster.gpu().memory_bytes == 0 {
            return Err(ConfigureError::InvalidCluster {
                reason: "GPU spec reports zero memory capacity".to_string(),
            });
        }
        Ok(())
    }

    /// The profiling sweep for this cluster/model/batch (the paper's
    /// ≤ 4-node protocol over a ladder of model scales) and the
    /// ground-truth simulator it runs against.
    pub fn profiling_spec(&self) -> (SampleSpec, MemorySim) {
        let truth = ClusterRun::new(self.cluster, self.gpt).memory_sim();
        let nodes = self.cluster.topology().num_nodes().min(4);
        let gpus_per_node = self.cluster.topology().gpus_per_node();
        let mut gpu_counts: Vec<usize> = (1..=nodes).map(|n| n * gpus_per_node).collect();
        gpu_counts.dedup();
        let mut global_batches = vec![
            self.global_batch.min(128),
            self.global_batch.min(256),
            self.global_batch,
        ];
        global_batches.sort_unstable();
        global_batches.dedup();
        let spec = SampleSpec {
            gpu_counts,
            gpus_per_node,
            models: model_ladder(self.gpt),
            global_batches,
            max_micro: self.options.max_micro,
        };
        (spec, truth)
    }

    /// Trains a memory estimator for this cluster following the paper's
    /// protocol (≤ 4-node profiling sweep over a ladder of model scales).
    pub fn train_memory_estimator(&self) -> (MemoryEstimator, Duration, Vec<MemorySample>) {
        // pipette-lint: allow(D1) -- wall time feeds the report's training_seconds extra only; the trained weights depend on the seed alone
        let start = Instant::now();
        let (spec, truth) = self.profiling_spec();
        let samples = collect_samples_parallel(&spec, &truth, self.options.threads);
        let estimator = MemoryEstimator::train_with_threads(
            &samples,
            &self.options.memory,
            self.options.threads,
        );
        (estimator, start.elapsed(), samples)
    }

    /// Runs Algorithm 1.
    ///
    /// # Errors
    ///
    /// [`ConfigureError::NoValidBatchSplit`] if no configuration divides
    /// the global batch; [`ConfigureError::NoFeasibleConfig`] if every
    /// candidate is rejected by the memory estimator.
    pub fn run(&self) -> Result<Recommendation, ConfigureError> {
        self.run_with(None)
    }

    /// [`Self::run`] recording a structured event trace of the whole
    /// procedure — memory-estimator training, the screen, every
    /// candidate's Eq. 3–6 latency terms, the SA passes, and the final
    /// recommendation — into `trace` (see DESIGN.md §7d for the schema).
    ///
    /// Tracing never changes the search: the recommendation is
    /// bit-identical to [`Self::run`], and the event stream itself is
    /// identical at any `threads` setting (parallel SA passes record into
    /// child traces absorbed in candidate order).
    pub fn run_traced(&self, trace: &mut Trace) -> Result<Recommendation, ConfigureError> {
        self.run_with(Some(trace))
    }

    pub(crate) fn run_with(
        &self,
        mut trace: Option<&mut Trace>,
    ) -> Result<Recommendation, ConfigureError> {
        let topo = self.cluster.topology();
        self.validate_inputs()?;
        if let Some(t) = trace.as_deref_mut() {
            t.push(EventKind::RunStart {
                schema: SCHEMA_VERSION,
                seed: self.options.seed,
                gpus: topo.num_gpus(),
                global_batch: self.global_batch,
            });
        }

        // Logical deadline accounting: each phase charges the same units
        // its trace span reports (the Table II cost model), sequentially,
        // so the spend — and every truncation decision below — is a pure
        // function of the request, budget, and seed.
        let budget = self.deadline_units;
        let mut spent_units: u64 = 0;
        let mut truncated = false;

        // Line 1: profile the actual bandwidth matrix (or accept the
        // caller's robustly-profiled one — no in-run profiling, hence no
        // profile span and no profiling charge; the robust path records
        // its own).
        let (profiled, profiling_cost) = match &self.profiled_override {
            Some((p, c)) => (p.clone(), *c),
            None => {
                let span = trace.as_deref_mut().map(|t| t.open_span("profile"));
                let result = self
                    .cluster
                    .profiler()
                    .profile(self.cluster.bandwidth(), self.options.seed);
                let gpus = topo.num_gpus() as u64;
                let pairs = gpus * gpus.saturating_sub(1);
                spent_units = spent_units.saturating_add(pairs);
                if let (Some(t), Some(g)) = (trace.as_deref_mut(), span) {
                    t.close_span(g, CostUnit::Pairs, pairs);
                }
                result
            }
        };

        // Deadline pre-check: estimator training is the dominant Table II
        // cost. If the remaining budget cannot cover the training
        // protocol, skip straight to the analytic rung instead of blowing
        // the budget inside training.
        let train_cost_units = self.options.memory.train.iterations as u64;
        let train_over_budget = !self.analytic_memory
            && self.pretrained.is_none()
            && budget.is_some_and(|b| spent_units.saturating_add(train_cost_units) > b);

        let analytic_model = || MemoryModel::Analytic {
            margin: self.options.memory.soft_margin,
            seq_len: self.gpt.seq_len,
            vocab: self.gpt.vocab,
        };

        // Memory model: pretrained > cached > trained now — or the
        // analytic fallback, which skips training entirely.
        let (memory_model, training_time) = if self.analytic_memory || train_over_budget {
            if train_over_budget {
                truncated = true;
                if let Some(t) = trace.as_deref_mut() {
                    t.push(EventKind::Fallback {
                        component: "memory_estimator".to_string(),
                        reason: format!(
                            "deadline budget: training needs {train_cost_units} units, {} remaining",
                            budget.unwrap_or(0).saturating_sub(spent_units)
                        ),
                    });
                }
            }
            (analytic_model(), Duration::ZERO)
        } else {
            let mut mem_span = trace.as_deref_mut().map(|t| t.open_span("mem_train"));
            // `None` means the profiling sweep observed cancellation: a
            // partial corpus must never train, so the run drops to the
            // analytic rung below.
            let trained: Option<(MemoryEstimator, Duration, bool)> =
                match (&self.pretrained, self.estimator_cache) {
                    (Some(e), _) => Some((e.clone(), Duration::ZERO, true)),
                    (None, Some(cache)) => {
                        // pipette-lint: allow(D1) -- wall time feeds the cache-timing extra only; the recommendation depends on the seed alone
                        let start = Instant::now();
                        let (spec, truth) = self.profiling_spec();
                        let hits_before = cache.hits();
                        let e = cache.get_or_train(
                            &spec,
                            self.gpt,
                            &self.options.memory,
                            &truth,
                            self.options.threads,
                        );
                        Some((e, start.elapsed(), cache.hits() > hits_before))
                    }
                    (None, None) => match &self.cancel {
                        Some(token) => {
                            // pipette-lint: allow(D1) -- wall time feeds the report's training_seconds only; the trained weights depend on the seed alone
                            let start = Instant::now();
                            let (spec, truth) = self.profiling_spec();
                            collect_samples_cancellable(
                                &spec,
                                &truth,
                                self.options.threads,
                                Some(token),
                            )
                            .map(|samples| {
                                let e = MemoryEstimator::train_with_threads(
                                    &samples,
                                    &self.options.memory,
                                    self.options.threads,
                                );
                                (e, start.elapsed(), false)
                            })
                        }
                        None => {
                            let (e, t, _) = self.train_memory_estimator();
                            Some((e, t, false))
                        }
                    },
                };
            match trained {
                Some((estimator, training_time, cached)) => {
                    if !cached {
                        // Reused estimators (pretrained or cache hit) cost
                        // nothing — that is the point of reuse.
                        spent_units =
                            spent_units.saturating_add(estimator.train_summary().iterations as u64);
                    }
                    if let Some(t) = trace.as_deref_mut() {
                        let summary = estimator.train_summary();
                        t.push(EventKind::MemTrain {
                            samples: summary.samples,
                            iterations: summary.iterations,
                            final_loss: summary.final_loss,
                            cached,
                        });
                        for (i, &loss) in summary.loss_curve.iter().enumerate() {
                            t.push(EventKind::MemLoss {
                                iteration: i * summary.record_every,
                                loss,
                            });
                        }
                        if let Some(cache) = self.estimator_cache {
                            let c = cache.counters();
                            t.push(EventKind::CacheStats {
                                hits: c.hits,
                                misses: c.misses,
                                corrupt: c.corrupt,
                            });
                        }
                        if let Some(g) = mem_span.take() {
                            t.close_span(g, CostUnit::Iterations, summary.iterations as u64);
                        }
                    }
                    (MemoryModel::Learned(estimator), training_time)
                }
                None => {
                    if let Some(t) = trace.as_deref_mut() {
                        t.push(EventKind::Fallback {
                            component: "memory_estimator".to_string(),
                            reason: "profiling sweep cancelled before training".to_string(),
                        });
                        if let Some(g) = mem_span.take() {
                            t.close_span(g, CostUnit::Iterations, 0);
                        }
                    }
                    (analytic_model(), Duration::ZERO)
                }
            }
        };

        let limit = self.cluster.gpu().memory_bytes;
        let profiler = ComputeProfiler::default();
        let gpu = self.cluster.gpu().clone();
        let latency = PipetteLatencyModel::new(&profiled, self.gpt);

        // Lines 3-7: enumerate the candidate space (cheap), then
        // memory-filter + profile + estimate every entry on the worker
        // pool. Each unit of work depends only on its own `(cfg, plan)`,
        // so the fold below reproduces the sequential result exactly.
        let mut work: Vec<(ParallelConfig, MicrobatchPlan)> = Vec::new();
        let mut any_split = false;
        for cfg in
            ParallelConfig::enumerate(topo.num_gpus(), topo.gpus_per_node(), self.gpt.n_layers)
        {
            let Ok(mini) = BatchConfig::new(self.global_batch).minibatch(cfg.dp) else {
                continue;
            };
            any_split = true;
            work.extend(
                MicrobatchPlan::enumerate(mini, self.options.max_micro)
                    .into_iter()
                    .map(|plan| (cfg, plan)),
            );
        }
        let examined = work.len();

        // Line 5: the memory screen. All candidates go through the MLP in
        // a single batched forward pass — bit-identical to screening them
        // one row at a time (rows are independent), but one matmul per
        // layer instead of `examined` of them.
        let screen_span = trace.as_deref_mut().map(|t| t.open_span("mem_screen"));
        let features: Vec<[f64; 10]> = work
            .iter()
            .map(|&(cfg, plan)| {
                MemorySample::features_for(self.gpt, topo.num_gpus(), cfg, plan, self.global_batch)
            })
            .collect();
        // pipette-lint: allow(D1) -- wall time feeds the screening-latency trace extra only; the accept/reject decisions are seeded
        let t0 = Instant::now();
        let runnable = memory_model.is_runnable_batch(&features, limit, self.options.threads);
        let mem_time = t0.elapsed();
        spent_units = spent_units.saturating_add(examined as u64);

        if let Some(t) = trace.as_deref_mut() {
            let accepted = runnable.iter().filter(|&&r| r).count();
            t.push(EventKind::MemScreen {
                examined,
                accepted,
                rejected: examined - accepted,
            });
            if let Some(g) = screen_span {
                t.close_span(g, CostUnit::Candidates, examined as u64);
            }
        }

        // Deadline gate: past this point a recommendation can always be
        // assembled from best-so-far state, so this is the only place a
        // budget turns into a hard error — before any candidate has been
        // estimated. Every span opened so far is closed, so the trace
        // stays balanced.
        if let Some(b) = budget {
            if spent_units >= b {
                return Err(ConfigureError::DeadlineExpired {
                    budget_units: b,
                    spent_units,
                });
            }
        }

        // When tracing, the closure computes the term breakdown instead of
        // the bare estimate; `breakdown.total_seconds` is bit-identical to
        // `estimate()` (see `latency::terms`), so the search is unchanged.
        let tracing = trace.is_some();
        let estimate_span = trace.as_deref_mut().map(|t| t.open_span("estimates"));
        // Candidate ring: each worker keeps one Mapping buffer and resets
        // it in place per candidate (worker count always equals the GPU
        // count, so the buffer length never changes). The scratch is fully
        // overwritten by `set_identity`, so results stay thread-count
        // invariant.
        let evaluated = parallel::ordered_map_scratch(
            self.options.threads,
            &work,
            || None::<Mapping>,
            |ring, i, &(cfg, plan)| {
                if !runnable[i] {
                    return None;
                }
                let compute = profiler.profile(
                    self.cluster.bandwidth(),
                    &gpu,
                    self.gpt,
                    cfg,
                    plan,
                    self.options.seed,
                );
                let identity = ring.get_or_insert_with(|| Mapping::identity(cfg, *topo));
                identity.set_identity(cfg, *topo);
                let (est, explanation) = if tracing {
                    let ex = latency.breakdown(cfg, identity, plan, &compute);
                    (ex.terms.total_seconds, Some(ex))
                } else {
                    (latency.estimate(cfg, identity, plan, &compute), None)
                };
                Some(Candidate {
                    config: cfg,
                    plan,
                    compute,
                    identity_estimate: est,
                    explanation,
                })
            },
        );

        let mut candidates: Vec<Candidate> = Vec::with_capacity(evaluated.len());
        let mut rejected = 0usize;
        for (i, cand) in evaluated.into_iter().enumerate() {
            match cand {
                Some(c) => {
                    if let (Some(t), Some(ex)) = (trace.as_deref_mut(), c.explanation) {
                        telemetry::push_latency_estimate(t, i, c.config, c.plan, &ex);
                    }
                    candidates.push(c);
                }
                None => rejected += 1,
            }
        }
        spent_units = spent_units.saturating_add(candidates.len() as u64);
        if let Some(t) = trace.as_deref_mut() {
            if let Some(g) = estimate_span {
                t.close_span(g, CostUnit::Candidates, candidates.len() as u64);
            }
        }

        if !any_split {
            return Err(ConfigureError::NoValidBatchSplit {
                global_batch: self.global_batch,
            });
        }
        if candidates.is_empty() {
            return Err(ConfigureError::NoFeasibleConfig {
                examined,
                memory_rejected: rejected,
            });
        }
        candidates.sort_by(|a, b| a.identity_estimate.total_cmp(&b.identity_estimate));

        // Lines 9-15: fine-grained worker dedication on the most promising
        // candidates.
        let mut best_idx = 0usize;
        let mut best_mapping = Mapping::identity(candidates[0].config, *topo);
        let mut best_t = candidates[0].identity_estimate;
        let mut best_stats: Option<AnnealStats> = None;
        let mut tempering_summary: Option<TemperingSummary> = None;
        let mut sa_time = Duration::ZERO;
        let mut sa_evaluations = 0u64;
        let mut sa_accepted = 0u64;
        let mut sa_improvements = 0u64;
        let replicas = self.options.replicas.max(1);
        let cancel = self.cancel.as_ref();
        let mut anneal_span = if self.options.use_worker_dedication {
            trace.as_deref_mut().map(|t| t.open_span("anneal"))
        } else {
            None
        };

        if self.options.use_worker_dedication && replicas > 1 {
            // Parallel tempering: the thread budget moves *inside* each
            // pass (replicas spread across workers, rendezvousing at
            // exchange rounds), so candidates run sequentially. Every
            // chain is seeded by (candidate, replica) and exchanges are
            // keyed by (round, pair), so the result — and the merged
            // child-trace stream — is identical at any thread count.
            let k = self.options.sa_top_k.max(1).min(candidates.len());
            let schedule = TemperingSchedule {
                replicas,
                exchange_interval: self.options.exchange_interval.max(1),
                ..TemperingSchedule::default()
            };
            let mut exchanges_attempted = 0usize;
            let mut exchanges_accepted = 0usize;
            for (i, cand) in candidates[..k].iter().enumerate() {
                let initial = Mapping::identity(cand.config, *topo);
                let mut sa_cfg = self.options.annealer;
                sa_cfg.seed = self.options.seed.wrapping_add(i as u64);
                // Deadline cap: the remaining budget buys `remaining /
                // replicas` steps per chain; a zero cap still runs the
                // opening evaluations, so a fully-spent budget returns
                // the identity-mapped candidate instead of erroring.
                if let Some(b) = budget {
                    let per_replica = b.saturating_sub(spent_units) / replicas as u64;
                    let cap = sa_cfg
                        .iterations
                        .min(usize::try_from(per_replica).unwrap_or(usize::MAX));
                    if cap < sa_cfg.iterations {
                        truncated = true;
                    }
                    sa_cfg.iterations = cap;
                }
                spent_units = spent_units
                    .saturating_add((sa_cfg.iterations as u64).saturating_mul(replicas as u64));
                let pt = ParallelTemperingAnnealer::new(sa_cfg, schedule);
                let make_objective = |_replica: usize, init: &Mapping| {
                    IncrementalObjective::new(
                        latency.matrix(),
                        self.gpt,
                        cand.plan,
                        &cand.compute,
                        init,
                    )
                };
                let (mapping, cost, stats) = match trace.as_deref_mut() {
                    Some(t) => {
                        let mut children: Vec<Trace> = (0..replicas).map(|_| t.child()).collect();
                        let mut exchange_child = t.child();
                        let exchange_span = exchange_child.open_span("exchange");
                        let mut observers: Vec<SaTraceObserver> = children
                            .iter_mut()
                            .enumerate()
                            .map(|(r, c)| SaTraceObserver::for_replica(c, i, r))
                            .collect();
                        let result = pt.anneal_cancellable_observed(
                            self.options.threads,
                            &initial,
                            make_objective,
                            &mut observers,
                            |rec| telemetry::push_pt_exchange(&mut exchange_child, i, rec),
                            cancel,
                        );
                        for (observer, rstats) in observers.into_iter().zip(&result.2.replica_stats)
                        {
                            observer.finish(rstats);
                        }
                        exchange_child.close_span(
                            exchange_span,
                            CostUnit::Rounds,
                            result.2.exchanges_attempted as u64,
                        );
                        for child in children {
                            t.absorb(child);
                        }
                        t.absorb(exchange_child);
                        result
                    }
                    None => pt.anneal_cancellable(
                        self.options.threads,
                        &initial,
                        make_objective,
                        cancel,
                    ),
                };
                sa_time += stats.elapsed;
                exchanges_attempted += stats.exchanges_attempted;
                exchanges_accepted += stats.exchanges_accepted;
                let merged = stats.merged();
                sa_evaluations += merged.evaluations as u64;
                sa_accepted += merged.accepted as u64;
                sa_improvements += merged.improvements as u64;
                if cost < best_t {
                    best_idx = i;
                    best_mapping = mapping;
                    best_t = cost;
                    best_stats = Some(merged);
                }
            }
            tempering_summary = Some(TemperingSummary {
                replicas,
                exchange_interval: schedule.exchange_interval,
                exchanges_attempted,
                exchanges_accepted,
            });
        } else if self.options.use_worker_dedication {
            // Each pass is seeded by its candidate index and evaluated
            // through the incremental objective (bit-identical to the
            // closure path, see `mapping::objective`), so the annealed
            // results are independent of thread count and identical to the
            // old one-candidate-at-a-time loop. Traced passes record into
            // child traces that are absorbed below in candidate order —
            // the merged stream never depends on thread scheduling.
            let k = self.options.sa_top_k.max(1).min(candidates.len());
            // Deadline caps, precomputed sequentially in candidate order so
            // the per-candidate step budget — and thus the annealed result
            // — never depends on worker scheduling.
            let caps: Vec<usize> = (0..k)
                .map(|_| {
                    let full = self.options.annealer.iterations;
                    let cap = match budget {
                        Some(b) => full.min(
                            usize::try_from(b.saturating_sub(spent_units)).unwrap_or(usize::MAX),
                        ),
                        None => full,
                    };
                    if cap < full {
                        truncated = true;
                    }
                    spent_units = spent_units.saturating_add(cap as u64);
                    cap
                })
                .collect();
            let proto: Option<&Trace> = trace.as_deref();
            let annealed = parallel::ordered_map_scratch(
                self.options.threads,
                &candidates[..k],
                || None::<Mapping>,
                |ring, i, cand| {
                    let initial = ring.get_or_insert_with(|| Mapping::identity(cand.config, *topo));
                    initial.set_identity(cand.config, *topo);
                    let mut objective = IncrementalObjective::new(
                        latency.matrix(),
                        self.gpt,
                        cand.plan,
                        &cand.compute,
                        initial,
                    );
                    let mut sa_cfg = self.options.annealer;
                    sa_cfg.seed = self.options.seed.wrapping_add(i as u64);
                    sa_cfg.iterations = caps[i];
                    let annealer = Annealer::new(sa_cfg);
                    match proto.map(|p| p.child()) {
                        Some(mut child) => {
                            let mut observer = SaTraceObserver::new(&mut child, i);
                            let result = annealer.anneal_cancellable(
                                initial,
                                &mut objective,
                                &mut observer,
                                cancel,
                            );
                            observer.finish(&result.2);
                            (result, Some(child))
                        }
                        None => {
                            let result = annealer.anneal_cancellable(
                                initial,
                                &mut objective,
                                &mut NoOpObserver,
                                cancel,
                            );
                            (result, None)
                        }
                    }
                },
            );
            for (i, ((mapping, cost, stats), child)) in annealed.into_iter().enumerate() {
                if let (Some(t), Some(child)) = (trace.as_deref_mut(), child) {
                    t.absorb(child);
                }
                sa_time += stats.elapsed;
                sa_evaluations += stats.evaluations as u64;
                sa_accepted += stats.accepted as u64;
                sa_improvements += stats.improvements as u64;
                if cost < best_t {
                    best_idx = i;
                    best_mapping = mapping;
                    best_t = cost;
                    best_stats = Some(stats);
                }
            }
        }
        if let Some(t) = trace.as_deref_mut() {
            if let Some(g) = anneal_span.take() {
                t.close_span(g, CostUnit::Evals, sa_evaluations);
            }
        }

        let winner = &candidates[best_idx];
        let (best_cfg, best_plan) = (winner.config, winner.plan);

        // The winner's breakdown under its *final* (possibly annealed)
        // mapping; the batch and incremental paths share one reduction, so
        // this recomputation reproduces `best_t` bit for bit.
        let breakdown = latency.breakdown(best_cfg, &best_mapping, best_plan, &winner.compute);
        debug_assert_eq!(breakdown.terms.total_seconds.to_bits(), best_t.to_bits());
        let memory = MemoryHeadroom {
            predicted_bytes: memory_model.predict_bytes(&MemorySample::features_for(
                self.gpt,
                topo.num_gpus(),
                best_cfg,
                best_plan,
                self.global_batch,
            )),
            limit_bytes: limit,
            soft_margin: memory_model.soft_margin(),
        };

        let alternatives: Vec<Alternative> = candidates
            .iter()
            .filter(|c| !(c.config == best_cfg && c.plan == best_plan))
            .map(|c| Alternative {
                config: c.config,
                plan: c.plan,
                estimated_seconds: c.identity_estimate,
            })
            .take(self.options.top_n)
            .collect();

        if let Some(t) = trace {
            let finalize_span = t.open_span("finalize");
            t.push(EventKind::MemHeadroom {
                predicted_bytes: memory.predicted_bytes,
                limit_bytes: memory.limit_bytes,
                soft_margin: memory.soft_margin,
                headroom_fraction: memory.headroom_fraction(),
            });
            telemetry::push_recommendation(t, best_cfg, best_plan, &breakdown);
            if let Some(b) = budget {
                t.push(EventKind::Deadline {
                    budget_units: b,
                    spent_units,
                    truncated,
                });
            }
            for (rank, alt) in alternatives.iter().enumerate() {
                t.push(EventKind::Alternative {
                    rank: rank + 1,
                    pp: alt.config.pp,
                    tp: alt.config.tp,
                    dp: alt.config.dp,
                    micro_batch: alt.plan.micro_batch,
                    seconds: alt.estimated_seconds,
                    delta_seconds: alt.estimated_seconds - best_t,
                });
            }
            t.close_span(
                finalize_span,
                CostUnit::Candidates,
                alternatives.len() as u64,
            );

            // Run-level metrics, flushed after the last span so the
            // stream ends with a fixed counter/histogram block the
            // `explain` subcommand can render without replaying events.
            let mut metrics = Metrics::new();
            metrics.counter("candidates_examined").add(examined as u64);
            metrics
                .counter("candidates_memory_rejected")
                .add(rejected as u64);
            metrics
                .counter("candidates_estimated")
                .add(candidates.len() as u64);
            metrics.counter("sa_evaluations").add(sa_evaluations);
            metrics.counter("sa_accepted").add(sa_accepted);
            metrics.counter("sa_improvements").add(sa_improvements);
            if let Some(ts) = &tempering_summary {
                metrics
                    .counter("pt_exchanges_attempted")
                    .add(ts.exchanges_attempted as u64);
                metrics
                    .counter("pt_exchanges_accepted")
                    .add(ts.exchanges_accepted as u64);
            }
            let estimates = metrics.histogram("candidate_estimate_seconds");
            for c in &candidates {
                estimates.record(c.identity_estimate);
            }
            metrics.emit_into(t);
        }

        Ok(Recommendation {
            config: best_cfg,
            plan: best_plan,
            mapping: best_mapping,
            estimated_seconds: best_t,
            breakdown,
            memory,
            overhead: OverheadReport {
                bandwidth_profiling: Duration::from_secs_f64(profiling_cost.seconds),
                simulated_annealing: sa_time,
                memory_estimation: mem_time,
                memory_training: training_time,
            },
            examined,
            memory_rejected: rejected,
            anneal_stats: best_stats,
            tempering: tempering_summary,
            cache_counters: self.estimator_cache.map(TrainedEstimatorCache::counters),
            alternatives,
            deadline: budget.map(|b| DeadlineReport {
                budget_units: b,
                spent_units,
                truncated,
            }),
        })
    }
}

/// A ladder of model scales around the target, used to give the memory
/// estimator coverage in `n_layers`/`hidden`/`n_heads` (Eq. 7 features).
fn model_ladder(gpt: &GptConfig) -> Vec<GptConfig> {
    let mut ladder = vec![*gpt];
    let heads = gpt.n_heads;
    let scaled_hidden =
        |num: usize, den: usize| ((gpt.hidden * num / den) / heads * heads).max(heads);
    for (ln, ld, hn, hd) in [
        (1usize, 2usize, 1usize, 2usize),
        (3, 4, 3, 4),
        (1, 2, 1, 1),
        (1, 1, 1, 2),
        (1, 4, 1, 2),
    ] {
        let layers = (gpt.n_layers * ln / ld).max(2);
        let hidden = scaled_hidden(hn, hd);
        let candidate = GptConfig::new(layers, hidden, heads, gpt.seq_len, gpt.vocab);
        if !ladder.contains(&candidate) {
            ladder.push(candidate);
        }
    }
    ladder
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipette_cluster::presets;
    use pipette_sim::SimError;

    fn setup() -> (pipette_cluster::Cluster, GptConfig) {
        (
            presets::mid_range(2).build(3),
            GptConfig::new(8, 1024, 16, 2048, 51200),
        )
    }

    #[test]
    fn recommends_a_runnable_configuration() {
        let (cluster, gpt) = setup();
        let rec = Pipette::new(&cluster, &gpt, 64, PipetteOptions::fast_test())
            .run()
            .expect("feasible space");
        // The recommendation must actually run on the ground-truth cluster.
        let run = ClusterRun::new(&cluster, &gpt);
        let measured = run
            .execute(rec.config, &rec.mapping, rec.plan)
            .expect("Pipette must not recommend OOM configs");
        assert!(measured.iteration_seconds > 0.0);
        assert!(rec.examined > 0);
    }

    #[test]
    fn worker_dedication_never_hurts_the_estimate() {
        let (cluster, gpt) = setup();
        let mut opts = PipetteOptions::fast_test();
        opts.seed = 5;
        let with_sa = Pipette::new(&cluster, &gpt, 64, opts).run().unwrap();
        let without = Pipette::new(&cluster, &gpt, 64, opts.latency_only())
            .run()
            .unwrap();
        assert!(with_sa.estimated_seconds <= without.estimated_seconds + 1e-9);
        assert!(without.anneal_stats.is_none());
    }

    #[test]
    fn overhead_report_is_populated() {
        let (cluster, gpt) = setup();
        let rec = Pipette::new(&cluster, &gpt, 64, PipetteOptions::fast_test())
            .run()
            .unwrap();
        assert!(rec.overhead.bandwidth_profiling.as_secs_f64() > 0.0);
        assert!(rec.overhead.memory_training.as_secs_f64() > 0.0);
        assert!(rec.overhead.total().as_secs_f64() > 0.0);
    }

    #[test]
    fn pretrained_estimator_is_reused() {
        let (cluster, gpt) = setup();
        let pip = Pipette::new(&cluster, &gpt, 64, PipetteOptions::fast_test());
        let (est, _, _) = pip.train_memory_estimator();
        let rec = pip.with_memory_estimator(est).run().unwrap();
        assert_eq!(rec.overhead.memory_training, Duration::ZERO);
    }

    #[test]
    fn infeasible_batch_is_reported() {
        let (cluster, _gpt) = setup();
        // A ~51B-parameter model: even fully split over 16 V100s, the
        // model state alone exceeds every GPU.
        let huge = GptConfig::new(16, 16384, 32, 2048, 51200);
        let err = Pipette::new(&cluster, &huge, 512, PipetteOptions::fast_test())
            .run()
            .expect_err("a 51B model cannot fit on 16 V100s");
        assert!(matches!(err, ConfigureError::NoFeasibleConfig { .. }));
        // And the ground truth agrees that e.g. the MLM-style config OOMs.
        let run = ClusterRun::new(&cluster, &huge);
        let cfg = ParallelConfig::new(2, 8, 1);
        let mapping = Mapping::identity(cfg, *cluster.topology());
        assert!(matches!(
            run.execute(cfg, &mapping, MicrobatchPlan::new(512, 8).unwrap()),
            Err(SimError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn model_ladder_contains_target_and_smaller() {
        let g = GptConfig::gpt_3_1b();
        let ladder = model_ladder(&g);
        assert!(ladder.contains(&g));
        assert!(ladder.iter().any(|m| m.num_params() < g.num_params()));
        for m in &ladder {
            assert_eq!(m.hidden % m.n_heads, 0);
        }
    }
}
