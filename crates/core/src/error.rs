//! Error types for the configurator.

use std::error::Error;
use std::fmt;

/// Errors produced while searching for a configuration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigureError {
    /// No `(pp, tp, dp, microbatch)` combination satisfied the memory
    /// limit.
    NoFeasibleConfig {
        /// Candidates examined.
        examined: usize,
        /// Candidates rejected by the memory estimator.
        memory_rejected: usize,
    },
    /// The global batch is not divisible by any candidate `dp`.
    NoValidBatchSplit {
        /// The requested global batch.
        global_batch: u64,
    },
    /// A structural problem with the requested configuration space.
    Invalid(pipette_model::ModelError),
    /// The cluster's bandwidth matrix carries a non-finite or
    /// non-positive off-diagonal entry.
    InvalidBandwidth {
        /// Source GPU of the offending link.
        from: usize,
        /// Destination GPU of the offending link.
        to: usize,
        /// The offending value (GiB/s).
        value: f64,
    },
    /// The cluster description is unusable (e.g. zero-capacity GPUs).
    InvalidCluster {
        /// What is wrong with it.
        reason: String,
    },
    /// A fault plan failed every GPU; there is nothing left to configure.
    ClusterExhausted {
        /// GPUs taken out by the plan.
        failed_gpus: usize,
        /// GPUs the cluster had.
        total_gpus: usize,
    },
    /// An error surfaced by the cluster layer (fault-plan validation,
    /// subcluster selection).
    Cluster(pipette_cluster::ClusterError),
    /// The logical deadline budget was exhausted before any candidate was
    /// estimated — there is no best-so-far recommendation to return.
    /// (Budgets that expire *after* estimation truncate the SA passes and
    /// still return a recommendation, flagged in
    /// [`crate::cancel::DeadlineReport::truncated`].)
    DeadlineExpired {
        /// The logical budget the run was given.
        budget_units: u64,
        /// Logical units already charged when the budget ran out.
        spent_units: u64,
    },
}

impl fmt::Display for ConfigureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigureError::NoFeasibleConfig { examined, memory_rejected } => write!(
                f,
                "no feasible configuration found ({examined} examined, {memory_rejected} rejected for memory)"
            ),
            ConfigureError::NoValidBatchSplit { global_batch } => {
                write!(f, "global batch {global_batch} cannot be split by any candidate dp")
            }
            ConfigureError::Invalid(e) => write!(f, "invalid search space: {e}"),
            ConfigureError::InvalidBandwidth { from, to, value } => write!(
                f,
                "bandwidth matrix entry gpu{from}->gpu{to} is {value}, must be finite and positive"
            ),
            ConfigureError::InvalidCluster { reason } => {
                write!(f, "invalid cluster: {reason}")
            }
            ConfigureError::ClusterExhausted {
                failed_gpus,
                total_gpus,
            } => write!(
                f,
                "fault plan fails {failed_gpus} of {total_gpus} GPUs; no subcluster survives"
            ),
            ConfigureError::Cluster(e) => write!(f, "cluster error: {e}"),
            ConfigureError::DeadlineExpired {
                budget_units,
                spent_units,
            } => write!(
                f,
                "deadline budget of {budget_units} logical units exhausted ({spent_units} spent) before any candidate was estimated"
            ),
        }
    }
}

impl Error for ConfigureError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConfigureError::Invalid(e) => Some(e),
            ConfigureError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pipette_model::ModelError> for ConfigureError {
    fn from(e: pipette_model::ModelError) -> Self {
        ConfigureError::Invalid(e)
    }
}

impl From<pipette_cluster::ClusterError> for ConfigureError {
    fn from(e: pipette_cluster::ClusterError) -> Self {
        ConfigureError::Cluster(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = ConfigureError::NoFeasibleConfig {
            examined: 40,
            memory_rejected: 40,
        };
        assert!(e.to_string().contains("40"));
        let e = ConfigureError::NoValidBatchSplit { global_batch: 13 };
        assert!(e.to_string().contains("13"));
        let e = ConfigureError::InvalidBandwidth {
            from: 2,
            to: 7,
            value: f64::NAN,
        };
        assert!(e.to_string().contains("gpu2") && e.to_string().contains("gpu7"));
        let e = ConfigureError::ClusterExhausted {
            failed_gpus: 16,
            total_gpus: 16,
        };
        assert!(e.to_string().contains("16"));
        let e = ConfigureError::from(pipette_cluster::ClusterError::EmptySelection);
        assert!(matches!(e, ConfigureError::Cluster(_)));
        assert!(e.to_string().contains("zero nodes"));
        let e = ConfigureError::DeadlineExpired {
            budget_units: 500,
            spent_units: 612,
        };
        assert!(e.to_string().contains("500") && e.to_string().contains("612"));
    }
}
