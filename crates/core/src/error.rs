//! Error types for the configurator.

use std::error::Error;
use std::fmt;

/// Errors produced while searching for a configuration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigureError {
    /// No `(pp, tp, dp, microbatch)` combination satisfied the memory
    /// limit.
    NoFeasibleConfig {
        /// Candidates examined.
        examined: usize,
        /// Candidates rejected by the memory estimator.
        memory_rejected: usize,
    },
    /// The global batch is not divisible by any candidate `dp`.
    NoValidBatchSplit {
        /// The requested global batch.
        global_batch: u64,
    },
    /// A structural problem with the requested configuration space.
    Invalid(pipette_model::ModelError),
}

impl fmt::Display for ConfigureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigureError::NoFeasibleConfig { examined, memory_rejected } => write!(
                f,
                "no feasible configuration found ({examined} examined, {memory_rejected} rejected for memory)"
            ),
            ConfigureError::NoValidBatchSplit { global_batch } => {
                write!(f, "global batch {global_batch} cannot be split by any candidate dp")
            }
            ConfigureError::Invalid(e) => write!(f, "invalid search space: {e}"),
        }
    }
}

impl Error for ConfigureError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConfigureError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pipette_model::ModelError> for ConfigureError {
    fn from(e: pipette_model::ModelError) -> Self {
        ConfigureError::Invalid(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = ConfigureError::NoFeasibleConfig {
            examined: 40,
            memory_rejected: 40,
        };
        assert!(e.to_string().contains("40"));
        let e = ConfigureError::NoValidBatchSplit { global_batch: 13 };
        assert!(e.to_string().contains("13"));
    }
}
