//! Configuration-overhead accounting (Table II).
//!
//! Pipette adds three one-off costs before training starts: bandwidth
//! profiling, simulated annealing, and memory-estimator inference. Table
//! II shows they total minutes against training runs of weeks — under
//! 0.05 % — while the better configuration saves days.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// Breakdown of Pipette's one-time configuration cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadReport {
    /// Simulated wall-clock of the bandwidth profiling run (Table II row 1).
    pub bandwidth_profiling: Duration,
    /// Wall-clock spent in simulated annealing (Table II row 2).
    pub simulated_annealing: Duration,
    /// Wall-clock spent in memory-estimator inference (Table II row 3).
    pub memory_estimation: Duration,
    /// Wall-clock spent training the memory estimator (one-time per
    /// cluster, amortized across all future configurations; reported
    /// separately from Table II's per-configuration rows).
    pub memory_training: Duration,
}

impl OverheadReport {
    /// Total per-configuration overhead (Table II "Total Conf. Time"
    /// counterpart; excludes the amortized estimator training).
    pub fn total(&self) -> Duration {
        self.bandwidth_profiling + self.simulated_annealing + self.memory_estimation
    }

    /// Overhead as a fraction of a full training run of
    /// `total_iterations × iteration_seconds`.
    pub fn overhead_fraction(&self, iteration_seconds: f64, total_iterations: u64) -> f64 {
        let training = iteration_seconds * total_iterations as f64;
        if training <= 0.0 {
            return 0.0;
        }
        self.total().as_secs_f64() / training
    }
}

impl fmt::Display for OverheadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "profiling {:.2}s + SA {:.2}s + mem-est {:.4}s = {:.2}s (estimator training {:.2}s amortized)",
            self.bandwidth_profiling.as_secs_f64(),
            self.simulated_annealing.as_secs_f64(),
            self.memory_estimation.as_secs_f64(),
            self.total().as_secs_f64(),
            self.memory_training.as_secs_f64(),
        )
    }
}

/// Days of wall-clock for `iterations` training steps at `seconds` each —
/// Table II's "AMP (300K)" / "Pipette (300K)" rows.
pub fn training_days(iteration_seconds: f64, iterations: u64) -> f64 {
    iteration_seconds * iterations as f64 / 86_400.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> OverheadReport {
        OverheadReport {
            bandwidth_profiling: Duration::from_secs_f64(119.6),
            simulated_annealing: Duration::from_secs_f64(790.5),
            memory_estimation: Duration::from_secs_f64(0.04),
            memory_training: Duration::from_secs_f64(60.0),
        }
    }

    #[test]
    fn total_matches_table_two_shape() {
        // 119.62 + 790.51 + 0.04 ≈ 910 s ≈ 15.2 min (Table II mid-range
        // 16-node column totals 13.2 min with their SA budget).
        let t = report().total().as_secs_f64();
        assert!((t - 910.14).abs() < 0.01);
    }

    #[test]
    fn overhead_is_negligible_at_300k_iterations() {
        // 10 s iterations × 300K ≈ 35 days; 910 s of configuration is
        // ~0.03 % — the paper reports ≤ 0.05 %.
        let frac = report().overhead_fraction(10.0, 300_000);
        assert!(frac < 0.0005, "fraction {frac}");
    }

    #[test]
    fn training_days_arithmetic() {
        // Table II: 10.9 s/iter × 300K ≈ 37.8 days.
        let days = training_days(10.87, 300_000);
        assert!((days - 37.74).abs() < 0.05);
    }

    #[test]
    fn display_mentions_all_rows() {
        let s = report().to_string();
        assert!(s.contains("profiling") && s.contains("SA") && s.contains("mem-est"));
    }
}
