//! The logical-worker → physical-GPU mapping (the paper's Eq. 2).
//!
//! Given a parallel configuration, a [`Mapping`] is a bijection from worker
//! coordinates `(stage, tensor, data)` onto GPU ids. Fine-grained worker
//! dedication (§IV) searches this space; everything else (the simulator,
//! the latency estimator) only *reads* it.

use pipette_cluster::{ClusterTopology, GpuId};
use pipette_model::{ParallelConfig, WorkerId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 1:1 assignment of logical workers to GPUs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    config: ParallelConfig,
    /// `assign[worker_linear_index] = gpu`.
    assign: Vec<GpuId>,
}

impl Mapping {
    /// The conventional ("alphabetical", Fig. 4a) placement: worker with
    /// linear index `i` on GPU `i`. Because [`ParallelConfig::index_of`]
    /// makes the tensor rank the fastest dimension, tensor groups land on
    /// consecutive GPUs of one node whenever `tp` divides the node size.
    ///
    /// # Panics
    ///
    /// Panics if the worker count does not equal the GPU count.
    pub fn identity(config: ParallelConfig, topology: ClusterTopology) -> Self {
        debug_assert_eq!(
            config.num_workers(),
            topology.num_gpus(),
            "mapping requires as many workers as GPUs"
        );
        Self {
            config,
            assign: topology.gpus().collect(),
        }
    }

    /// Resets this mapping in place to [`Self::identity`] for a (possibly
    /// different) configuration over the same GPU count — the candidate-
    /// ring reuse path: the assignment buffer is recycled, never
    /// reallocated, as long as the worker count is unchanged.
    pub fn set_identity(&mut self, config: ParallelConfig, topology: ClusterTopology) {
        debug_assert_eq!(
            config.num_workers(),
            topology.num_gpus(),
            "mapping requires as many workers as GPUs"
        );
        self.config = config;
        self.assign.clear();
        self.assign.extend(topology.gpus());
    }

    /// Builds a mapping from an explicit assignment vector indexed by the
    /// worker linear index.
    ///
    /// # Panics
    ///
    /// Panics if `assign` is not a permutation of `0..num_workers`.
    pub fn from_assignment(config: ParallelConfig, assign: Vec<GpuId>) -> Self {
        debug_assert_eq!(
            assign.len(),
            config.num_workers(),
            "assignment length mismatch"
        );
        let mut seen = vec![false; assign.len()];
        for g in &assign {
            debug_assert!(g.0 < assign.len(), "gpu id {g} out of range");
            debug_assert!(!seen[g.0], "gpu {g} assigned twice");
            seen[g.0] = true;
        }
        Self { config, assign }
    }

    /// The parallel configuration this mapping is defined for.
    pub fn config(&self) -> ParallelConfig {
        self.config
    }

    /// GPU hosting the given worker.
    pub fn gpu_of(&self, w: WorkerId) -> GpuId {
        self.assign[self.config.index_of(w)]
    }

    /// GPU hosting the worker with linear index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn gpu_at(&self, idx: usize) -> GpuId {
        self.assign[idx]
    }

    /// The raw assignment slice (worker linear index → GPU).
    pub fn as_slice(&self) -> &[GpuId] {
        &self.assign
    }

    /// Mutable access for in-place move application (used by the simulated
    /// annealer). The caller must preserve the permutation property.
    pub fn as_mut_slice(&mut self) -> &mut [GpuId] {
        &mut self.assign
    }

    /// Whether the assignment is a valid permutation.
    pub fn is_permutation(&self) -> bool {
        let mut seen = vec![false; self.assign.len()];
        for g in &self.assign {
            if g.0 >= self.assign.len() || seen[g.0] {
                return false;
            }
            seen[g.0] = true;
        }
        true
    }

    /// GPUs of the tensor group of `(stage, data)`, by tensor rank.
    pub fn tensor_group(&self, stage: usize, data: usize) -> Vec<GpuId> {
        (0..self.config.tp)
            .map(|tensor| {
                self.gpu_of(WorkerId {
                    stage,
                    tensor,
                    data,
                })
            })
            .collect()
    }

    /// GPUs of the data-parallel group of `(stage, tensor)`, by replica.
    pub fn data_group(&self, stage: usize, tensor: usize) -> Vec<GpuId> {
        (0..self.config.dp)
            .map(|data| {
                self.gpu_of(WorkerId {
                    stage,
                    tensor,
                    data,
                })
            })
            .collect()
    }

    /// GPUs of the pipeline chain `(tensor, data)`, by stage.
    pub fn pipeline_chain(&self, tensor: usize, data: usize) -> Vec<GpuId> {
        (0..self.config.pp)
            .map(|stage| {
                self.gpu_of(WorkerId {
                    stage,
                    tensor,
                    data,
                })
            })
            .collect()
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mapping{} [", self.config)?;
        for (i, g) in self.assign.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", g.0)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn setup() -> (ParallelConfig, ClusterTopology) {
        (ParallelConfig::new(2, 2, 2), ClusterTopology::new(2, 4))
    }

    #[test]
    fn identity_maps_index_to_gpu() {
        let (cfg, topo) = setup();
        let m = Mapping::identity(cfg, topo);
        for i in 0..8 {
            assert_eq!(m.gpu_at(i), GpuId(i));
        }
        assert!(m.is_permutation());
    }

    #[test]
    fn identity_keeps_tensor_groups_on_node() {
        let (cfg, topo) = setup();
        let m = Mapping::identity(cfg, topo);
        for stage in 0..2 {
            for data in 0..2 {
                let g = m.tensor_group(stage, data);
                assert!(
                    topo.same_node(g[0], g[1]),
                    "tensor group split across nodes: {g:?}"
                );
            }
        }
    }

    #[test]
    fn groups_have_expected_sizes() {
        let (cfg, topo) = setup();
        let m = Mapping::identity(cfg, topo);
        assert_eq!(m.tensor_group(0, 0).len(), 2);
        assert_eq!(m.data_group(1, 1).len(), 2);
        assert_eq!(m.pipeline_chain(0, 1).len(), 2);
    }

    #[test]
    fn groups_partition_the_cluster() {
        let (cfg, topo) = setup();
        let m = Mapping::identity(cfg, topo);
        let mut all: Vec<GpuId> = Vec::new();
        for stage in 0..cfg.pp {
            for data in 0..cfg.dp {
                all.extend(m.tensor_group(stage, data));
            }
        }
        all.sort();
        let expected: Vec<GpuId> = topo.gpus().collect();
        assert_eq!(all, expected);
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn duplicate_assignment_rejected() {
        let (cfg, _) = setup();
        Mapping::from_assignment(cfg, vec![GpuId(0); 8]);
    }

    #[test]
    fn display_lists_gpus() {
        let (cfg, topo) = setup();
        let s = Mapping::identity(cfg, topo).to_string();
        assert!(s.contains("pp=2"));
        assert!(s.contains('['));
    }

    proptest! {
        #[test]
        fn permutation_detection(perm in Just(()).prop_perturb(|_, mut rng| {
            let mut v: Vec<usize> = (0..8).collect();
            for i in (1..8).rev() {
                let j = (rng.next_u32() as usize) % (i + 1);
                v.swap(i, j);
            }
            v
        })) {
            let cfg = ParallelConfig::new(2, 2, 2);
            let assign: Vec<GpuId> = perm.into_iter().map(GpuId).collect();
            let m = Mapping::from_assignment(cfg, assign);
            prop_assert!(m.is_permutation());
            // Every group query returns distinct GPUs.
            let g = m.tensor_group(0, 0);
            prop_assert_ne!(g[0], g[1]);
        }
    }
}
