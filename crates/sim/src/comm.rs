//! Communication time models over the attained-bandwidth matrix.
//!
//! Point-to-point transfers use the classic `alpha + bytes/B` model; ring
//! all-reduce follows Thakur et al. (the paper's \[19\]): `2·(n-1)/n ·
//! msg / B_min` plus per-step latency; the hierarchical variant composes an
//! intra-node phase (counted twice: reduce-scatter before, all-gather
//! after) with one inter-node ring, which is Eq. 6's structure.

use pipette_cluster::{BandwidthMatrix, GpuId, GIB};

/// Reusable buffers for [`CommModel::hierarchical_allreduce_with`]: the
/// per-node member grouping and the leader ring. Hot callers (the
/// incremental SA objective re-evaluates data-parallel all-reduce times
/// thousands of times per second) keep one of these alive instead of
/// allocating per call.
#[derive(Debug, Default)]
pub struct HierScratch {
    /// Node ids in first-seen group order.
    nodes: Vec<usize>,
    /// Members per node, parallel to `nodes`.
    members: Vec<Vec<GpuId>>,
    /// Leader (first member) of each node, in `nodes` order.
    leaders: Vec<GpuId>,
    /// Retired member vectors, kept to reuse their allocations.
    spare: Vec<Vec<GpuId>>,
}

impl HierScratch {
    /// Creates an empty scratch space.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self) {
        self.nodes.clear();
        self.leaders.clear();
        self.spare.append(&mut self.members);
    }

    fn push(&mut self, node: usize, g: GpuId) {
        match self.nodes.iter().position(|&n| n == node) {
            Some(i) => self.members[i].push(g),
            None => {
                self.nodes.push(node);
                let mut v = self.spare.pop().unwrap_or_default();
                v.clear();
                v.push(g);
                self.members.push(v);
            }
        }
    }
}

/// Communication calculator bound to one bandwidth matrix.
///
/// ```
/// use pipette_cluster::{presets, GpuId};
/// use pipette_sim::CommModel;
///
/// let cluster = presets::mid_range(2).build(1);
/// let comm = CommModel::new(cluster.bandwidth());
/// // A 16 MiB activation hop across nodes takes a few milliseconds...
/// let hop = comm.p2p(GpuId(0), GpuId(8), 16 << 20);
/// assert!(hop > 1e-4 && hop < 0.1);
/// // ...and a gradient all-reduce is paced by its slowest ring link.
/// let group: Vec<GpuId> = (0..16).map(GpuId).collect();
/// assert!(comm.hierarchical_allreduce(&group, 256 << 20) > hop);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CommModel<'a> {
    matrix: &'a BandwidthMatrix,
    /// Concurrent flows sharing each node's NIC (inter-node links only).
    inter_flows: f64,
}

impl<'a> CommModel<'a> {
    /// Creates a model over `matrix` (no NIC contention).
    pub fn new(matrix: &'a BandwidthMatrix) -> Self {
        Self {
            matrix,
            inter_flows: 1.0,
        }
    }

    /// Models `flows` concurrent transfers sharing each node's NIC:
    /// every inter-node link's attained bandwidth is divided by `flows`.
    /// With `tp` tensor ranks per node each running its own data-parallel
    /// communicator, `flows = tp` is the realistic setting.
    ///
    /// # Panics
    ///
    /// Panics if `flows == 0`.
    pub fn with_inter_flows(mut self, flows: usize) -> Self {
        debug_assert!(flows > 0, "need at least one flow");
        self.inter_flows = flows as f64;
        self
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &'a BandwidthMatrix {
        self.matrix
    }

    /// Effective directed bandwidth after NIC sharing.
    fn effective(&self, a: GpuId, b: GpuId) -> f64 {
        let raw = self.matrix.between(a, b);
        if self.matrix.topology().same_node(a, b) {
            raw
        } else {
            raw / self.inter_flows
        }
    }

    /// Time to send `bytes` from `src` to `dst` (seconds). Zero for
    /// loopback.
    pub fn p2p(&self, src: GpuId, dst: GpuId, bytes: u64) -> f64 {
        if src == dst {
            return 0.0;
        }
        self.matrix.latency_s(src, dst) + bytes as f64 / (self.effective(src, dst) * GIB)
    }

    /// Flat ring all-reduce over `group` of `bytes` per rank, with the
    /// ring built in group order (how NCCL lays out its ring from the
    /// communicator's rank order).
    ///
    /// `2·(n-1)/n · bytes / B_ring + 2·(n-1)·alpha`, where `B_ring` is the
    /// slowest *ring-order* directed link `g[i] → g[i+1 mod n]` — the ring
    /// runs at the pace of its slowest hop, but only the hops actually on
    /// the ring matter. This is what makes worker dedication effective:
    /// steering the ring away from straggler links speeds the collective
    /// up (§IV). Zero for groups of size < 2.
    pub fn ring_allreduce(&self, group: &[GpuId], bytes: u64) -> f64 {
        let n = group.len();
        if n < 2 {
            return 0.0;
        }
        let mut min_bw = f64::INFINITY;
        for i in 0..n {
            min_bw = min_bw.min(self.effective(group[i], group[(i + 1) % n]));
        }
        let alpha = self.max_latency(group);
        let nf = n as f64;
        2.0 * (nf - 1.0) / nf * bytes as f64 / (min_bw * GIB) + 2.0 * (nf - 1.0) * alpha
    }

    /// Hierarchical-ring all-reduce over `group` of `bytes` per rank
    /// (Eq. 6): two intra-node phases plus one inter-node ring between node
    /// leaders. Falls back to a flat ring when the group occupies a single
    /// node, and to a pure inter-node ring when every node hosts a single
    /// member.
    pub fn hierarchical_allreduce(&self, group: &[GpuId], bytes: u64) -> f64 {
        self.hierarchical_allreduce_with(&mut HierScratch::new(), group, bytes)
    }

    /// [`Self::hierarchical_allreduce`] with caller-provided scratch
    /// buffers, avoiding all per-call allocation. Returns the identical
    /// value.
    pub fn hierarchical_allreduce_with(
        &self,
        scratch: &mut HierScratch,
        group: &[GpuId],
        bytes: u64,
    ) -> f64 {
        let n = group.len();
        if n < 2 {
            return 0.0;
        }
        let topo = self.matrix.topology();
        // Group members by node, preserving first-seen node order so the
        // inter-node leader ring follows the communicator's rank order
        // (and is therefore steerable by the worker mapping).
        scratch.reset();
        for &g in group {
            scratch.push(topo.node_of(g).0, g);
        }
        if scratch.nodes.len() == 1 {
            return self.ring_allreduce(group, bytes);
        }
        // Leaders: the first member on each node, in rank order.
        scratch.leaders.extend(scratch.members.iter().map(|m| m[0]));
        // Worst intra-node subgroup dominates the two intra phases.
        let mut intra = 0.0f64;
        for members in &scratch.members {
            if members.len() < 2 {
                continue;
            }
            let m = members.len() as f64;
            let min_bw = self.matrix.min_over_group(members);
            let alpha = self.max_latency(members);
            let phase =
                2.0 * (m - 1.0) / m * bytes as f64 / (min_bw * GIB) + 2.0 * (m - 1.0) * alpha;
            intra = intra.max(phase);
        }
        // Two intra-node phases (reduce-scatter + all-gather) — Eq. 6's
        // coefficient 4 — plus one inter-node ring over the leaders.
        2.0 * intra + self.ring_allreduce(&scratch.leaders, bytes)
    }

    fn max_latency(&self, group: &[GpuId]) -> f64 {
        let mut alpha: f64 = 0.0;
        for (i, &a) in group.iter().enumerate() {
            for &b in &group[i + 1..] {
                alpha = alpha.max(self.matrix.latency_s(a, b));
            }
        }
        alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipette_cluster::{
        heterogeneity::HeterogeneityModel, link::LinkSpec, topology::ClusterTopology,
        BandwidthMatrix,
    };

    fn homog() -> BandwidthMatrix {
        BandwidthMatrix::homogeneous(
            ClusterTopology::new(4, 4),
            LinkSpec::new(256.0, 0.0),
            LinkSpec::new(8.0, 0.0),
        )
    }

    #[test]
    fn p2p_time_matches_arithmetic() {
        let m = homog();
        let c = CommModel::new(&m);
        // 8 GiB over an 8 GiB/s inter-node link = 1 s.
        let t = c.p2p(GpuId(0), GpuId(4), 8 * (1u64 << 30));
        assert!((t - 1.0).abs() < 1e-9);
        assert_eq!(c.p2p(GpuId(3), GpuId(3), 1 << 30), 0.0);
    }

    #[test]
    fn ring_allreduce_bandwidth_term() {
        let m = homog();
        let c = CommModel::new(&m);
        // 4-way intra-node ring of 1 GiB: 2*(3/4)*1/256 s.
        let group = [GpuId(0), GpuId(1), GpuId(2), GpuId(3)];
        let t = c.ring_allreduce(&group, 1 << 30);
        assert!((t - 2.0 * 0.75 / 256.0).abs() < 1e-9);
        assert_eq!(c.ring_allreduce(&group[..1], 1 << 30), 0.0);
    }

    #[test]
    fn ring_allreduce_paced_by_slowest_link() {
        let mut m = homog();
        m.set(GpuId(0), GpuId(1), 32.0);
        let c = CommModel::new(&m);
        let group = [GpuId(0), GpuId(1), GpuId(2), GpuId(3)];
        let t = c.ring_allreduce(&group, 1 << 30);
        assert!((t - 2.0 * 0.75 / 32.0).abs() < 1e-9);
    }

    #[test]
    fn hierarchical_beats_flat_ring_across_nodes() {
        // With 2 nodes × 4 GPUs, a flat 8-way ring pays the inter-node
        // bandwidth on the full ring; hierarchical pays it only between 2
        // leaders.
        let m = homog();
        let c = CommModel::new(&m);
        let group: Vec<GpuId> = (0..8).map(GpuId).collect();
        let flat = c.ring_allreduce(&group, 1 << 30);
        let hier = c.hierarchical_allreduce(&group, 1 << 30);
        assert!(hier < flat, "hier {hier} vs flat {flat}");
    }

    #[test]
    fn hierarchical_reduces_to_flat_within_node() {
        let m = homog();
        let c = CommModel::new(&m);
        let group = [GpuId(0), GpuId(1), GpuId(2)];
        assert_eq!(
            c.hierarchical_allreduce(&group, 123 << 20),
            c.ring_allreduce(&group, 123 << 20)
        );
    }

    #[test]
    fn hierarchical_pure_inter_node_is_leader_ring() {
        let m = homog();
        let c = CommModel::new(&m);
        // One GPU per node.
        let group = [GpuId(0), GpuId(4), GpuId(8), GpuId(12)];
        assert_eq!(
            c.hierarchical_allreduce(&group, 1 << 30),
            c.ring_allreduce(&group, 1 << 30)
        );
    }

    #[test]
    fn heterogeneous_groups_slower_than_homogeneous() {
        let topo = ClusterTopology::new(4, 4);
        let (intra, inter) = (LinkSpec::new(256.0, 0.0), LinkSpec::new(8.0, 0.0));
        let het = HeterogeneityModel::realistic().generate(topo, intra, inter, 5);
        let hom = BandwidthMatrix::homogeneous(topo, intra, inter);
        let group: Vec<GpuId> = (0..16).step_by(4).map(GpuId).collect();
        let t_het = CommModel::new(&het).hierarchical_allreduce(&group, 1 << 30);
        let t_hom = CommModel::new(&hom).hierarchical_allreduce(&group, 1 << 30);
        assert!(t_het > t_hom);
    }

    #[test]
    fn nic_contention_slows_inter_node_only() {
        let m = homog();
        let base = CommModel::new(&m);
        let contended = CommModel::new(&m).with_inter_flows(4);
        // Intra-node unaffected.
        let intra = [GpuId(0), GpuId(1), GpuId(2), GpuId(3)];
        assert_eq!(
            base.ring_allreduce(&intra, 1 << 28),
            contended.ring_allreduce(&intra, 1 << 28)
        );
        // Inter-node p2p slows by the flow count.
        let t1 = base.p2p(GpuId(0), GpuId(4), 1 << 30);
        let t4 = contended.p2p(GpuId(0), GpuId(4), 1 << 30);
        assert!((t4 / t1 - 4.0).abs() < 1e-9);
        // Hierarchical all-reduce across nodes gets slower, not 4x (the
        // intra phases are unaffected).
        let group: Vec<GpuId> = (0..16).map(GpuId).collect();
        let h1 = base.hierarchical_allreduce(&group, 1 << 28);
        let h4 = contended.hierarchical_allreduce(&group, 1 << 28);
        assert!(h4 > h1 && h4 < 4.0 * h1);
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        // One scratch driven across groups of different shapes must give
        // exactly the fresh-allocation answer every time.
        let topo = ClusterTopology::new(4, 4);
        let (intra, inter) = (LinkSpec::new(256.0, 2e-6), LinkSpec::new(8.0, 5e-6));
        let het = HeterogeneityModel::realistic().generate(topo, intra, inter, 7);
        let c = CommModel::new(&het);
        let mut scratch = HierScratch::new();
        let groups: Vec<Vec<GpuId>> = vec![
            (0..16).map(GpuId).collect(),
            (0..16).step_by(4).map(GpuId).collect(),
            (0..3).map(GpuId).collect(),
            vec![GpuId(1), GpuId(14), GpuId(7), GpuId(4), GpuId(5)],
            vec![GpuId(0)],
        ];
        for g in &groups {
            for bytes in [1u64 << 16, 1 << 24, 1 << 30] {
                let fresh = c.hierarchical_allreduce(g, bytes);
                let reused = c.hierarchical_allreduce_with(&mut scratch, g, bytes);
                assert_eq!(
                    fresh.to_bits(),
                    reused.to_bits(),
                    "group {g:?} bytes {bytes}"
                );
            }
        }
    }

    #[test]
    fn allreduce_monotone_in_bytes() {
        let m = homog();
        let c = CommModel::new(&m);
        let group: Vec<GpuId> = (0..8).map(GpuId).collect();
        let t1 = c.hierarchical_allreduce(&group, 1 << 20);
        let t2 = c.hierarchical_allreduce(&group, 1 << 25);
        assert!(t2 > t1);
    }
}
