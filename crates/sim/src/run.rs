//! The "actually run it on the cluster" facade.
//!
//! [`ClusterRun::execute`] is the reproduction's equivalent of launching a
//! Megatron-LM job with a given configuration: it either fails with CUDA
//! OOM (if the peak memory exceeds the GPU) or returns the measured
//! iteration time. Experiments use it as ground truth; baselines that
//! recommend OOM configurations (Fig. 5b) are charged one failed launch
//! per attempt.

use crate::error::SimError;
use crate::iteration::{IterationReport, IterationSim};
use crate::mapping::Mapping;
use crate::memsim::{MemoryReport, MemorySim};
use pipette_cluster::Cluster;
use pipette_model::{GptConfig, MicrobatchPlan, ParallelConfig};
use serde::{Deserialize, Serialize};

/// Result of a successful (non-OOM) run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measured {
    /// Wall-clock time of one training iteration, seconds.
    pub iteration_seconds: f64,
    /// Peak memory of the worst GPU, bytes.
    pub peak_memory_bytes: u64,
    /// Full timing breakdown.
    pub report: IterationReport,
    /// Full memory breakdown.
    pub memory: MemoryReport,
}

/// Executes configurations on a simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterRun<'a> {
    cluster: &'a Cluster,
    gpt: &'a GptConfig,
    memsim: MemorySim,
    options: crate::options::TrainingOptions,
}

impl<'a> ClusterRun<'a> {
    /// Binds a cluster and model. The memory simulator's jitter seed is
    /// derived from the cluster name so the two paper clusters behave
    /// differently.
    pub fn new(cluster: &'a Cluster, gpt: &'a GptConfig) -> Self {
        let seed = cluster
            .name()
            .bytes()
            .fold(0u64, |a, b| a.wrapping_mul(31).wrapping_add(b as u64));
        Self {
            cluster,
            gpt,
            memsim: MemorySim::new(seed),
            options: crate::options::TrainingOptions::default(),
        }
    }

    /// Replaces the full training-feature set for both the memory and the
    /// timing simulation.
    pub fn with_options(mut self, options: crate::options::TrainingOptions) -> Self {
        self.memsim = self.memsim.with_options(options);
        self.options = options;
        self
    }

    /// Enables full activation recomputation for both the memory and the
    /// timing simulation (how pipeline-only systems such as Varuna run).
    pub fn with_recompute(mut self, recompute: bool) -> Self {
        let mode = if recompute {
            crate::options::ActivationMode::FullRecompute
        } else {
            crate::options::ActivationMode::Full
        };
        self.options.activation = mode;
        self.memsim = self.memsim.with_options(self.options);
        self
    }

    /// The memory ground truth used by this runner.
    pub fn memory_sim(&self) -> MemorySim {
        self.memsim
    }

    /// The cluster being simulated.
    pub fn cluster(&self) -> &'a Cluster {
        self.cluster
    }

    /// Peak memory this configuration would need (without launching).
    pub fn peak_memory(&self, cfg: ParallelConfig, plan: MicrobatchPlan) -> MemoryReport {
        self.memsim.report(self.gpt, cfg, plan)
    }

    /// Launches one iteration.
    ///
    /// # Errors
    ///
    /// [`SimError::OutOfMemory`] if the worst GPU exceeds its memory;
    /// [`SimError::InvalidConfig`] if the configuration does not match the
    /// cluster or model.
    pub fn execute(
        &self,
        cfg: ParallelConfig,
        mapping: &Mapping,
        plan: MicrobatchPlan,
    ) -> Result<Measured, SimError> {
        cfg.validate(
            self.cluster.topology().num_gpus(),
            self.cluster.topology().gpus_per_node(),
            self.gpt.n_layers,
        )?;
        let memory = self.memsim.report(self.gpt, cfg, plan);
        let limit = self.cluster.gpu().memory_bytes;
        if memory.peak_bytes > limit {
            return Err(SimError::OutOfMemory {
                required_bytes: memory.peak_bytes,
                limit_bytes: limit,
            });
        }
        let gpu = self.cluster.gpu().clone();
        let report = IterationSim::new(self.cluster.bandwidth(), &gpu, self.gpt)
            .with_options(self.options)
            .simulate(cfg, mapping, plan);
        Ok(Measured {
            iteration_seconds: report.total_seconds,
            peak_memory_bytes: memory.peak_bytes,
            report,
            memory,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipette_cluster::presets;

    #[test]
    fn small_model_runs() {
        let cluster = presets::mid_range(2).build(1);
        let gpt = GptConfig::new(8, 1024, 16, 2048, 51200);
        let cfg = ParallelConfig::new(2, 4, 2);
        let mapping = Mapping::identity(cfg, *cluster.topology());
        let run = ClusterRun::new(&cluster, &gpt);
        let m = run
            .execute(cfg, &mapping, MicrobatchPlan::new(32, 2).unwrap())
            .expect("should fit");
        assert!(m.iteration_seconds > 0.0);
        assert!(m.peak_memory_bytes < cluster.gpu().memory_bytes);
    }

    #[test]
    fn oversized_microbatch_ooms() {
        let cluster = presets::mid_range(2).build(1);
        let gpt = GptConfig::gpt_3_1b();
        let cfg = ParallelConfig::new(2, 8, 1);
        let mapping = Mapping::identity(cfg, *cluster.topology());
        let run = ClusterRun::new(&cluster, &gpt);
        let err = run
            .execute(cfg, &mapping, MicrobatchPlan::new(64, 64).unwrap())
            .expect_err("64-sample microbatch of a 3.1B model cannot fit a V100");
        assert!(matches!(err, SimError::OutOfMemory { .. }));
    }

    #[test]
    fn invalid_config_is_reported() {
        let cluster = presets::mid_range(2).build(1);
        let gpt = GptConfig::gpt_1_1b();
        let cfg = ParallelConfig::new(2, 4, 4); // 32 workers vs 16 GPUs
        let mapping = Mapping::identity(ParallelConfig::new(2, 4, 2), *cluster.topology());
        let run = ClusterRun::new(&cluster, &gpt);
        assert!(matches!(
            run.execute(cfg, &mapping, MicrobatchPlan::new(16, 1).unwrap()),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn different_clusters_have_different_memory_jitter() {
        let mid = presets::mid_range(2).build(1);
        let high = presets::high_end(2).build(1);
        let gpt = GptConfig::gpt_1_1b();
        let cfg = ParallelConfig::new(2, 4, 2);
        let plan = MicrobatchPlan::new(16, 1).unwrap();
        let a = ClusterRun::new(&mid, &gpt)
            .peak_memory(cfg, plan)
            .peak_bytes;
        let b = ClusterRun::new(&high, &gpt)
            .peak_memory(cfg, plan)
            .peak_bytes;
        assert_ne!(a, b);
    }
}
