//! Error types for the simulator crate.

use std::error::Error;
use std::fmt;

/// Errors from executing a configuration on the simulated cluster.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The configuration does not fit in GPU memory — the run would crash
    /// with CUDA OOM on a real cluster.
    OutOfMemory {
        /// Peak bytes the configuration needs on its worst GPU.
        required_bytes: u64,
        /// Bytes physically available per GPU.
        limit_bytes: u64,
    },
    /// The configuration is structurally invalid for this cluster/model.
    InvalidConfig(pipette_model::ModelError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory {
                required_bytes,
                limit_bytes,
            } => write!(
                f,
                "out of memory: configuration needs {:.2} GiB per GPU but only {:.2} GiB available",
                *required_bytes as f64 / (1u64 << 30) as f64,
                *limit_bytes as f64 / (1u64 << 30) as f64,
            ),
            SimError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::InvalidConfig(e) => Some(e),
            SimError::OutOfMemory { .. } => None,
        }
    }
}

impl From<pipette_model::ModelError> for SimError {
    fn from(e: pipette_model::ModelError) -> Self {
        SimError::InvalidConfig(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oom_message_shows_gib() {
        let e = SimError::OutOfMemory {
            required_bytes: 48 << 30,
            limit_bytes: 32 << 30,
        };
        let s = e.to_string();
        assert!(s.contains("48.00") && s.contains("32.00"));
    }

    #[test]
    fn invalid_config_wraps_source() {
        let e: SimError =
            pipette_model::ModelError::TensorWaysTooLarge { tp: 16, max_tp: 8 }.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
