//! Pipeline schedules: task orderings per stage.
//!
//! Two schedules from Fig. 2 of the paper:
//!
//! * **GPipe** ("memory-hungry"): every stage runs all forwards, then all
//!   backwards. Simple, maximal overlap, but all `n_mb` microbatches'
//!   activations are alive at once.
//! * **1F1B** ("memory-efficient", the de facto standard): after a short
//!   warm-up, each stage alternates one forward with one backward, capping
//!   in-flight microbatches at `pp - stage`. This interleaving creates the
//!   *hidden critical path*: the first stage cannot start forward `m + pp`
//!   before backward `m` has returned through the entire pipeline.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which pass a task performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// Forward pass of one microbatch.
    Forward,
    /// Backward pass of one microbatch.
    Backward,
}

/// One unit of pipeline work: a pass over one microbatch at one stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Task {
    /// Forward or backward.
    pub kind: TaskKind,
    /// Microbatch index, `0..n_mb`.
    pub microbatch: u64,
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            TaskKind::Forward => write!(f, "F{}", self.microbatch),
            TaskKind::Backward => write!(f, "B{}", self.microbatch),
        }
    }
}

/// The pipeline schedule family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PipelineSchedule {
    /// All forwards, then all backwards (Fig. 2a).
    GPipe,
    /// Memory-efficient one-forward-one-backward (Fig. 2b).
    OneFOneB,
}

impl PipelineSchedule {
    /// The execution order of tasks on stage `stage` of `pp`, for `n_mb`
    /// microbatches.
    ///
    /// # Panics
    ///
    /// Panics if `stage >= pp` or `n_mb == 0`.
    pub fn stage_order(&self, pp: usize, stage: usize, n_mb: u64) -> Vec<Task> {
        debug_assert!(stage < pp, "stage out of range");
        debug_assert!(n_mb > 0, "need at least one microbatch");
        let mut order = Vec::with_capacity(2 * n_mb as usize);
        match self {
            PipelineSchedule::GPipe => {
                for m in 0..n_mb {
                    order.push(Task {
                        kind: TaskKind::Forward,
                        microbatch: m,
                    });
                }
                for m in 0..n_mb {
                    order.push(Task {
                        kind: TaskKind::Backward,
                        microbatch: m,
                    });
                }
            }
            PipelineSchedule::OneFOneB => {
                let warmup = ((pp - stage - 1) as u64).min(n_mb);
                for m in 0..warmup {
                    order.push(Task {
                        kind: TaskKind::Forward,
                        microbatch: m,
                    });
                }
                for k in 0..(n_mb - warmup) {
                    order.push(Task {
                        kind: TaskKind::Forward,
                        microbatch: warmup + k,
                    });
                    order.push(Task {
                        kind: TaskKind::Backward,
                        microbatch: k,
                    });
                }
                for m in (n_mb - warmup)..n_mb {
                    order.push(Task {
                        kind: TaskKind::Backward,
                        microbatch: m,
                    });
                }
            }
        }
        order
    }

    /// Peak in-flight microbatches at `stage` (forwards executed but whose
    /// backward has not yet run), computed from the actual order.
    pub fn peak_inflight(&self, pp: usize, stage: usize, n_mb: u64) -> u64 {
        let mut inflight: i64 = 0;
        let mut peak: i64 = 0;
        for t in self.stage_order(pp, stage, n_mb) {
            match t.kind {
                TaskKind::Forward => inflight += 1,
                TaskKind::Backward => inflight -= 1,
            }
            peak = peak.max(inflight);
        }
        peak as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn last_stage_alternates_strictly() {
        let order = PipelineSchedule::OneFOneB.stage_order(4, 3, 4);
        let s: Vec<String> = order.iter().map(|t| t.to_string()).collect();
        assert_eq!(s, vec!["F0", "B0", "F1", "B1", "F2", "B2", "F3", "B3"]);
    }

    #[test]
    fn first_stage_warms_up() {
        let order = PipelineSchedule::OneFOneB.stage_order(4, 0, 6);
        let s: Vec<String> = order.iter().map(|t| t.to_string()).collect();
        assert_eq!(
            s,
            vec!["F0", "F1", "F2", "F3", "B0", "F4", "B1", "F5", "B2", "B3", "B4", "B5"]
        );
    }

    #[test]
    fn gpipe_runs_all_forwards_first() {
        let order = PipelineSchedule::GPipe.stage_order(2, 0, 3);
        let s: Vec<String> = order.iter().map(|t| t.to_string()).collect();
        assert_eq!(s, vec!["F0", "F1", "F2", "B0", "B1", "B2"]);
    }

    #[test]
    fn peak_inflight_matches_paper() {
        // 1F1B stage s holds at most min(pp - s, n_mb) microbatches;
        // GPipe holds all of them.
        assert_eq!(PipelineSchedule::OneFOneB.peak_inflight(4, 0, 32), 4);
        assert_eq!(PipelineSchedule::OneFOneB.peak_inflight(4, 3, 32), 1);
        assert_eq!(PipelineSchedule::OneFOneB.peak_inflight(8, 2, 3), 3);
        assert_eq!(PipelineSchedule::GPipe.peak_inflight(4, 0, 32), 32);
    }

    proptest! {
        #[test]
        fn every_microbatch_scheduled_exactly_once(
            pp in 1usize..8, stage_sel in 0usize..8, n_mb in 1u64..40,
            gpipe in proptest::bool::ANY,
        ) {
            let stage = stage_sel % pp;
            let sched = if gpipe { PipelineSchedule::GPipe } else { PipelineSchedule::OneFOneB };
            let order = sched.stage_order(pp, stage, n_mb);
            prop_assert_eq!(order.len() as u64, 2 * n_mb);
            let mut fwd = vec![0u32; n_mb as usize];
            let mut bwd = vec![0u32; n_mb as usize];
            for t in &order {
                match t.kind {
                    TaskKind::Forward => fwd[t.microbatch as usize] += 1,
                    TaskKind::Backward => bwd[t.microbatch as usize] += 1,
                }
            }
            prop_assert!(fwd.iter().all(|&c| c == 1));
            prop_assert!(bwd.iter().all(|&c| c == 1));
        }

        #[test]
        fn backward_never_precedes_forward_on_stage(
            pp in 1usize..8, stage_sel in 0usize..8, n_mb in 1u64..40,
        ) {
            let stage = stage_sel % pp;
            let order = PipelineSchedule::OneFOneB.stage_order(pp, stage, n_mb);
            let mut seen_fwd = vec![false; n_mb as usize];
            for t in &order {
                match t.kind {
                    TaskKind::Forward => seen_fwd[t.microbatch as usize] = true,
                    TaskKind::Backward => prop_assert!(seen_fwd[t.microbatch as usize]),
                }
            }
        }

        #[test]
        fn inflight_cap_is_pp_minus_stage(
            pp in 1usize..10, stage_sel in 0usize..10, n_mb in 1u64..64,
        ) {
            let stage = stage_sel % pp;
            let peak = PipelineSchedule::OneFOneB.peak_inflight(pp, stage, n_mb);
            prop_assert_eq!(peak, ((pp - stage) as u64).min(n_mb));
        }
    }
}
