//! One full training-iteration simulation: pipeline chains plus the
//! data-parallel gradient synchronization.
//!
//! Every data replica `z` runs an independent pipeline chain (its stages,
//! tensor groups, and inter-stage links are determined by the worker
//! mapping). After a stage's final backward on *all* replicas, that stage's
//! data-parallel all-reduce runs; the iteration completes when the slowest
//! stage finishes its all-reduce (the earliest stage usually dominates —
//! exactly why Eq. 6 charges only the first stage's DP communication).

use crate::comm::CommModel;
use crate::compute::{stage_bwd_time_s, stage_fwd_time_s};
use crate::engine::{ChainResult, ChainSpec};
use crate::mapping::Mapping;
use crate::options::{ActivationMode, TrainingOptions};
use crate::schedule::PipelineSchedule;
use pipette_cluster::{BandwidthMatrix, GpuSpec};
use pipette_model::{messages, GptConfig, MicrobatchPlan, ParallelConfig};
use serde::{Deserialize, Serialize};

/// Fixed optimizer-step time appended to every iteration (seconds).
pub const OPTIMIZER_STEP_S: f64 = 2e-3;

/// Simulator for one iteration on a fixed cluster and model.
///
/// ```
/// use pipette_cluster::presets;
/// use pipette_model::{GptConfig, MicrobatchPlan, ParallelConfig};
/// use pipette_sim::{IterationSim, Mapping};
///
/// let cluster = presets::mid_range(2).build(3);
/// let gpt = GptConfig::new(8, 1024, 16, 2048, 51200);
/// let cfg = ParallelConfig::new(2, 4, 2);
/// let mapping = Mapping::identity(cfg, *cluster.topology());
/// let plan = MicrobatchPlan::new(32, 2)?;
/// let gpu = cluster.gpu().clone();
/// let report = IterationSim::new(cluster.bandwidth(), &gpu, &gpt)
///     .simulate(cfg, &mapping, plan);
/// assert!(report.total_seconds > report.critical_busy_seconds);
/// # Ok::<(), pipette_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct IterationSim<'a> {
    matrix: &'a BandwidthMatrix,
    gpu: &'a GpuSpec,
    gpt: &'a GptConfig,
    options: TrainingOptions,
}

/// Timing breakdown of a simulated iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationReport {
    /// End-to-end iteration time (seconds).
    pub total_seconds: f64,
    /// Slowest pipeline chain's makespan (before DP sync).
    pub pipeline_seconds: f64,
    /// Extra time the data-parallel all-reduce adds past the pipeline.
    pub dp_exposed_seconds: f64,
    /// Per-stage data-parallel all-reduce durations.
    pub stage_dp_seconds: Vec<f64>,
    /// Per-replica chain makespans.
    pub chain_makespans: Vec<f64>,
    /// Busy time of the busiest stage of the slowest chain.
    pub critical_busy_seconds: f64,
}

impl IterationReport {
    /// Fraction of the slowest chain spent idle on its busiest stage — a
    /// bubble-ratio style diagnostic.
    pub fn bubble_fraction(&self) -> f64 {
        if self.pipeline_seconds <= 0.0 {
            return 0.0;
        }
        1.0 - self.critical_busy_seconds / self.pipeline_seconds
    }
}

impl<'a> IterationSim<'a> {
    /// Creates a simulator over a bandwidth matrix, GPU spec, and model,
    /// using the memory-efficient 1F1B schedule (the modern default).
    pub fn new(matrix: &'a BandwidthMatrix, gpu: &'a GpuSpec, gpt: &'a GptConfig) -> Self {
        Self {
            matrix,
            gpu,
            gpt,
            options: TrainingOptions::default(),
        }
    }

    /// Replaces the full training-feature set.
    pub fn with_options(mut self, options: TrainingOptions) -> Self {
        self.options = options;
        self
    }

    /// Enables full activation recomputation: every backward pass first
    /// replays the forward (compute and tensor-parallel all-reduces).
    pub fn with_recompute(mut self, recompute: bool) -> Self {
        self.options.activation = if recompute {
            ActivationMode::FullRecompute
        } else {
            ActivationMode::Full
        };
        self
    }

    /// Selects a different pipeline schedule (e.g. GPipe for ablations).
    pub fn with_schedule(mut self, schedule: PipelineSchedule) -> Self {
        self.options.schedule = schedule;
        self
    }

    /// The schedule in use.
    pub fn schedule(&self) -> PipelineSchedule {
        self.options.schedule
    }

    /// Simulates one training iteration for `cfg` under `mapping` with the
    /// given microbatch plan.
    ///
    /// # Panics
    ///
    /// Panics if `mapping` was built for a different configuration or the
    /// configuration does not match the matrix's GPU count.
    pub fn simulate(
        &self,
        cfg: ParallelConfig,
        mapping: &Mapping,
        plan: MicrobatchPlan,
    ) -> IterationReport {
        debug_assert_eq!(
            mapping.config(),
            cfg,
            "mapping built for a different configuration"
        );
        debug_assert_eq!(
            cfg.num_workers(),
            self.matrix.topology().num_gpus(),
            "configuration does not cover the cluster"
        );
        if self.options.virtual_stages > 1 {
            debug_assert_eq!(
                self.options.schedule,
                PipelineSchedule::OneFOneB,
                "interleaving requires the 1F1B schedule"
            );
            return self.simulate_interleaved(cfg, mapping, plan);
        }
        let mut comm = CommModel::new(self.matrix);
        if self.options.nic_contention {
            comm = comm.with_inter_flows(cfg.tp);
        }
        let pp = cfg.pp;
        let msg_pp = messages::pp_message_bytes(self.gpt, plan.micro_batch);
        let tp_bytes = messages::tp_allreduce_bytes(self.gpt, plan.micro_batch);

        let mut chain_results: Vec<ChainResult> = Vec::with_capacity(cfg.dp);
        for z in 0..cfg.dp {
            let mut fwd_time = Vec::with_capacity(pp);
            let mut bwd_time = Vec::with_capacity(pp);
            for s in 0..pp {
                let group = mapping.tensor_group(s, z);
                let layers = self.gpt.layers_of_stage(pp, s) as f64;
                // Two all-reduces per layer in each direction.
                let ar = comm.ring_allreduce(&group, tp_bytes);
                fwd_time.push(
                    stage_fwd_time_s(self.gpt, self.gpu, pp, cfg.tp, s, plan.micro_batch)
                        + 2.0 * layers * ar,
                );
                let mut bwd = stage_bwd_time_s(self.gpt, self.gpu, pp, cfg.tp, s, plan.micro_batch)
                    + 2.0 * layers * ar;
                match self.options.activation {
                    ActivationMode::Full => {}
                    ActivationMode::Selective => {
                        // Recompute only the attention score/value products:
                        // their share of the forward FLOPs.
                        let h = self.gpt.hidden as f64;
                        let seq = self.gpt.seq_len as f64;
                        let attn_share = 4.0 * seq * h / (24.0 * h * h + 4.0 * seq * h);
                        bwd += attn_share
                            * stage_fwd_time_s(self.gpt, self.gpu, pp, cfg.tp, s, plan.micro_batch);
                    }
                    ActivationMode::FullRecompute => {
                        // Replay the forward before the backward.
                        bwd +=
                            stage_fwd_time_s(self.gpt, self.gpu, pp, cfg.tp, s, plan.micro_batch)
                                + 2.0 * layers * ar;
                    }
                }
                bwd_time.push(bwd);
            }
            let mut fwd_comm = Vec::with_capacity(pp.saturating_sub(1));
            let mut bwd_comm = Vec::with_capacity(pp.saturating_sub(1));
            for s in 0..pp.saturating_sub(1) {
                let mut down: f64 = 0.0;
                let mut up: f64 = 0.0;
                for y in 0..cfg.tp {
                    let a = mapping.gpu_of(pipette_model::WorkerId {
                        stage: s,
                        tensor: y,
                        data: z,
                    });
                    let b = mapping.gpu_of(pipette_model::WorkerId {
                        stage: s + 1,
                        tensor: y,
                        data: z,
                    });
                    down = down.max(comm.p2p(a, b, msg_pp));
                    up = up.max(comm.p2p(b, a, msg_pp));
                }
                fwd_comm.push(down);
                bwd_comm.push(up);
            }
            let spec = ChainSpec {
                pp,
                n_mb: plan.n_microbatches,
                schedule: self.options.schedule,
                fwd_time,
                bwd_time,
                fwd_comm,
                bwd_comm,
            };
            chain_results.push(spec.simulate());
        }

        // Data-parallel all-reduce per stage, gated on the slowest replica.
        let mut stage_dp = Vec::with_capacity(pp);
        let mut total: f64 = 0.0;
        for s in 0..pp {
            let bytes = messages::dp_gradient_bytes(self.gpt, pp, cfg.tp, s);
            let mut dp_time: f64 = 0.0;
            for y in 0..cfg.tp {
                let group = mapping.data_group(s, y);
                dp_time = dp_time.max(comm.hierarchical_allreduce(&group, bytes));
            }
            if self.options.zero1 {
                // Reduce-scatter fp32 grads + all-gather fp16 params moves
                // ~3/4 of the all-reduce volume.
                dp_time *= 0.75;
            }
            let start = chain_results
                .iter()
                .map(|c| c.stage_finish[s])
                .fold(0.0, f64::max);
            total = total.max(start + dp_time);
            stage_dp.push(dp_time);
        }

        let pipeline_seconds = chain_results.iter().map(|c| c.makespan).fold(0.0, f64::max);
        let critical_busy = chain_results
            .iter()
            .max_by(|a, b| a.makespan.total_cmp(&b.makespan))
            .map(|slowest| slowest.stage_busy.iter().cloned().fold(0.0, f64::max))
            .unwrap_or(0.0);

        IterationReport {
            total_seconds: total + OPTIMIZER_STEP_S,
            pipeline_seconds,
            dp_exposed_seconds: total - pipeline_seconds,
            stage_dp_seconds: stage_dp,
            chain_makespans: chain_results.iter().map(|c| c.makespan).collect(),
            critical_busy_seconds: critical_busy,
        }
    }

    /// Interleaved 1F1B: the model is split into `pp · v` chunks, device
    /// `d` hosting chunks `{c·pp + d}`. Per-virtual-stage durations come
    /// from the chunk's layer count; hop `s → s+1` crosses devices
    /// `s % pp → (s+1) % pp` (a wrap-around link at chunk boundaries).
    fn simulate_interleaved(
        &self,
        cfg: ParallelConfig,
        mapping: &Mapping,
        plan: MicrobatchPlan,
    ) -> IterationReport {
        use crate::interleaved::{VirtualChainResult, VirtualChainSpec};
        let v = self.options.virtual_stages;
        let pp = cfg.pp;
        let s_total = pp * v;
        debug_assert!(
            s_total <= self.gpt.n_layers,
            "pp * virtual_stages must not exceed the layer count"
        );
        debug_assert!(
            plan.n_microbatches.is_multiple_of(pp as u64),
            "interleaved 1F1B requires pp | n_mb"
        );
        let mut comm = CommModel::new(self.matrix);
        if self.options.nic_contention {
            comm = comm.with_inter_flows(cfg.tp);
        }
        let msg_pp = messages::pp_message_bytes(self.gpt, plan.micro_batch);
        let tp_bytes = messages::tp_allreduce_bytes(self.gpt, plan.micro_batch);

        let mut chain_results: Vec<VirtualChainResult> = Vec::with_capacity(cfg.dp);
        for z in 0..cfg.dp {
            let mut fwd_time = Vec::with_capacity(s_total);
            let mut bwd_time = Vec::with_capacity(s_total);
            for s in 0..s_total {
                let device = s % pp;
                let group = mapping.tensor_group(device, z);
                let layers = self.gpt.layers_of_stage(s_total, s) as f64;
                let ar = comm.ring_allreduce(&group, tp_bytes);
                let fwd = crate::compute::stage_fwd_time_s(
                    self.gpt,
                    self.gpu,
                    s_total,
                    cfg.tp,
                    s,
                    plan.micro_batch,
                ) + 2.0 * layers * ar;
                let mut bwd = crate::compute::stage_bwd_time_s(
                    self.gpt,
                    self.gpu,
                    s_total,
                    cfg.tp,
                    s,
                    plan.micro_batch,
                ) + 2.0 * layers * ar;
                match self.options.activation {
                    ActivationMode::Full => {}
                    ActivationMode::Selective => {
                        let h = self.gpt.hidden as f64;
                        let seq = self.gpt.seq_len as f64;
                        let attn_share = 4.0 * seq * h / (24.0 * h * h + 4.0 * seq * h);
                        bwd += attn_share
                            * crate::compute::stage_fwd_time_s(
                                self.gpt,
                                self.gpu,
                                s_total,
                                cfg.tp,
                                s,
                                plan.micro_batch,
                            );
                    }
                    ActivationMode::FullRecompute => {
                        bwd += crate::compute::stage_fwd_time_s(
                            self.gpt,
                            self.gpu,
                            s_total,
                            cfg.tp,
                            s,
                            plan.micro_batch,
                        ) + 2.0 * layers * ar;
                    }
                }
                fwd_time.push(fwd);
                bwd_time.push(bwd);
            }
            let mut fwd_comm = Vec::with_capacity(s_total - 1);
            let mut bwd_comm = Vec::with_capacity(s_total - 1);
            for s in 0..(s_total - 1) {
                let (da, db) = (s % pp, (s + 1) % pp);
                if da == db {
                    fwd_comm.push(0.0);
                    bwd_comm.push(0.0);
                    continue;
                }
                let mut down: f64 = 0.0;
                let mut up: f64 = 0.0;
                for y in 0..cfg.tp {
                    let a = mapping.gpu_of(pipette_model::WorkerId {
                        stage: da,
                        tensor: y,
                        data: z,
                    });
                    let b = mapping.gpu_of(pipette_model::WorkerId {
                        stage: db,
                        tensor: y,
                        data: z,
                    });
                    down = down.max(comm.p2p(a, b, msg_pp));
                    up = up.max(comm.p2p(b, a, msg_pp));
                }
                fwd_comm.push(down);
                bwd_comm.push(up);
            }
            let spec = VirtualChainSpec {
                pp,
                chunks: v,
                n_mb: plan.n_microbatches,
                fwd_time,
                bwd_time,
                fwd_comm,
                bwd_comm,
            };
            chain_results.push(spec.simulate());
        }

        // DP all-reduce per device: every chunk's gradients sync together.
        let mut stage_dp = Vec::with_capacity(pp);
        let mut total: f64 = 0.0;
        for d in 0..pp {
            let bytes: u64 = (0..v)
                .map(|c| messages::dp_gradient_bytes(self.gpt, s_total, cfg.tp, c * pp + d))
                .sum();
            let mut dp_time: f64 = 0.0;
            for y in 0..cfg.tp {
                let group = mapping.data_group(d, y);
                dp_time = dp_time.max(comm.hierarchical_allreduce(&group, bytes));
            }
            if self.options.zero1 {
                dp_time *= 0.75;
            }
            let start = chain_results
                .iter()
                .map(|c| c.device_finish[d])
                .fold(0.0, f64::max);
            total = total.max(start + dp_time);
            stage_dp.push(dp_time);
        }

        let pipeline_seconds = chain_results.iter().map(|c| c.makespan).fold(0.0, f64::max);
        let critical_busy = chain_results
            .iter()
            .max_by(|a, b| a.makespan.total_cmp(&b.makespan))
            .map(|slowest| slowest.device_busy.iter().cloned().fold(0.0, f64::max))
            .unwrap_or(0.0);

        IterationReport {
            total_seconds: total + OPTIMIZER_STEP_S,
            pipeline_seconds,
            dp_exposed_seconds: total - pipeline_seconds,
            stage_dp_seconds: stage_dp,
            chain_makespans: chain_results.iter().map(|c| c.makespan).collect(),
            critical_busy_seconds: critical_busy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipette_cluster::presets;

    fn small_setup() -> (pipette_cluster::Cluster, GptConfig) {
        (
            presets::mid_range(2).build(3),
            GptConfig::new(8, 1024, 16, 2048, 51200),
        )
    }

    fn sim_time(
        cluster: &pipette_cluster::Cluster,
        gpt: &GptConfig,
        cfg: ParallelConfig,
        micro: u64,
        mini: u64,
    ) -> IterationReport {
        let mapping = Mapping::identity(cfg, *cluster.topology());
        let plan = MicrobatchPlan::new(mini, micro).unwrap();
        IterationSim::new(cluster.bandwidth(), &cluster.gpu().clone(), gpt)
            .simulate(cfg, &mapping, plan)
    }

    #[test]
    fn report_is_internally_consistent() {
        let (cluster, gpt) = small_setup();
        let r = sim_time(&cluster, &gpt, ParallelConfig::new(2, 4, 2), 2, 32);
        assert!(r.total_seconds > r.pipeline_seconds);
        assert!(r.dp_exposed_seconds >= 0.0);
        assert_eq!(r.chain_makespans.len(), 2);
        assert_eq!(r.stage_dp_seconds.len(), 2);
        assert!(r.bubble_fraction() >= 0.0 && r.bubble_fraction() < 1.0);
    }

    #[test]
    fn more_microbatches_take_longer() {
        let (cluster, gpt) = small_setup();
        let fast = sim_time(&cluster, &gpt, ParallelConfig::new(2, 4, 2), 2, 16);
        let slow = sim_time(&cluster, &gpt, ParallelConfig::new(2, 4, 2), 2, 64);
        assert!(slow.total_seconds > 2.0 * fast.total_seconds);
    }

    #[test]
    fn gpipe_and_1f1b_have_similar_throughput_without_comm_pressure() {
        // On a tiny model the schedules differ mostly in memory, not time.
        let (cluster, gpt) = small_setup();
        let cfg = ParallelConfig::new(2, 4, 2);
        let mapping = Mapping::identity(cfg, *cluster.topology());
        let plan = MicrobatchPlan::new(32, 2).unwrap();
        let gpu = cluster.gpu().clone();
        let a = IterationSim::new(cluster.bandwidth(), &gpu, &gpt).simulate(cfg, &mapping, plan);
        let b = IterationSim::new(cluster.bandwidth(), &gpu, &gpt)
            .with_schedule(PipelineSchedule::GPipe)
            .simulate(cfg, &mapping, plan);
        let ratio = a.total_seconds / b.total_seconds;
        assert!(ratio > 0.8 && ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn dp_only_config_has_no_pipeline_comm() {
        let (cluster, gpt) = small_setup();
        let r = sim_time(&cluster, &gpt, ParallelConfig::new(1, 8, 2), 2, 32);
        assert_eq!(r.stage_dp_seconds.len(), 1);
        assert!(r.stage_dp_seconds[0] > 0.0);
    }

    #[test]
    fn mapping_affects_latency() {
        // Swapping two pipeline-adjacent nodes across a slow link changes
        // the simulated time.
        let (cluster, gpt) = small_setup();
        let cfg = ParallelConfig::new(2, 8, 1);
        let plan = MicrobatchPlan::new(32, 2).unwrap();
        let gpu = cluster.gpu().clone();
        let sim = IterationSim::new(cluster.bandwidth(), &gpu, &gpt);
        let identity = Mapping::identity(cfg, *cluster.topology());
        let t1 = sim.simulate(cfg, &identity, plan).total_seconds;
        // Reverse the GPU order — tensor groups stay intact (within a
        // node), but stage 0 and 1 swap nodes.
        let mut reversed: Vec<_> = cluster.topology().gpus().collect();
        reversed.reverse();
        let rev = Mapping::from_assignment(cfg, reversed);
        let t2 = sim.simulate(cfg, &rev, plan).total_seconds;
        assert!((t1 - t2).abs() > 1e-6 || (t1 - t2).abs() / t1 < 0.2);
    }

    #[test]
    fn activation_modes_order_time_correctly() {
        use crate::options::{ActivationMode, TrainingOptions};
        let (cluster, gpt) = small_setup();
        let cfg = ParallelConfig::new(2, 4, 2);
        let mapping = Mapping::identity(cfg, *cluster.topology());
        let plan = MicrobatchPlan::new(32, 2).unwrap();
        let gpu = cluster.gpu().clone();
        let time = |mode| {
            IterationSim::new(cluster.bandwidth(), &gpu, &gpt)
                .with_options(TrainingOptions::new().with_activation(mode))
                .simulate(cfg, &mapping, plan)
                .total_seconds
        };
        let full = time(ActivationMode::Full);
        let selective = time(ActivationMode::Selective);
        let ckpt = time(ActivationMode::FullRecompute);
        assert!(
            selective > full,
            "selective {selective} pays a small recompute over {full}"
        );
        assert!(selective < full * 1.15, "selective overhead must be small");
        assert!(
            ckpt > selective,
            "full recompute {ckpt} pays the whole forward again"
        );
        assert!(ckpt > full * 1.2);
    }

    #[test]
    fn zero1_shrinks_dp_exposure() {
        use crate::options::TrainingOptions;
        let (cluster, gpt) = small_setup();
        let cfg = ParallelConfig::new(1, 8, 2);
        let mapping = Mapping::identity(cfg, *cluster.topology());
        let plan = MicrobatchPlan::new(32, 2).unwrap();
        let gpu = cluster.gpu().clone();
        let plain =
            IterationSim::new(cluster.bandwidth(), &gpu, &gpt).simulate(cfg, &mapping, plan);
        let z1 = IterationSim::new(cluster.bandwidth(), &gpu, &gpt)
            .with_options(TrainingOptions::new().with_zero1(true))
            .simulate(cfg, &mapping, plan);
        assert!(z1.stage_dp_seconds[0] < plain.stage_dp_seconds[0]);
        assert!(z1.total_seconds <= plain.total_seconds);
    }

    #[test]
    fn interleaving_beats_plain_in_bubble_dominated_regimes() {
        use crate::options::TrainingOptions;
        let (cluster, gpt) = small_setup();
        // Deep pipeline, few microbatches: bubble-dominated.
        let cfg = ParallelConfig::new(4, 4, 1);
        let mapping = Mapping::identity(cfg, *cluster.topology());
        let plan = MicrobatchPlan::new(8, 1).unwrap();
        let gpu = cluster.gpu().clone();
        let plain = IterationSim::new(cluster.bandwidth(), &gpu, &gpt)
            .simulate(cfg, &mapping, plan)
            .total_seconds;
        let inter = IterationSim::new(cluster.bandwidth(), &gpu, &gpt)
            .with_options(TrainingOptions::new().with_interleaving(2))
            .simulate(cfg, &mapping, plan)
            .total_seconds;
        assert!(
            inter < plain,
            "interleaving should shrink the bubble: {inter:.3} vs {plain:.3}"
        );
    }

    #[test]
    fn interleaving_costs_communication_in_steady_state() {
        use crate::options::TrainingOptions;
        let (cluster, gpt) = small_setup();
        // Many microbatches: the bubble is amortized, the extra hops are not.
        let cfg = ParallelConfig::new(2, 8, 1);
        let mapping = Mapping::identity(cfg, *cluster.topology());
        let plan = MicrobatchPlan::new(128, 1).unwrap();
        let gpu = cluster.gpu().clone();
        let plain = IterationSim::new(cluster.bandwidth(), &gpu, &gpt)
            .simulate(cfg, &mapping, plan)
            .total_seconds;
        let inter = IterationSim::new(cluster.bandwidth(), &gpu, &gpt)
            .with_options(TrainingOptions::new().with_interleaving(4))
            .simulate(cfg, &mapping, plan)
            .total_seconds;
        // Total compute is identical; interleaving must not be wildly
        // better here, and typically pays a small comm premium.
        assert!(inter > plain * 0.95, "{inter:.3} vs {plain:.3}");
    }

    #[test]
    #[should_panic(expected = "pp | n_mb")]
    fn interleaving_rejects_indivisible_microbatches() {
        use crate::options::TrainingOptions;
        let (cluster, gpt) = small_setup();
        let cfg = ParallelConfig::new(4, 4, 1);
        let mapping = Mapping::identity(cfg, *cluster.topology());
        let plan = MicrobatchPlan::new(6, 1).unwrap();
        let gpu = cluster.gpu().clone();
        IterationSim::new(cluster.bandwidth(), &gpu, &gpt)
            .with_options(TrainingOptions::new().with_interleaving(2))
            .simulate(cfg, &mapping, plan);
    }

    #[test]
    #[should_panic(expected = "different configuration")]
    fn mapping_config_mismatch_rejected() {
        let (cluster, gpt) = small_setup();
        let cfg_a = ParallelConfig::new(2, 4, 2);
        let cfg_b = ParallelConfig::new(4, 2, 2);
        let mapping = Mapping::identity(cfg_a, *cluster.topology());
        let plan = MicrobatchPlan::new(32, 2).unwrap();
        let gpu = cluster.gpu().clone();
        IterationSim::new(cluster.bandwidth(), &gpu, &gpt).simulate(cfg_b, &mapping, plan);
    }
}
