//! Pipeline execution traces: per-task timings and a text Gantt renderer.
//!
//! Useful for eyeballing why a configuration is slow — where the bubbles
//! sit, whether the hidden critical path binds, which stage straggles.

use crate::schedule::{Task, TaskKind};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One executed task with its exact start/finish times.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskEvent {
    /// Pipeline stage (device) the task ran on.
    pub stage: usize,
    /// The task (pass + microbatch).
    pub task: Task,
    /// Start time, seconds.
    pub start: f64,
    /// Finish time, seconds.
    pub finish: f64,
}

/// Renders a fixed-width text Gantt chart of a trace: one row per stage,
/// `F`/`B` cells for forward/backward work, `.` for idle.
///
/// # Panics
///
/// Panics if `width < 10` or `events` is empty.
pub fn render_gantt(events: &[TaskEvent], stages: usize, width: usize) -> String {
    assert!(width >= 10, "need at least 10 columns");
    assert!(!events.is_empty(), "nothing to render");
    let makespan = events.iter().map(|e| e.finish).fold(0.0, f64::max);
    let scale = width as f64 / makespan;
    let mut out = String::new();
    for stage in 0..stages {
        let mut row = vec!['.'; width];
        for e in events.iter().filter(|e| e.stage == stage) {
            let a = ((e.start * scale) as usize).min(width - 1);
            let b = ((e.finish * scale) as usize).clamp(a + 1, width);
            let ch = match e.task.kind {
                TaskKind::Forward => 'F',
                TaskKind::Backward => 'B',
            };
            for cell in &mut row[a..b] {
                *cell = ch;
            }
        }
        let _ = writeln!(
            out,
            "stage {stage:>2} |{}|",
            row.into_iter().collect::<String>()
        );
    }
    let _ = writeln!(out, "          0 {:>w$.3} s", makespan, w = width - 2);
    out
}

/// Idle fraction per stage computed from a trace.
pub fn idle_fractions(events: &[TaskEvent], stages: usize) -> Vec<f64> {
    let makespan = events.iter().map(|e| e.finish).fold(0.0, f64::max);
    (0..stages)
        .map(|s| {
            let busy: f64 = events
                .iter()
                .filter(|e| e.stage == s)
                .map(|e| e.finish - e.start)
                .sum();
            if makespan > 0.0 {
                1.0 - busy / makespan
            } else {
                0.0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ChainSpec;
    use crate::schedule::PipelineSchedule;

    fn traced() -> (crate::engine::ChainResult, Vec<TaskEvent>) {
        ChainSpec {
            pp: 3,
            n_mb: 6,
            schedule: PipelineSchedule::OneFOneB,
            fwd_time: vec![1.0; 3],
            bwd_time: vec![2.0; 3],
            fwd_comm: vec![0.1; 2],
            bwd_comm: vec![0.1; 2],
        }
        .trace()
    }

    #[test]
    fn trace_is_consistent_with_simulate() {
        let (result, events) = traced();
        assert_eq!(events.len(), 3 * 2 * 6);
        let max_finish = events.iter().map(|e| e.finish).fold(0.0, f64::max);
        assert!((max_finish - result.makespan).abs() < 1e-12);
        // Tasks on one stage never overlap.
        for s in 0..3 {
            let mut mine: Vec<_> = events.iter().filter(|e| e.stage == s).collect();
            mine.sort_by(|a, b| a.start.total_cmp(&b.start));
            for w in mine.windows(2) {
                assert!(w[1].start >= w[0].finish - 1e-12);
            }
        }
    }

    #[test]
    fn gantt_renders_all_stages() {
        let (_, events) = traced();
        let chart = render_gantt(&events, 3, 60);
        assert_eq!(chart.lines().count(), 4);
        assert!(chart.contains('F') && chart.contains('B'));
    }

    #[test]
    fn first_stage_idles_least_in_1f1b() {
        let (_, events) = traced();
        let idle = idle_fractions(&events, 3);
        // Later stages idle during fill and drain.
        assert!(idle[2] >= idle[0] - 1e-9, "idle {idle:?}");
        assert!(idle.iter().all(|&f| (0.0..1.0).contains(&f)));
    }
}
