//! Pipeline execution traces: per-task timings and a text Gantt renderer.
//!
//! Useful for eyeballing why a configuration is slow — where the bubbles
//! sit, whether the hidden critical path binds, which stage straggles.

use crate::schedule::{Task, TaskKind};
use pipette_obs::{EventKind, Trace};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One executed task with its exact start/finish times.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskEvent {
    /// Pipeline stage (device) the task ran on.
    pub stage: usize,
    /// The task (pass + microbatch).
    pub task: Task,
    /// Start time, seconds.
    pub start: f64,
    /// Finish time, seconds.
    pub finish: f64,
}

/// Why a Gantt chart could not be rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GanttError {
    /// The event list was empty — there is nothing to draw.
    NoEvents,
    /// The requested chart is too narrow to be legible.
    WidthTooSmall {
        /// The width that was requested.
        width: usize,
        /// The smallest width `render_gantt` accepts.
        min: usize,
    },
}

impl std::fmt::Display for GanttError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GanttError::NoEvents => write!(f, "nothing to render: empty event list"),
            GanttError::WidthTooSmall { width, min } => {
                write!(f, "chart width {width} too small (need at least {min})")
            }
        }
    }
}

impl std::error::Error for GanttError {}

/// Minimum chart width accepted by [`render_gantt`].
pub const MIN_GANTT_WIDTH: usize = 10;

/// Renders a fixed-width text Gantt chart of a trace: one row per stage,
/// `F`/`B` cells for forward/backward work, `.` for idle.
///
/// # Errors
///
/// Returns [`GanttError::WidthTooSmall`] if `width < 10` and
/// [`GanttError::NoEvents`] if `events` is empty.
pub fn render_gantt(
    events: &[TaskEvent],
    stages: usize,
    width: usize,
) -> Result<String, GanttError> {
    if width < MIN_GANTT_WIDTH {
        return Err(GanttError::WidthTooSmall {
            width,
            min: MIN_GANTT_WIDTH,
        });
    }
    if events.is_empty() {
        return Err(GanttError::NoEvents);
    }
    let makespan = events.iter().map(|e| e.finish).fold(0.0, f64::max);
    // A degenerate trace (all tasks at t = 0) still renders: everything
    // collapses into the first column instead of dividing by zero.
    let scale = if makespan > 0.0 {
        width as f64 / makespan
    } else {
        0.0
    };
    let mut out = String::new();
    for stage in 0..stages {
        let mut row = vec!['.'; width];
        for e in events.iter().filter(|e| e.stage == stage) {
            let a = ((e.start * scale) as usize).min(width - 1);
            let b = ((e.finish * scale) as usize).clamp(a + 1, width);
            let ch = match e.task.kind {
                TaskKind::Forward => 'F',
                TaskKind::Backward => 'B',
            };
            for cell in &mut row[a..b] {
                *cell = ch;
            }
        }
        let _ = writeln!(
            out,
            "stage {stage:>2} |{}|",
            row.into_iter().collect::<String>()
        );
    }
    let _ = writeln!(out, "          0 {:>w$.3} s", makespan, w = width - 2);
    Ok(out)
}

/// Idle fraction per stage computed from a trace.
///
/// Empty-safe: with no events (or a zero makespan) every stage reports
/// an idle fraction of `0.0` rather than dividing by zero.
pub fn idle_fractions(events: &[TaskEvent], stages: usize) -> Vec<f64> {
    let makespan = events.iter().map(|e| e.finish).fold(0.0, f64::max);
    (0..stages)
        .map(|s| {
            let busy: f64 = events
                .iter()
                .filter(|e| e.stage == s)
                .map(|e| e.finish - e.start)
                .sum();
            if makespan > 0.0 {
                1.0 - busy / makespan
            } else {
                0.0
            }
        })
        .collect()
}

/// Exports a simulator trace into an observability [`Trace`] as
/// [`EventKind::SimTask`] events, one per executed task, in simulator
/// emission order (deterministic for a fixed schedule).
pub fn export_task_events(events: &[TaskEvent], trace: &mut Trace) {
    for e in events {
        trace.push(EventKind::SimTask {
            stage: e.stage,
            kind: match e.task.kind {
                TaskKind::Forward => "F",
                TaskKind::Backward => "B",
            },
            microbatch: e.task.microbatch,
            start: e.start,
            finish: e.finish,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ChainSpec;
    use crate::schedule::PipelineSchedule;

    fn traced() -> (crate::engine::ChainResult, Vec<TaskEvent>) {
        ChainSpec {
            pp: 3,
            n_mb: 6,
            schedule: PipelineSchedule::OneFOneB,
            fwd_time: vec![1.0; 3],
            bwd_time: vec![2.0; 3],
            fwd_comm: vec![0.1; 2],
            bwd_comm: vec![0.1; 2],
        }
        .trace()
    }

    #[test]
    fn trace_is_consistent_with_simulate() {
        let (result, events) = traced();
        assert_eq!(events.len(), 3 * 2 * 6);
        let max_finish = events.iter().map(|e| e.finish).fold(0.0, f64::max);
        assert!((max_finish - result.makespan).abs() < 1e-12);
        // Tasks on one stage never overlap.
        for s in 0..3 {
            let mut mine: Vec<_> = events.iter().filter(|e| e.stage == s).collect();
            mine.sort_by(|a, b| a.start.total_cmp(&b.start));
            for w in mine.windows(2) {
                assert!(w[1].start >= w[0].finish - 1e-12);
            }
        }
    }

    #[test]
    fn gantt_renders_all_stages() {
        let (_, events) = traced();
        let chart = render_gantt(&events, 3, 60).expect("renderable");
        assert_eq!(chart.lines().count(), 4);
        assert!(chart.contains('F') && chart.contains('B'));
    }

    #[test]
    fn gantt_rejects_empty_and_narrow_inputs() {
        let (_, events) = traced();
        assert_eq!(render_gantt(&[], 3, 60), Err(GanttError::NoEvents));
        assert_eq!(
            render_gantt(&events, 3, 9),
            Err(GanttError::WidthTooSmall { width: 9, min: 10 })
        );
        // The width check fires first so the error is deterministic.
        assert_eq!(
            render_gantt(&[], 3, 0),
            Err(GanttError::WidthTooSmall { width: 0, min: 10 })
        );
        let msg = GanttError::WidthTooSmall { width: 9, min: 10 }.to_string();
        assert!(msg.contains('9') && msg.contains("10"), "{msg}");
    }

    #[test]
    fn gantt_survives_a_zero_makespan_trace() {
        let events = [TaskEvent {
            stage: 0,
            task: Task {
                kind: TaskKind::Forward,
                microbatch: 0,
            },
            start: 0.0,
            finish: 0.0,
        }];
        let chart = render_gantt(&events, 1, 20).expect("degenerate but renderable");
        assert!(chart.starts_with("stage  0 |F"));
    }

    #[test]
    fn idle_fractions_is_empty_safe() {
        assert_eq!(idle_fractions(&[], 4), vec![0.0; 4]);
        assert!(idle_fractions(&[], 0).is_empty());
    }

    #[test]
    fn export_mirrors_the_event_list() {
        let (_, events) = traced();
        let mut trace = Trace::new(pipette_obs::TraceConfig::default());
        export_task_events(&events, &mut trace);
        assert_eq!(trace.len(), events.len());
        assert_eq!(trace.count_kind("sim_task"), events.len());
        let jsonl = trace.to_jsonl();
        let first = jsonl.lines().next().expect("one line per event");
        assert!(first.contains("\"kind\":\"sim_task\""), "{first}");
        assert!(first.contains("\"task\":\"F\""), "{first}");
    }

    #[test]
    fn first_stage_idles_least_in_1f1b() {
        let (_, events) = traced();
        let idle = idle_fractions(&events, 3);
        // Later stages idle during fill and drain.
        assert!(idle[2] >= idle[0] - 1e-9, "idle {idle:?}");
        assert!(idle.iter().all(|&f| (0.0..1.0).contains(&f)));
    }
}
