//! Compute profiling facade.
//!
//! Pipette's latency estimator uses *profiled* values for the per-
//! microbatch computation time `C` and the tensor-parallel communication
//! `T_com^TP` (§V), rather than analytic FLOP counts. This module plays
//! the role of those short profiling runs: it reads the simulator's
//! compute model through a small measurement noise.

use crate::comm::CommModel;
use crate::compute::{stage_bwd_time_s, stage_fwd_time_s};
use pipette_cluster::rand_util::normal;
use pipette_cluster::{BandwidthMatrix, GpuSpec};
use pipette_model::{messages, GptConfig, MicrobatchPlan, ParallelConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Measured per-stage compute and tensor-parallel times for one
/// `(configuration, microbatch)` pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfiledCompute {
    /// Forward time per microbatch per stage (compute only).
    pub fwd: Vec<f64>,
    /// Backward time per microbatch per stage (compute only).
    pub bwd: Vec<f64>,
    /// Tensor-parallel all-reduce time per stage for one full microbatch
    /// pass (forward + backward), measured on the reference placement.
    pub tp_comm: Vec<f64>,
}

impl ProfiledCompute {
    /// `C` for stage `s`: fwd + bwd compute of one microbatch.
    pub fn compute(&self, stage: usize) -> f64 {
        self.fwd[stage] + self.bwd[stage]
    }

    /// `C + T_com^TP` for stage `s`.
    pub fn compute_with_tp(&self, stage: usize) -> f64 {
        self.compute(stage) + self.tp_comm[stage]
    }

    /// Number of stages profiled.
    pub fn num_stages(&self) -> usize {
        self.fwd.len()
    }
}

/// Profiler with multiplicative measurement noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeProfiler {
    /// Relative standard deviation of one timing measurement.
    pub noise_sigma: f64,
}

impl Default for ComputeProfiler {
    fn default() -> Self {
        Self { noise_sigma: 0.015 }
    }
}

impl ComputeProfiler {
    /// Creates a profiler.
    ///
    /// # Panics
    ///
    /// Panics if `noise_sigma` is negative.
    pub fn new(noise_sigma: f64) -> Self {
        debug_assert!(noise_sigma >= 0.0, "noise must be non-negative");
        Self { noise_sigma }
    }

    /// Profiles compute and TP-communication times for `cfg` with the given
    /// microbatch, on the identity placement (profiling runs use the
    /// default launcher placement). Deterministic in `seed`.
    pub fn profile(
        &self,
        matrix: &BandwidthMatrix,
        gpu: &GpuSpec,
        gpt: &GptConfig,
        cfg: ParallelConfig,
        plan: MicrobatchPlan,
        seed: u64,
    ) -> ProfiledCompute {
        self.profile_stages(matrix, gpu, gpt, cfg.pp, cfg.tp, plan, seed)
    }

    /// Like [`Self::profile`], but at an explicit stage granularity —
    /// `stages = pp · v` profiles the per-chunk times of an interleaved
    /// schedule. The TP all-reduce is measured on a reference node's first
    /// `tp` GPUs.
    ///
    /// # Panics
    ///
    /// Panics if `stages` exceeds the layer count or `tp` exceeds the node
    /// size.
    #[allow(clippy::too_many_arguments)] // mirrors the profiling job's full parameter surface
    pub fn profile_stages(
        &self,
        matrix: &BandwidthMatrix,
        gpu: &GpuSpec,
        gpt: &GptConfig,
        stages: usize,
        tp: usize,
        plan: MicrobatchPlan,
        seed: u64,
    ) -> ProfiledCompute {
        debug_assert!(
            stages >= 1 && stages <= gpt.n_layers,
            "stages must be in 1..=n_layers"
        );
        debug_assert!(
            tp >= 1 && tp <= matrix.topology().gpus_per_node(),
            "tp must fit within a node"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut noisy = |v: f64| v * normal(&mut rng, 1.0, self.noise_sigma).clamp(0.85, 1.15);
        let comm = CommModel::new(matrix);
        let reference_group: Vec<pipette_cluster::GpuId> =
            (0..tp).map(pipette_cluster::GpuId).collect();
        let tp_bytes = messages::tp_allreduce_bytes(gpt, plan.micro_batch);
        let mut fwd = Vec::with_capacity(stages);
        let mut bwd = Vec::with_capacity(stages);
        let mut tp_comm = Vec::with_capacity(stages);
        for s in 0..stages {
            fwd.push(noisy(stage_fwd_time_s(
                gpt,
                gpu,
                stages,
                tp,
                s,
                plan.micro_batch,
            )));
            bwd.push(noisy(stage_bwd_time_s(
                gpt,
                gpu,
                stages,
                tp,
                s,
                plan.micro_batch,
            )));
            let layers = gpt.layers_of_stage(stages, s) as f64;
            let ar = comm.ring_allreduce(&reference_group, tp_bytes);
            tp_comm.push(noisy(4.0 * layers * ar));
        }
        ProfiledCompute { fwd, bwd, tp_comm }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipette_cluster::presets;

    fn setup() -> (pipette_cluster::Cluster, GptConfig) {
        (
            presets::mid_range(2).build(5),
            GptConfig::new(8, 1024, 16, 2048, 51200),
        )
    }

    #[test]
    fn profile_is_deterministic_and_noisy() {
        let (cluster, gpt) = setup();
        let cfg = ParallelConfig::new(2, 4, 2);
        let plan = MicrobatchPlan::new(16, 2).unwrap();
        let gpu = cluster.gpu().clone();
        let prof = ComputeProfiler::default();
        let a = prof.profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 1);
        let b = prof.profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 1);
        let c = prof.profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn noise_is_bounded() {
        let (cluster, gpt) = setup();
        let cfg = ParallelConfig::new(2, 4, 2);
        let plan = MicrobatchPlan::new(16, 2).unwrap();
        let gpu = cluster.gpu().clone();
        let exact =
            ComputeProfiler::new(0.0).profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 1);
        let noisy =
            ComputeProfiler::new(0.03).profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 1);
        for s in 0..2 {
            let r = noisy.compute(s) / exact.compute(s);
            assert!((r - 1.0).abs() < 0.2, "ratio {r}");
        }
    }

    #[test]
    fn accessors_are_consistent() {
        let (cluster, gpt) = setup();
        let cfg = ParallelConfig::new(4, 2, 2);
        let plan = MicrobatchPlan::new(16, 2).unwrap();
        let gpu = cluster.gpu().clone();
        let p = ComputeProfiler::new(0.0).profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 1);
        assert_eq!(p.num_stages(), 4);
        for s in 0..4 {
            assert!((p.compute_with_tp(s) - p.compute(s) - p.tp_comm[s]).abs() < 1e-15);
            assert!(p.compute(s) > 0.0);
        }
    }

    #[test]
    fn tp_comm_zero_without_tensor_parallelism() {
        let (cluster, gpt) = setup();
        let cfg = ParallelConfig::new(2, 1, 8);
        let plan = MicrobatchPlan::new(16, 2).unwrap();
        let gpu = cluster.gpu().clone();
        let p = ComputeProfiler::new(0.0).profile(cluster.bandwidth(), &gpu, &gpt, cfg, plan, 1);
        assert!(p.tp_comm.iter().all(|&t| t == 0.0));
    }
}
