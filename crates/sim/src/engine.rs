//! Dependency-graph evaluation of one pipeline chain.
//!
//! A *chain* is one data-parallel replica's pipeline: `pp` devices, each
//! executing its schedule order, with forward activations flowing down and
//! backward gradients flowing up over links with finite bandwidth. The
//! engine computes exact start/finish times under three constraints:
//!
//! 1. each device runs its tasks in schedule order, one at a time;
//! 2. `F(s, m)` needs `F(s-1, m)` plus the forward transfer time;
//! 3. `B(s, m)` needs `B(s+1, m)` plus the backward transfer time
//!    (the last stage's backward follows its own forward).
//!
//! Constraint 1 applied to the 1F1B order is what materializes the hidden
//! critical path: `F(m + pp)` on stage 0 is queued after `B(m)`, which
//! transitively waits on a full round trip through the pipeline.

use crate::schedule::{PipelineSchedule, Task, TaskKind};
use serde::{Deserialize, Serialize};

/// Inputs for one pipeline chain simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainSpec {
    /// Number of pipeline stages.
    pub pp: usize,
    /// Microbatches per iteration.
    pub n_mb: u64,
    /// Schedule family.
    pub schedule: PipelineSchedule,
    /// Per-stage forward duration of one microbatch (compute + TP comm).
    pub fwd_time: Vec<f64>,
    /// Per-stage backward duration of one microbatch.
    pub bwd_time: Vec<f64>,
    /// Forward activation transfer time from stage `s` to `s+1` (length `pp-1`).
    pub fwd_comm: Vec<f64>,
    /// Backward gradient transfer time from stage `s+1` to `s` (length `pp-1`).
    pub bwd_comm: Vec<f64>,
}

/// Timing results of a chain simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainResult {
    /// Finish time of the entire chain (last backward anywhere).
    pub makespan: f64,
    /// Finish time of each stage's final backward (when its DP all-reduce
    /// may start).
    pub stage_finish: Vec<f64>,
    /// Total busy (computing) time per stage, for bubble accounting.
    pub stage_busy: Vec<f64>,
}

impl ChainSpec {
    fn validate(&self) {
        debug_assert!(self.pp > 0 && self.n_mb > 0, "empty chain");
        debug_assert_eq!(self.fwd_time.len(), self.pp, "fwd_time length");
        debug_assert_eq!(self.bwd_time.len(), self.pp, "bwd_time length");
        debug_assert_eq!(self.fwd_comm.len(), self.pp - 1, "fwd_comm length");
        debug_assert_eq!(self.bwd_comm.len(), self.pp - 1, "bwd_comm length");
        let all_finite = self
            .fwd_time
            .iter()
            .chain(&self.bwd_time)
            .chain(&self.fwd_comm)
            .chain(&self.bwd_comm)
            .all(|t| t.is_finite() && *t >= 0.0);
        debug_assert!(all_finite, "durations must be finite and non-negative");
    }

    /// Evaluates the chain, returning exact task timing.
    ///
    /// # Panics
    ///
    /// Panics if the spec is malformed (see field docs).
    pub fn simulate(&self) -> ChainResult {
        self.simulate_impl(None)
    }

    /// Like [`Self::simulate`], but also records every task's start/finish
    /// for timeline rendering (see [`crate::trace`]).
    pub fn trace(&self) -> (ChainResult, Vec<crate::trace::TaskEvent>) {
        let mut events = Vec::new();
        let result = self.simulate_impl(Some(&mut events));
        (result, events)
    }

    fn simulate_impl(&self, mut record: Option<&mut Vec<crate::trace::TaskEvent>>) -> ChainResult {
        self.validate();
        let pp = self.pp;
        let n_mb = self.n_mb as usize;
        let orders: Vec<Vec<Task>> = (0..pp)
            .map(|s| self.schedule.stage_order(pp, s, self.n_mb))
            .collect();

        let unset = f64::NEG_INFINITY;
        let mut fwd_done = vec![vec![unset; n_mb]; pp];
        let mut bwd_done = vec![vec![unset; n_mb]; pp];
        let mut next = vec![0usize; pp];
        let mut device_free = vec![0.0f64; pp];
        let mut stage_busy = vec![0.0f64; pp];
        let mut remaining: usize = orders.iter().map(Vec::len).sum();

        while remaining > 0 {
            let mut progressed = false;
            for s in 0..pp {
                while next[s] < orders[s].len() {
                    let task = orders[s][next[s]];
                    let m = task.microbatch as usize;
                    let ready = match task.kind {
                        TaskKind::Forward => {
                            if s == 0 {
                                Some(0.0)
                            } else if fwd_done[s - 1][m] > unset {
                                Some(fwd_done[s - 1][m] + self.fwd_comm[s - 1])
                            } else {
                                None
                            }
                        }
                        TaskKind::Backward => {
                            if s == pp - 1 {
                                // Own forward must be done; device order
                                // guarantees it was scheduled earlier.
                                if fwd_done[s][m] > unset {
                                    Some(fwd_done[s][m])
                                } else {
                                    None
                                }
                            } else if bwd_done[s + 1][m] > unset {
                                Some(bwd_done[s + 1][m] + self.bwd_comm[s])
                            } else {
                                None
                            }
                        }
                    };
                    let Some(ready) = ready else { break };
                    let start = device_free[s].max(ready);
                    let dur = match task.kind {
                        TaskKind::Forward => self.fwd_time[s],
                        TaskKind::Backward => self.bwd_time[s],
                    };
                    let finish = start + dur;
                    match task.kind {
                        TaskKind::Forward => fwd_done[s][m] = finish,
                        TaskKind::Backward => bwd_done[s][m] = finish,
                    }
                    if let Some(events) = record.as_deref_mut() {
                        events.push(crate::trace::TaskEvent {
                            stage: s,
                            task,
                            start,
                            finish,
                        });
                    }
                    device_free[s] = finish;
                    stage_busy[s] += dur;
                    next[s] += 1;
                    remaining -= 1;
                    progressed = true;
                }
            }
            // pipette-lint: allow(D2) -- deadlock guard: an invalid schedule must abort in release too, or the loop spins forever
            assert!(
                progressed,
                "pipeline schedule deadlocked — invalid schedule"
            );
        }

        let stage_finish: Vec<f64> = (0..pp)
            .map(|s| bwd_done[s].iter().cloned().fold(0.0, f64::max))
            .collect();
        let makespan = stage_finish.iter().cloned().fold(0.0, f64::max);
        ChainResult {
            makespan,
            stage_finish,
            stage_busy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn uniform_spec(pp: usize, n_mb: u64, c: f64, d: f64, sched: PipelineSchedule) -> ChainSpec {
        ChainSpec {
            pp,
            n_mb,
            schedule: sched,
            fwd_time: vec![c; pp],
            bwd_time: vec![2.0 * c; pp],
            fwd_comm: vec![d; pp.saturating_sub(1)],
            bwd_comm: vec![d; pp.saturating_sub(1)],
        }
    }

    #[test]
    fn single_stage_is_serial() {
        let r = uniform_spec(1, 5, 1.0, 0.0, PipelineSchedule::OneFOneB).simulate();
        // 5 forwards (1 s) + 5 backwards (2 s) = 15 s.
        assert!((r.makespan - 15.0).abs() < 1e-9);
        assert_eq!(r.stage_busy, vec![15.0]);
    }

    #[test]
    fn two_stage_pipeline_overlaps() {
        let r = uniform_spec(2, 4, 1.0, 0.0, PipelineSchedule::OneFOneB).simulate();
        // Serial would be 2 stages * 12 s = 24 s; pipelining must beat it
        // and cannot beat the busy bound of 12 s.
        assert!(r.makespan < 24.0);
        assert!(r.makespan >= 12.0);
    }

    #[test]
    fn known_1f1b_makespan_no_comm() {
        // Uniform stages, zero comm: 1F1B makespan is
        // (pp - 1) * fwd + n_mb * (fwd + bwd) for the first stage's path.
        for pp in [2usize, 3, 4] {
            for n_mb in [4u64, 8, 12] {
                let r = uniform_spec(pp, n_mb, 1.0, 0.0, PipelineSchedule::OneFOneB).simulate();
                let expected = (pp as f64 - 1.0) * 3.0 + n_mb as f64 * 3.0;
                assert!(
                    (r.makespan - expected).abs() < 1e-9,
                    "pp={pp} n_mb={n_mb}: {} vs {expected}",
                    r.makespan
                );
            }
        }
    }

    #[test]
    fn hidden_critical_path_charges_comm_every_pp_microbatches() {
        // With comm delay d and compute small, 1F1B pays a full round trip
        // roughly every pp microbatches (the §V hidden path). GPipe's
        // forward wave does not.
        let d = 1.0;
        let c = 0.01;
        let one_f = uniform_spec(4, 16, c, d, PipelineSchedule::OneFOneB).simulate();
        let gpipe = uniform_spec(4, 16, c, d, PipelineSchedule::GPipe).simulate();
        assert!(
            one_f.makespan > gpipe.makespan * 2.0,
            "1F1B {} should pay far more comm than GPipe {}",
            one_f.makespan,
            gpipe.makespan
        );
        // Lower bound: (n_mb/pp) round trips of 2*(pp-1)*d.
        let round_trips = 16.0 / 4.0 * 2.0 * 3.0 * d;
        assert!(one_f.makespan > round_trips * 0.8);
    }

    #[test]
    fn gpipe_makespan_matches_closed_form_no_comm() {
        // GPipe with uniform stages and no comm: fill (pp-1)·f, all
        // forwards n·f, drain bubble then backwards — the classic
        // (pp-1)(f+b) + n(f+b) total.
        for pp in [2usize, 4, 8] {
            for n_mb in [8u64, 16] {
                let r = uniform_spec(pp, n_mb, 1.0, 0.0, PipelineSchedule::GPipe).simulate();
                let expected = (pp as f64 - 1.0) * 3.0 + n_mb as f64 * 3.0;
                assert!(
                    (r.makespan - expected).abs() < 1e-9,
                    "pp={pp} n_mb={n_mb}: {} vs {expected}",
                    r.makespan
                );
            }
        }
    }

    #[test]
    fn slow_stage_dominates() {
        let mut spec = uniform_spec(3, 9, 1.0, 0.0, PipelineSchedule::OneFOneB);
        spec.fwd_time[1] = 2.0;
        spec.bwd_time[1] = 4.0;
        let r = spec.simulate();
        // The straggler stage is busy 9 * 6 = 54 s; makespan at least that.
        assert!(r.makespan >= 54.0);
    }

    #[test]
    fn stage_finish_is_monotone_toward_stage_zero() {
        // In 1F1B the first stage finishes its last backward no earlier
        // than downstream stages (it receives the final gradient last).
        let r = uniform_spec(4, 8, 1.0, 0.1, PipelineSchedule::OneFOneB).simulate();
        for s in 1..4 {
            assert!(r.stage_finish[s - 1] >= r.stage_finish[s]);
        }
        assert_eq!(r.makespan, r.stage_finish[0]);
    }

    #[test]
    #[should_panic(expected = "fwd_comm length")]
    fn malformed_spec_rejected() {
        let mut spec = uniform_spec(3, 2, 1.0, 0.0, PipelineSchedule::OneFOneB);
        spec.fwd_comm = vec![0.0; 5];
        spec.simulate();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn makespan_bounds(
            pp in 1usize..6,
            n_mb in 1u64..20,
            c in 0.1f64..2.0,
            d in 0.0f64..0.5,
            gpipe in proptest::bool::ANY,
        ) {
            let sched = if gpipe { PipelineSchedule::GPipe } else { PipelineSchedule::OneFOneB };
            let r = uniform_spec(pp, n_mb, c, d, sched).simulate();
            // Lower bound: busiest stage. Upper bound: fully serial
            // execution of every task plus every transfer.
            let busy = n_mb as f64 * 3.0 * c;
            let serial = pp as f64 * busy + 2.0 * n_mb as f64 * (pp as f64 - 1.0) * d;
            prop_assert!(r.makespan >= busy - 1e-9);
            prop_assert!(r.makespan <= serial + 1e-9);
        }

        #[test]
        fn comm_only_slows_things_down(
            pp in 2usize..6,
            n_mb in 1u64..16,
        ) {
            let fast = uniform_spec(pp, n_mb, 1.0, 0.0, PipelineSchedule::OneFOneB).simulate();
            let slow = uniform_spec(pp, n_mb, 1.0, 0.7, PipelineSchedule::OneFOneB).simulate();
            prop_assert!(slow.makespan >= fast.makespan);
        }
    }
}
