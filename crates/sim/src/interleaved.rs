//! Interleaved 1F1B — Megatron-LM's virtual-pipeline schedule.
//!
//! With `v` *virtual stages* (model chunks) per device, the model is split
//! into `pp · v` chunks; device `d` hosts chunks `{c·pp + d}`. Microbatches
//! stream through all `pp · v` virtual stages in order, so the pipeline
//! fill shrinks by roughly `v×` (smaller bubble) at the cost of `v×` more
//! inter-device messages — including a wrap-around hop from the last
//! device back to the first between consecutive chunks. The paper's
//! Megatron-LM lineage (\[5\]) introduced this schedule; we provide it as a
//! simulator extension and ablation axis.
//!
//! The device-order closed form follows Megatron-LM: device `d` warms up
//! with `min(2·(pp − d − 1) + (v − 1)·pp, v·n_mb)` forwards, then strictly
//! alternates one-forward-one-backward, with microbatches advancing in
//! groups of `pp` and chunks rotating within each group.

use crate::schedule::{Task, TaskKind};
use serde::{Deserialize, Serialize};

/// Decomposition of a device-local work item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkTask {
    /// Model-chunk index on this device, `0..v`.
    pub chunk: usize,
    /// The pass and microbatch.
    pub task: Task,
}

/// The `k`-th forward work item of any device: which chunk, which
/// microbatch.
fn forward_item(pp: usize, v: usize, k: u64) -> (usize, u64) {
    let group = k / (pp as u64 * v as u64);
    let pos = k % (pp as u64 * v as u64);
    let chunk = (pos / pp as u64) as usize;
    let mb = group * pp as u64 + pos % pp as u64;
    (chunk, mb)
}

/// The `k`-th backward work item (chunks drain in reverse order).
fn backward_item(pp: usize, v: usize, k: u64) -> (usize, u64) {
    let (chunk, mb) = forward_item(pp, v, k);
    (v - 1 - chunk, mb)
}

/// Execution order of device `device` under interleaved 1F1B.
///
/// # Panics
///
/// Panics if `v < 2`, `device >= pp`, or `pp` does not divide `n_mb`
/// (Megatron-LM requires the microbatch count to be a multiple of the
/// pipeline depth for this schedule).
pub fn device_order(pp: usize, v: usize, device: usize, n_mb: u64) -> Vec<ChunkTask> {
    debug_assert!(v >= 2, "interleaving needs at least two chunks per device");
    debug_assert!(device < pp, "device out of range");
    debug_assert!(
        n_mb > 0 && n_mb.is_multiple_of(pp as u64),
        "n_mb must be a positive multiple of pp"
    );
    let total = n_mb * v as u64;
    let warmup = ((2 * (pp - device - 1) + (v - 1) * pp) as u64).min(total);
    let mut order = Vec::with_capacity(2 * total as usize);
    for k in 0..warmup {
        let (chunk, mb) = forward_item(pp, v, k);
        order.push(ChunkTask {
            chunk,
            task: Task {
                kind: TaskKind::Forward,
                microbatch: mb,
            },
        });
    }
    for k in 0..(total - warmup) {
        let (fc, fm) = forward_item(pp, v, warmup + k);
        order.push(ChunkTask {
            chunk: fc,
            task: Task {
                kind: TaskKind::Forward,
                microbatch: fm,
            },
        });
        let (bc, bm) = backward_item(pp, v, k);
        order.push(ChunkTask {
            chunk: bc,
            task: Task {
                kind: TaskKind::Backward,
                microbatch: bm,
            },
        });
    }
    for k in (total - warmup)..total {
        let (bc, bm) = backward_item(pp, v, k);
        order.push(ChunkTask {
            chunk: bc,
            task: Task {
                kind: TaskKind::Backward,
                microbatch: bm,
            },
        });
    }
    order
}

/// Peak in-flight activation load on `device`, where in-flight chunk `c`
/// weighs `weights[c]` (e.g. bytes). Scans the actual execution order.
pub fn peak_inflight_weighted(
    pp: usize,
    v: usize,
    device: usize,
    n_mb: u64,
    weights: &[u64],
) -> u64 {
    debug_assert_eq!(weights.len(), v, "one weight per chunk");
    let mut load: i128 = 0;
    let mut peak: i128 = 0;
    for item in device_order(pp, v, device, n_mb) {
        match item.task.kind {
            TaskKind::Forward => load += weights[item.chunk] as i128,
            TaskKind::Backward => load -= weights[item.chunk] as i128,
        }
        peak = peak.max(load);
    }
    peak.max(0) as u64
}

/// Timing inputs for one interleaved pipeline chain: `pp · v` virtual
/// stages, with per-virtual-stage durations and per-hop transfer times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VirtualChainSpec {
    /// Devices (pipeline depth).
    pub pp: usize,
    /// Chunks per device.
    pub chunks: usize,
    /// Microbatches (multiple of `pp`).
    pub n_mb: u64,
    /// Forward duration per virtual stage (length `pp · chunks`).
    pub fwd_time: Vec<f64>,
    /// Backward duration per virtual stage.
    pub bwd_time: Vec<f64>,
    /// Forward transfer time from virtual stage `s` to `s + 1`
    /// (length `pp · chunks − 1`; entries at chunk boundaries are the
    /// wrap-around device `pp−1 → 0` links).
    pub fwd_comm: Vec<f64>,
    /// Backward transfer time from virtual stage `s + 1` to `s`.
    pub bwd_comm: Vec<f64>,
}

/// Timing results of an interleaved chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VirtualChainResult {
    /// Finish time of the whole chain.
    pub makespan: f64,
    /// Finish of each *device's* final backward (for DP sync gating).
    pub device_finish: Vec<f64>,
    /// Busy time per device.
    pub device_busy: Vec<f64>,
}

impl VirtualChainSpec {
    fn validate(&self) {
        let s = self.pp * self.chunks;
        debug_assert!(
            self.pp > 0 && self.chunks >= 2,
            "need pp >= 1 and chunks >= 2"
        );
        debug_assert!(
            self.n_mb > 0 && self.n_mb.is_multiple_of(self.pp as u64),
            "n_mb must be a multiple of pp"
        );
        debug_assert_eq!(self.fwd_time.len(), s, "fwd_time length");
        debug_assert_eq!(self.bwd_time.len(), s, "bwd_time length");
        debug_assert_eq!(self.fwd_comm.len(), s - 1, "fwd_comm length");
        debug_assert_eq!(self.bwd_comm.len(), s - 1, "bwd_comm length");
    }

    /// Evaluates the chain with the same dependency relaxation as the
    /// non-interleaved engine, at virtual-stage granularity.
    ///
    /// # Panics
    ///
    /// Panics if the spec is malformed or the schedule deadlocks (which
    /// would indicate an invalid device order).
    pub fn simulate(&self) -> VirtualChainResult {
        self.validate();
        let pp = self.pp;
        let v = self.chunks;
        let s_total = pp * v;
        let n_mb = self.n_mb as usize;
        let orders: Vec<Vec<ChunkTask>> =
            (0..pp).map(|d| device_order(pp, v, d, self.n_mb)).collect();

        let unset = f64::NEG_INFINITY;
        let mut fwd_done = vec![vec![unset; n_mb]; s_total];
        let mut bwd_done = vec![vec![unset; n_mb]; s_total];
        let mut next = vec![0usize; pp];
        let mut device_free = vec![0.0f64; pp];
        let mut device_busy = vec![0.0f64; pp];
        let mut remaining: usize = orders.iter().map(Vec::len).sum();

        while remaining > 0 {
            let mut progressed = false;
            for d in 0..pp {
                while next[d] < orders[d].len() {
                    let item = orders[d][next[d]];
                    let s = item.chunk * pp + d;
                    let m = item.task.microbatch as usize;
                    let ready = match item.task.kind {
                        TaskKind::Forward => {
                            if s == 0 {
                                Some(0.0)
                            } else if fwd_done[s - 1][m] > unset {
                                Some(fwd_done[s - 1][m] + self.fwd_comm[s - 1])
                            } else {
                                None
                            }
                        }
                        TaskKind::Backward => {
                            if s == s_total - 1 {
                                if fwd_done[s][m] > unset {
                                    Some(fwd_done[s][m])
                                } else {
                                    None
                                }
                            } else if bwd_done[s + 1][m] > unset {
                                Some(bwd_done[s + 1][m] + self.bwd_comm[s])
                            } else {
                                None
                            }
                        }
                    };
                    let Some(ready) = ready else { break };
                    let start = device_free[d].max(ready);
                    let dur = match item.task.kind {
                        TaskKind::Forward => self.fwd_time[s],
                        TaskKind::Backward => self.bwd_time[s],
                    };
                    let finish = start + dur;
                    match item.task.kind {
                        TaskKind::Forward => fwd_done[s][m] = finish,
                        TaskKind::Backward => bwd_done[s][m] = finish,
                    }
                    device_free[d] = finish;
                    device_busy[d] += dur;
                    next[d] += 1;
                    remaining -= 1;
                    progressed = true;
                }
            }
            // pipette-lint: allow(D2) -- deadlock guard: an invalid device order must abort in release too, or the loop spins forever
            assert!(
                progressed,
                "interleaved schedule deadlocked — invalid device order"
            );
        }

        let device_finish: Vec<f64> = (0..pp)
            .map(|d| {
                (0..v)
                    .flat_map(|c| bwd_done[c * pp + d].iter().cloned())
                    .fold(0.0, f64::max)
            })
            .collect();
        let makespan = device_finish.iter().cloned().fold(0.0, f64::max);
        VirtualChainResult {
            makespan,
            device_finish,
            device_busy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn device_order_covers_every_chunk_microbatch_once() {
        for (pp, v, n_mb) in [(2usize, 2usize, 4u64), (4, 2, 8), (4, 3, 12), (8, 2, 16)] {
            for d in 0..pp {
                let order = device_order(pp, v, d, n_mb);
                assert_eq!(order.len() as u64, 2 * n_mb * v as u64);
                let mut fwd = vec![vec![0u32; n_mb as usize]; v];
                let mut bwd = vec![vec![0u32; n_mb as usize]; v];
                for item in &order {
                    match item.task.kind {
                        TaskKind::Forward => fwd[item.chunk][item.task.microbatch as usize] += 1,
                        TaskKind::Backward => bwd[item.chunk][item.task.microbatch as usize] += 1,
                    }
                }
                assert!(fwd.iter().flatten().all(|&c| c == 1), "pp={pp} v={v} d={d}");
                assert!(bwd.iter().flatten().all(|&c| c == 1));
            }
        }
    }

    fn uniform_spec(pp: usize, v: usize, n_mb: u64, c: f64, d: f64) -> VirtualChainSpec {
        let s = pp * v;
        VirtualChainSpec {
            pp,
            chunks: v,
            n_mb,
            fwd_time: vec![c; s],
            bwd_time: vec![2.0 * c; s],
            fwd_comm: vec![d; s - 1],
            bwd_comm: vec![d; s - 1],
        }
    }

    #[test]
    fn interleaved_schedule_is_deadlock_free() {
        for (pp, v) in [(2usize, 2usize), (2, 4), (4, 2), (4, 4), (8, 2), (8, 3)] {
            for groups in [1u64, 2, 4] {
                let n_mb = pp as u64 * groups;
                let r = uniform_spec(pp, v, n_mb, 1.0, 0.05).simulate();
                assert!(
                    r.makespan.is_finite() && r.makespan > 0.0,
                    "pp={pp} v={v} n_mb={n_mb}"
                );
            }
        }
    }

    #[test]
    fn busy_time_is_schedule_invariant() {
        // Total work per device is the same with or without interleaving.
        let r = uniform_spec(4, 2, 8, 1.0, 0.0).simulate();
        for d in 0..4 {
            // 8 microbatches × 2 chunks × (1 + 2) seconds.
            assert!((r.device_busy[d] - 48.0).abs() < 1e-9);
        }
    }

    #[test]
    fn interleaving_shrinks_the_fill_bubble() {
        // Bubble-dominated regime: few microbatches, deep pipeline.
        // Interleaved 1F1B's fill is ~v× shorter than the non-interleaved
        // schedule's.
        use crate::engine::ChainSpec;
        use crate::schedule::PipelineSchedule;
        let (pp, n_mb, c) = (8usize, 8u64, 1.0f64);
        let plain = ChainSpec {
            pp,
            n_mb,
            schedule: PipelineSchedule::OneFOneB,
            fwd_time: vec![c; pp],
            bwd_time: vec![2.0 * c; pp],
            fwd_comm: vec![0.0; pp - 1],
            bwd_comm: vec![0.0; pp - 1],
        }
        .simulate();
        // Same model split into twice as many chunks: per-chunk time c/2.
        let inter = uniform_spec(pp, 2, n_mb, c / 2.0, 0.0).simulate();
        assert!(
            inter.makespan < plain.makespan,
            "interleaving should cut the bubble: {} vs {}",
            inter.makespan,
            plain.makespan
        );
        // Busy lower bound still holds.
        assert!(inter.makespan >= n_mb as f64 * 3.0 * c - 1e-9);
    }

    #[test]
    fn interleaving_pays_more_communication() {
        // Comm-heavy regime: the extra hops hurt.
        let (pp, n_mb) = (4usize, 8u64);
        let plain = uniform_spec(pp, 2, n_mb, 1.0, 0.0).simulate();
        let comm_heavy = uniform_spec(pp, 2, n_mb, 1.0, 0.5).simulate();
        assert!(comm_heavy.makespan > plain.makespan);
    }

    #[test]
    fn peak_inflight_bounded_by_warmup_plus_one() {
        for (pp, v) in [(2usize, 2usize), (4, 2), (4, 4), (8, 2)] {
            let n_mb = 4 * pp as u64;
            for d in 0..pp {
                let weights = vec![1u64; v];
                let peak = peak_inflight_weighted(pp, v, d, n_mb, &weights);
                let warmup = (2 * (pp - d - 1) + (v - 1) * pp) as u64;
                assert!(
                    peak <= warmup + 1,
                    "pp={pp} v={v} d={d}: peak {peak} vs warmup {warmup}"
                );
                assert!(peak >= 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "multiple of pp")]
    fn indivisible_microbatches_rejected() {
        device_order(4, 2, 0, 6);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn makespan_respects_bounds(
            pp in 2usize..6,
            v in 2usize..4,
            groups in 1u64..4,
            c in 0.1f64..1.0,
            d in 0.0f64..0.3,
        ) {
            let n_mb = pp as u64 * groups;
            let r = uniform_spec(pp, v, n_mb, c, d).simulate();
            let busy = n_mb as f64 * v as f64 * 3.0 * c;
            let s = (pp * v) as f64;
            let serial = s * busy + 2.0 * n_mb as f64 * (s - 1.0) * d;
            prop_assert!(r.makespan >= busy - 1e-9);
            prop_assert!(r.makespan <= serial + 1e-9);
        }
    }
}
