//! Ground-truth training simulator for the Pipette reproduction.
//!
//! The paper measures configurations by actually training GPT models on a
//! 128-GPU cluster. This crate is the stand-in: a deterministic simulator
//! of one training iteration under 3D parallelism, built from
//!
//! * per-link point-to-point and ring/hierarchical all-reduce models
//!   ([`comm`]) over the heterogeneous bandwidth matrix,
//! * the memory-efficient 1F1B and the GPipe pipeline schedules
//!   ([`schedule`]) evaluated as task dependency graphs ([`engine`]),
//! * per-stage compute times from FLOP counts ([`compute`]),
//! * a peak-memory model including the framework overheads that analytic
//!   estimators miss ([`memsim`]), and
//! * a profiling facade ([`profile`]) producing the noisy measurements the
//!   Pipette estimator consumes.
//!
//! The crucial structural property: the simulated 1F1B schedule contains
//! the *hidden critical path* of §V — every `pp` microbatches, the first
//! stage must wait for a backward to travel the whole pipeline — so
//! latency models that ignore it (AMP's Eq. 1) mis-rank configurations
//! here exactly as they do on real clusters.
//!
//! # Example
//!
//! ```
//! use pipette_cluster::presets;
//! use pipette_model::{GptConfig, MicrobatchPlan, ParallelConfig};
//! use pipette_sim::{ClusterRun, Mapping};
//!
//! let cluster = presets::mid_range(2).build(7);
//! let gpt = GptConfig::new(8, 1024, 16, 2048, 51200);
//! let cfg = ParallelConfig::new(2, 4, 2);
//! let mapping = Mapping::identity(cfg, *cluster.topology());
//! let plan = MicrobatchPlan::new(32, 2)?;
//! let run = ClusterRun::new(&cluster, &gpt);
//! let measured = run.execute(cfg, &mapping, plan)?;
//! assert!(measured.iteration_seconds > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comm;
pub mod compute;
pub mod engine;
pub mod error;
pub mod interleaved;
pub mod iteration;
pub mod mapping;
pub mod memsim;
pub mod options;
pub mod profile;
pub mod run;
pub mod schedule;
pub mod trace;

pub use comm::{CommModel, HierScratch};
pub use error::SimError;
pub use iteration::{IterationReport, IterationSim};
pub use mapping::Mapping;
pub use memsim::{MemoryReport, MemorySim};
pub use options::{ActivationMode, TrainingOptions};
pub use profile::{ComputeProfiler, ProfiledCompute};
pub use run::{ClusterRun, Measured};
pub use schedule::{PipelineSchedule, Task, TaskKind};
