//! Training-feature options shared by the timing and memory simulators.

use crate::schedule::PipelineSchedule;
use serde::{Deserialize, Serialize};

/// How activations are handled between forward and backward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ActivationMode {
    /// Store everything (fastest backward, largest memory).
    #[default]
    Full,
    /// Megatron-LM's selective recomputation: drop the quadratic attention
    /// tensors and recompute them during backward — large memory saving,
    /// small compute overhead.
    Selective,
    /// Full checkpointing: store only layer inputs, replay the whole
    /// forward during backward (how pipeline-only systems fit).
    FullRecompute,
}

/// The feature set a training job runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TrainingOptions {
    /// Pipeline schedule family.
    pub schedule: PipelineSchedule,
    /// Activation storage policy.
    pub activation: ActivationMode,
    /// ZeRO-1 style distributed optimizer: shard the optimizer state
    /// across the data-parallel group (gradient sync becomes
    /// reduce-scatter + all-gather, slightly cheaper than an all-reduce).
    pub zero1: bool,
    /// Virtual pipeline stages per device (interleaved 1F1B when > 1).
    /// Requires the 1F1B schedule and `pp | n_mb`.
    pub virtual_stages: usize,
    /// Model NIC sharing: the `tp` concurrent communicators of a node
    /// divide its inter-node bandwidth. Off by default (the estimator does
    /// not model it — enabling this is a robustness ablation).
    pub nic_contention: bool,
}

impl Default for TrainingOptions {
    fn default() -> Self {
        Self {
            schedule: PipelineSchedule::OneFOneB,
            activation: ActivationMode::Full,
            zero1: false,
            virtual_stages: 1,
            nic_contention: false,
        }
    }
}

impl TrainingOptions {
    /// The modern default: 1F1B, full activation storage, replicated
    /// optimizer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Switches the pipeline schedule.
    pub fn with_schedule(mut self, schedule: PipelineSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Switches the activation policy.
    pub fn with_activation(mut self, activation: ActivationMode) -> Self {
        self.activation = activation;
        self
    }

    /// Enables/disables the distributed optimizer.
    pub fn with_zero1(mut self, zero1: bool) -> Self {
        self.zero1 = zero1;
        self
    }

    /// Enables/disables NIC-sharing contention.
    pub fn with_nic_contention(mut self, on: bool) -> Self {
        self.nic_contention = on;
        self
    }

    /// Sets the number of virtual pipeline stages per device
    /// (interleaved 1F1B when `v > 1`).
    ///
    /// # Panics
    ///
    /// Panics if `v == 0`.
    pub fn with_interleaving(mut self, v: usize) -> Self {
        debug_assert!(v >= 1, "need at least one virtual stage");
        self.virtual_stages = v;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_modern_megatron() {
        let o = TrainingOptions::default();
        assert_eq!(o.schedule, PipelineSchedule::OneFOneB);
        assert_eq!(o.activation, ActivationMode::Full);
        assert!(!o.zero1);
        assert_eq!(o.virtual_stages, 1);
    }

    #[test]
    fn builders_compose() {
        let o = TrainingOptions::new()
            .with_schedule(PipelineSchedule::GPipe)
            .with_activation(ActivationMode::Selective)
            .with_zero1(true)
            .with_interleaving(2);
        assert_eq!(o.schedule, PipelineSchedule::GPipe);
        assert_eq!(o.activation, ActivationMode::Selective);
        assert!(o.zero1);
        assert_eq!(o.virtual_stages, 2);
    }
}
