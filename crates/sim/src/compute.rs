//! Per-stage compute time model.
//!
//! A microbatch's forward/backward time on a stage is its FLOP count
//! divided by the tensor-parallel degree and the GPU's effective
//! throughput, plus a small fixed kernel-launch overhead per layer.

use pipette_cluster::GpuSpec;
use pipette_model::{flops, GptConfig};

/// Per-layer fixed overhead (kernel launches, optimizer glue), seconds.
pub const LAYER_OVERHEAD_S: f64 = 40e-6;

/// Forward time of one microbatch on stage `stage` (compute only, no
/// communication).
pub fn stage_fwd_time_s(
    gpt: &GptConfig,
    gpu: &GpuSpec,
    pp: usize,
    tp: usize,
    stage: usize,
    micro_batch: u64,
) -> f64 {
    let f = flops::stage_fwd_flops(gpt, pp, stage, micro_batch);
    let layers = gpt.layers_of_stage(pp, stage) as f64;
    f / (tp as f64 * gpu.effective_flops()) + layers * LAYER_OVERHEAD_S
}

/// Backward time of one microbatch on stage `stage` (2× the forward
/// FLOPs).
pub fn stage_bwd_time_s(
    gpt: &GptConfig,
    gpu: &GpuSpec,
    pp: usize,
    tp: usize,
    stage: usize,
    micro_batch: u64,
) -> f64 {
    let f = flops::stage_bwd_flops(gpt, pp, stage, micro_batch);
    let layers = gpt.layers_of_stage(pp, stage) as f64;
    f / (tp as f64 * gpu.effective_flops()) + layers * LAYER_OVERHEAD_S
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> GpuSpec {
        GpuSpec::v100()
    }

    #[test]
    fn backward_roughly_twice_forward() {
        let g = GptConfig::gpt_1_1b();
        let f = stage_fwd_time_s(&g, &gpu(), 4, 2, 1, 2);
        let b = stage_bwd_time_s(&g, &gpu(), 4, 2, 1, 2);
        let ratio = b / f;
        assert!(ratio > 1.8 && ratio < 2.1, "ratio {ratio}");
    }

    #[test]
    fn tensor_parallelism_cuts_compute() {
        let g = GptConfig::gpt_1_1b();
        let t1 = stage_fwd_time_s(&g, &gpu(), 2, 1, 0, 2);
        let t8 = stage_fwd_time_s(&g, &gpu(), 2, 8, 0, 2);
        assert!(t1 / t8 > 6.0 && t1 / t8 < 8.5);
    }

    #[test]
    fn a100_is_faster() {
        let g = GptConfig::gpt_3_1b();
        let v = stage_fwd_time_s(&g, &GpuSpec::v100(), 4, 8, 0, 1);
        let a = stage_fwd_time_s(&g, &GpuSpec::a100(), 4, 8, 0, 1);
        assert!(a < v);
    }

    #[test]
    fn plausible_magnitude() {
        // One microbatch (1 sample, 2048 tokens) of GPT-3.1B on a V100
        // stage with pp=4, tp=8 should take on the order of milliseconds.
        let g = GptConfig::gpt_3_1b();
        let t = stage_fwd_time_s(&g, &gpu(), 4, 8, 1, 1);
        assert!(t > 1e-4 && t < 0.2, "t = {t}");
    }
}
