//! Ground-truth peak GPU memory simulation.
//!
//! Real peak memory is much larger than the analytically visible model
//! state + activations: the training framework and external libraries add
//! a CUDA context, NCCL communicator buffers, cuBLAS/cuDNN workspaces, and
//! allocator fragmentation (the paper's §VI, citing \[21\]). This module is
//! the reproduction's stand-in for `torch.cuda.max_memory_allocated()`:
//! it computes the visible terms from `pipette-model` and adds the hidden
//! ones, plus a small deterministic per-configuration jitter so the
//! learned estimator faces realistic irreducible error.

use crate::options::{ActivationMode, TrainingOptions};
use crate::schedule::PipelineSchedule;
use pipette_model::{memory, GptConfig, MicrobatchPlan, ParallelConfig};
use serde::{Deserialize, Serialize};

/// Bytes of the CUDA context + framework baseline per GPU.
pub const CUDA_CONTEXT_BYTES: u64 = 900 << 20;
/// Bytes reserved per NCCL communicator.
pub const NCCL_BUFFER_BYTES: u64 = 128 << 20;
/// Bytes of cuBLAS/cuDNN handles and autotuning workspaces.
pub const LIBRARY_BYTES: u64 = 400 << 20;
/// Fraction of dynamic memory lost to allocator fragmentation.
pub const FRAGMENTATION: f64 = 0.07;
/// Relative amplitude of the deterministic per-configuration jitter.
pub const JITTER: f64 = 0.03;

/// Peak-memory breakdown of one GPU (worst GPU of a stage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryBreakdown {
    /// Weights + gradients + optimizer state (bytes).
    pub model_state: u64,
    /// Peak stored activations under the schedule (bytes).
    pub activations: u64,
    /// Framework overhead: context + NCCL + libraries + workspace (bytes).
    pub framework: u64,
    /// Allocator fragmentation (bytes).
    pub fragmentation: u64,
}

impl MemoryBreakdown {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.model_state + self.activations + self.framework + self.fragmentation
    }
}

/// Per-stage peak memory for one configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryReport {
    /// Peak bytes per pipeline stage (every GPU of a stage is equivalent).
    pub per_stage: Vec<u64>,
    /// Worst stage's peak bytes — the number compared against the GPU
    /// memory limit.
    pub peak_bytes: u64,
}

/// Ground-truth memory simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemorySim {
    options: TrainingOptions,
    /// Cluster-specific seed: different clusters (driver/NCCL versions)
    /// exhibit different jitter.
    seed: u64,
}

impl MemorySim {
    /// Creates a simulator with the modern defaults (1F1B, full
    /// activation storage, replicated optimizer) and a cluster seed.
    pub fn new(seed: u64) -> Self {
        Self {
            options: TrainingOptions::default(),
            seed,
        }
    }

    /// Replaces the full training-feature set.
    pub fn with_options(mut self, options: TrainingOptions) -> Self {
        self.options = options;
        self
    }

    /// The feature set in use.
    pub fn options(&self) -> TrainingOptions {
        self.options
    }

    /// Enables full activation recomputation (checkpointing): only layer
    /// inputs are stored, everything else is recomputed in the backward
    /// pass. Pipeline-only systems (Varuna) rely on this to fit.
    pub fn with_recompute(mut self, recompute: bool) -> Self {
        self.options.activation = if recompute {
            ActivationMode::FullRecompute
        } else {
            ActivationMode::Full
        };
        self
    }

    /// Uses a different pipeline schedule (GPipe needs far more activation
    /// memory).
    pub fn with_schedule(mut self, schedule: PipelineSchedule) -> Self {
        self.options.schedule = schedule;
        self
    }

    /// Breakdown for one GPU of `stage`.
    pub fn stage_breakdown(
        &self,
        gpt: &GptConfig,
        cfg: ParallelConfig,
        plan: MicrobatchPlan,
        stage: usize,
    ) -> MemoryBreakdown {
        let vs = self.options.virtual_stages;
        let model_state = if vs > 1 {
            (0..vs)
                .map(|c| {
                    let s = c * cfg.pp + stage;
                    if self.options.zero1 {
                        memory::model_state_bytes_zero1(gpt, cfg.pp * vs, cfg.tp, cfg.dp, s)
                    } else {
                        memory::model_state_bytes(gpt, cfg.pp * vs, cfg.tp, s)
                    }
                })
                .sum()
        } else if self.options.zero1 {
            memory::model_state_bytes_zero1(gpt, cfg.pp, cfg.tp, cfg.dp, stage)
        } else {
            memory::model_state_bytes(gpt, cfg.pp, cfg.tp, stage)
        };
        let per_layer_stored = match self.options.activation {
            ActivationMode::Full => {
                memory::activation_bytes_per_layer(gpt, plan.micro_batch, cfg.tp)
            }
            ActivationMode::Selective => {
                memory::activation_bytes_selective(gpt, plan.micro_batch, cfg.tp)
            }
            ActivationMode::FullRecompute => {
                memory::checkpoint_bytes_per_layer(gpt, plan.micro_batch)
            }
        };
        // Transient working set of the one layer currently recomputing.
        let recompute_transient = match self.options.activation {
            ActivationMode::Full => 0,
            ActivationMode::Selective | ActivationMode::FullRecompute => {
                memory::activation_bytes_per_layer(gpt, plan.micro_batch, cfg.tp)
            }
        };
        let v = self.options.virtual_stages;
        let activations = if v > 1 {
            // Interleaved 1F1B: device `stage` hosts chunks {c·pp + stage};
            // scan the actual device order for the peak in-flight load.
            let weights: Vec<u64> = (0..v)
                .map(|c| {
                    gpt.layers_of_stage(cfg.pp * v, c * cfg.pp + stage) as u64 * per_layer_stored
                })
                .collect();
            crate::interleaved::peak_inflight_weighted(
                cfg.pp,
                v,
                stage,
                plan.n_microbatches,
                &weights,
            ) + recompute_transient
        } else {
            let inflight = match self.options.schedule {
                PipelineSchedule::OneFOneB => {
                    memory::one_f_one_b_inflight(cfg.pp, stage, plan.n_microbatches)
                }
                PipelineSchedule::GPipe => plan.n_microbatches.max(1),
            };
            let layers = gpt.layers_of_stage(cfg.pp, stage) as u64;
            layers * per_layer_stored * inflight + recompute_transient
        };
        let communicators =
            u64::from(cfg.tp > 1) + u64::from(cfg.dp > 1) + 2 * u64::from(cfg.pp > 1);
        // Transient workspace for the largest matmul (the 4h MLP
        // expansion), a handful of buffers deep.
        let workspace =
            8 * plan.micro_batch * gpt.seq_len as u64 * gpt.hidden as u64 * 2 / cfg.tp as u64;
        let framework =
            CUDA_CONTEXT_BYTES + LIBRARY_BYTES + communicators * NCCL_BUFFER_BYTES + workspace;
        let dynamic = model_state + activations;
        let fragmentation = (dynamic as f64 * FRAGMENTATION) as u64;

        let mut b = MemoryBreakdown {
            model_state,
            activations,
            framework,
            fragmentation,
        };
        // Deterministic jitter in [-JITTER, +JITTER] applied to the total,
        // folded into the framework term (which it physically resembles:
        // driver/NCCL version differences, allocator state).
        let h = jitter_hash(self.seed, gpt, cfg, plan, stage);
        let factor = 1.0 + JITTER * (2.0 * h - 1.0);
        let target = (b.total() as f64 * factor) as i64;
        let delta = target - b.total() as i64;
        b.framework = (b.framework as i64 + delta).max(0) as u64;
        b
    }

    /// Full per-stage report; `peak_bytes` is what must fit in GPU memory.
    pub fn report(
        &self,
        gpt: &GptConfig,
        cfg: ParallelConfig,
        plan: MicrobatchPlan,
    ) -> MemoryReport {
        let per_stage: Vec<u64> = (0..cfg.pp)
            .map(|s| self.stage_breakdown(gpt, cfg, plan, s).total())
            .collect();
        let peak_bytes = per_stage.iter().copied().max().unwrap_or(0);
        MemoryReport {
            per_stage,
            peak_bytes,
        }
    }
}

/// FNV-1a based hash mapped to `[0, 1)`, fully deterministic across runs.
fn jitter_hash(
    seed: u64,
    gpt: &GptConfig,
    cfg: ParallelConfig,
    plan: MicrobatchPlan,
    stage: usize,
) -> f64 {
    let mut h: u64 = 0xcbf29ce484222325 ^ seed;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    };
    mix(gpt.n_layers as u64);
    mix(gpt.hidden as u64);
    mix(gpt.n_heads as u64);
    mix(cfg.pp as u64);
    mix(cfg.tp as u64);
    mix(cfg.dp as u64);
    mix(plan.micro_batch);
    mix(plan.n_microbatches);
    mix(stage as u64);
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipette_model::memory::{activation_bytes_1f1b, model_state_bytes};

    fn plan(mini: u64, micro: u64) -> MicrobatchPlan {
        MicrobatchPlan::new(mini, micro).unwrap()
    }

    #[test]
    fn ground_truth_exceeds_analytic_terms() {
        let g = GptConfig::gpt_3_1b();
        let cfg = ParallelConfig::new(8, 4, 4);
        let p = plan(32, 2);
        let sim = MemorySim::new(1);
        let peak = sim.report(&g, cfg, p).peak_bytes;
        let analytic = model_state_bytes(&g, 8, 4, 0) + activation_bytes_1f1b(&g, 8, 4, 0, 2, 32);
        assert!(peak > analytic, "hidden overheads must be visible");
        // But not absurdly so.
        assert!(peak < 3 * analytic);
    }

    #[test]
    fn first_stage_is_the_peak() {
        // Stage 0 holds the most in-flight activations plus embeddings.
        let g = GptConfig::gpt_3_1b();
        let cfg = ParallelConfig::new(8, 4, 4);
        let r = MemorySim::new(1).report(&g, cfg, plan(32, 2));
        assert_eq!(r.peak_bytes, r.per_stage[0]);
        assert!(r.per_stage[0] > r.per_stage[6]);
    }

    #[test]
    fn gpipe_needs_more_memory() {
        let g = GptConfig::gpt_1_1b();
        let cfg = ParallelConfig::new(4, 4, 2);
        let p = plan(64, 2);
        let a = MemorySim::new(1).report(&g, cfg, p).peak_bytes;
        let b = MemorySim::new(1)
            .with_schedule(PipelineSchedule::GPipe)
            .report(&g, cfg, p)
            .peak_bytes;
        assert!(b > 2 * a, "GPipe {b} should dwarf 1F1B {a}");
    }

    #[test]
    fn memory_grows_with_microbatch() {
        let g = GptConfig::gpt_3_1b();
        let cfg = ParallelConfig::new(4, 8, 4);
        let m1 = MemorySim::new(1).report(&g, cfg, plan(32, 1)).peak_bytes;
        let m4 = MemorySim::new(1).report(&g, cfg, plan(32, 4)).peak_bytes;
        assert!(m4 > 2 * m1);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let g = GptConfig::gpt_1_1b();
        let cfg = ParallelConfig::new(4, 4, 2);
        let p = plan(32, 2);
        let a = MemorySim::new(7).report(&g, cfg, p);
        let b = MemorySim::new(7).report(&g, cfg, p);
        let c = MemorySim::new(8).report(&g, cfg, p);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Jitter is bounded.
        let ratio = a.peak_bytes as f64 / c.peak_bytes as f64;
        assert!(ratio > 1.0 - 2.5 * JITTER && ratio < 1.0 + 2.5 * JITTER);
    }

    #[test]
    fn realistic_configs_fit_v100() {
        // The paper's mid-range default: 3.1B on tp=8 fits in 32 GiB with
        // small microbatches but not with large ones.
        let g = GptConfig::gpt_3_1b();
        let cfg = ParallelConfig::new(4, 8, 4);
        let small = MemorySim::new(1).report(&g, cfg, plan(128, 1)).peak_bytes;
        let large = MemorySim::new(1).report(&g, cfg, plan(128, 16)).peak_bytes;
        let v100 = 32u64 << 30;
        assert!(small < v100, "micro=1 should fit: {} GiB", small >> 30);
        assert!(large > v100, "micro=16 should OOM: {} GiB", large >> 30);
    }

    #[test]
    fn activation_modes_order_memory_correctly() {
        use crate::options::{ActivationMode, TrainingOptions};
        let g = GptConfig::gpt_3_1b();
        let cfg = ParallelConfig::new(8, 4, 4);
        let p = plan(32, 2);
        let peak = |mode| {
            MemorySim::new(1)
                .with_options(TrainingOptions::new().with_activation(mode))
                .report(&g, cfg, p)
                .peak_bytes
        };
        let full = peak(ActivationMode::Full);
        let selective = peak(ActivationMode::Selective);
        let ckpt = peak(ActivationMode::FullRecompute);
        assert!(selective < full, "selective {selective} < full {full}");
        assert!(
            ckpt < selective,
            "checkpoint {ckpt} < selective {selective}"
        );
    }

    #[test]
    fn zero1_cuts_model_state() {
        use crate::options::TrainingOptions;
        let g = GptConfig::gpt_3_1b();
        let cfg = ParallelConfig::new(2, 8, 8);
        let p = plan(32, 1);
        let plain = MemorySim::new(1).report(&g, cfg, p).peak_bytes;
        let z1 = MemorySim::new(1)
            .with_options(TrainingOptions::new().with_zero1(true))
            .report(&g, cfg, p)
            .peak_bytes;
        assert!(z1 < plain, "zero1 {z1} < plain {plain}");
    }

    #[test]
    fn interleaving_raises_activation_pressure_on_early_devices() {
        use crate::options::TrainingOptions;
        let g = GptConfig::gpt_3_1b();
        let cfg = ParallelConfig::new(4, 8, 4);
        let p = plan(32, 1);
        let plain = MemorySim::new(1).report(&g, cfg, p);
        let inter = MemorySim::new(1)
            .with_options(TrainingOptions::new().with_interleaving(2))
            .report(&g, cfg, p);
        assert_eq!(inter.per_stage.len(), 4);
        // Device 0 warms up with more in-flight chunks under interleaving.
        assert!(
            inter.per_stage[0] > plain.per_stage[0],
            "interleaved {} vs plain {}",
            inter.per_stage[0],
            plain.per_stage[0]
        );
    }

    #[test]
    fn breakdown_total_matches_report() {
        let g = GptConfig::gpt_1_1b();
        let cfg = ParallelConfig::new(2, 4, 4);
        let p = plan(16, 2);
        let sim = MemorySim::new(3);
        let b = sim.stage_breakdown(&g, cfg, p, 0);
        let r = sim.report(&g, cfg, p);
        assert_eq!(b.total(), r.per_stage[0]);
    }
}
