//! Integration tests across the simulator's features: schedules, traces,
//! training options, and the run facade working together.

use pipette_cluster::presets;
use pipette_model::{GptConfig, MicrobatchPlan, ParallelConfig};
use pipette_sim::engine::ChainSpec;
use pipette_sim::interleaved::{device_order, VirtualChainSpec};
use pipette_sim::schedule::TaskKind;
use pipette_sim::trace::idle_fractions;
use pipette_sim::{
    ActivationMode, ClusterRun, IterationSim, Mapping, PipelineSchedule, TrainingOptions,
};

fn setup() -> (pipette_cluster::Cluster, GptConfig) {
    (
        presets::mid_range(2).build(44),
        GptConfig::new(8, 1024, 16, 2048, 51200),
    )
}

#[test]
fn trace_events_respect_dependencies_at_scale() {
    // Every forward (except stage 0) must start no earlier than its
    // upstream forward finished plus the transfer time.
    let spec = ChainSpec {
        pp: 6,
        n_mb: 24,
        schedule: PipelineSchedule::OneFOneB,
        fwd_time: vec![0.7, 1.0, 0.9, 1.1, 0.8, 1.4],
        bwd_time: vec![1.4, 2.0, 1.8, 2.2, 1.6, 2.8],
        fwd_comm: vec![0.11, 0.07, 0.13, 0.05, 0.09],
        bwd_comm: vec![0.08, 0.12, 0.06, 0.1, 0.07],
    };
    let (result, events) = spec.trace();
    let find = |stage: usize, kind: TaskKind, mb: u64| {
        events
            .iter()
            .find(|e| e.stage == stage && e.task.kind == kind && e.task.microbatch == mb)
            .expect("event exists")
    };
    for mb in 0..24 {
        for s in 1..6 {
            let up = find(s - 1, TaskKind::Forward, mb);
            let down = find(s, TaskKind::Forward, mb);
            assert!(
                down.start + 1e-12 >= up.finish + spec.fwd_comm[s - 1],
                "F({s},{mb}) started early"
            );
        }
        for s in (0..5).rev() {
            let down = find(s + 1, TaskKind::Backward, mb);
            let up = find(s, TaskKind::Backward, mb);
            assert!(
                up.start + 1e-12 >= down.finish + spec.bwd_comm[s],
                "B({s},{mb}) started early"
            );
        }
    }
    // Idle fractions are consistent with the makespan.
    let idle = idle_fractions(&events, 6);
    for (s, f) in idle.iter().enumerate() {
        let busy = 24.0 * (spec.fwd_time[s] + spec.bwd_time[s]);
        assert!(((1.0 - f) * result.makespan - busy).abs() < 1e-9);
    }
}

#[test]
fn interleaved_chain_agrees_with_plain_engine_at_v_boundary() {
    // A v=2 interleaved chain with zero wrap-around comm and symmetric
    // chunks cannot be slower than the fully serial bound and not faster
    // than the busy bound — and its device busy time must equal the plain
    // engine's for the same total work.
    let pp = 4;
    let n_mb = 8u64;
    let plain = ChainSpec {
        pp,
        n_mb,
        schedule: PipelineSchedule::OneFOneB,
        fwd_time: vec![1.0; pp],
        bwd_time: vec![2.0; pp],
        fwd_comm: vec![0.0; pp - 1],
        bwd_comm: vec![0.0; pp - 1],
    }
    .simulate();
    let inter = VirtualChainSpec {
        pp,
        chunks: 2,
        n_mb,
        fwd_time: vec![0.5; pp * 2],
        bwd_time: vec![1.0; pp * 2],
        fwd_comm: vec![0.0; pp * 2 - 1],
        bwd_comm: vec![0.0; pp * 2 - 1],
    }
    .simulate();
    for d in 0..pp {
        assert!((plain.stage_busy[d] - inter.device_busy[d]).abs() < 1e-9);
    }
    // Comm-free, the interleaved fill is shorter.
    assert!(inter.makespan <= plain.makespan + 1e-9);
}

#[test]
fn interleaved_order_interleaves_chunks_in_steady_state() {
    // After warm-up, consecutive forwards on a device rotate through
    // chunks in groups of pp microbatches.
    let (pp, v, n_mb) = (2usize, 2usize, 8u64);
    let order = device_order(pp, v, 0, n_mb);
    let fwd_chunks: Vec<usize> = order
        .iter()
        .filter(|t| t.task.kind == TaskKind::Forward)
        .map(|t| t.chunk)
        .collect();
    // Pattern: pp forwards of chunk 0, pp of chunk 1, repeating.
    for (k, &chunk) in fwd_chunks.iter().enumerate() {
        assert_eq!(chunk, (k / pp) % v, "forward {k}");
    }
}

#[test]
fn feature_combinations_compose() {
    // Selective recompute + ZeRO-1 + interleaving all at once: memory
    // strictly below the plain-full baseline, time within a sane band.
    let (cluster, gpt) = setup();
    let cfg = ParallelConfig::new(2, 4, 2);
    let plan = MicrobatchPlan::new(32, 2).unwrap();
    let mapping = Mapping::identity(cfg, *cluster.topology());
    let everything = TrainingOptions::new()
        .with_activation(ActivationMode::Selective)
        .with_zero1(true)
        .with_interleaving(2);

    let base_run = ClusterRun::new(&cluster, &gpt);
    let combo_run = ClusterRun::new(&cluster, &gpt).with_options(everything);
    let base = base_run.execute(cfg, &mapping, plan).expect("fits");
    let combo = combo_run.execute(cfg, &mapping, plan).expect("fits");
    assert!(combo.peak_memory_bytes < base.peak_memory_bytes);
    let ratio = combo.iteration_seconds / base.iteration_seconds;
    assert!(ratio > 0.8 && ratio < 1.4, "time ratio {ratio}");
}

#[test]
fn run_facade_charges_the_same_memory_as_its_memsim() {
    let (cluster, gpt) = setup();
    let run = ClusterRun::new(&cluster, &gpt).with_recompute(true);
    let cfg = ParallelConfig::new(4, 2, 2);
    let plan = MicrobatchPlan::new(32, 1).unwrap();
    let mapping = Mapping::identity(cfg, *cluster.topology());
    let measured = run
        .execute(cfg, &mapping, plan)
        .expect("fits with recompute");
    assert_eq!(
        measured.peak_memory_bytes,
        run.peak_memory(cfg, plan).peak_bytes
    );
    assert_eq!(measured.memory.per_stage.len(), cfg.pp);
}

#[test]
fn nic_contention_only_slows_things_down() {
    let (cluster, gpt) = setup();
    let cfg = ParallelConfig::new(2, 8, 1);
    let plan = MicrobatchPlan::new(32, 2).unwrap();
    let mapping = Mapping::identity(cfg, *cluster.topology());
    let gpu = cluster.gpu().clone();
    let free = IterationSim::new(cluster.bandwidth(), &gpu, &gpt)
        .simulate(cfg, &mapping, plan)
        .total_seconds;
    let contended = IterationSim::new(cluster.bandwidth(), &gpu, &gpt)
        .with_options(TrainingOptions::new().with_nic_contention(true))
        .simulate(cfg, &mapping, plan)
        .total_seconds;
    assert!(contended >= free, "contention cannot speed anything up");
}

#[test]
fn gpipe_runs_where_1f1b_runs_but_with_more_memory() {
    let (cluster, gpt) = setup();
    let cfg = ParallelConfig::new(4, 4, 1);
    let plan = MicrobatchPlan::new(64, 1).unwrap();
    let one_f = ClusterRun::new(&cluster, &gpt);
    let gpipe = ClusterRun::new(&cluster, &gpt)
        .with_options(TrainingOptions::new().with_schedule(PipelineSchedule::GPipe));
    let m1 = one_f.peak_memory(cfg, plan).peak_bytes;
    let m2 = gpipe.peak_memory(cfg, plan).peak_bytes;
    assert!(
        m2 > 2 * m1,
        "GPipe {m2} should dwarf 1F1B {m1} at 64 microbatches"
    );
}
