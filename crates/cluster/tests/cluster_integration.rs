//! Integration tests for the cluster substrate: preset realism, profiler
//! fidelity, drift behaviour, and the import/export round trip working
//! together.

use pipette_cluster::{
    parse_mpigraph, presets, Cluster, HeterogeneityModel, NetworkProfiler, TemporalDrift,
};
use proptest::prelude::*;

#[test]
fn presets_produce_physically_sensible_clusters() {
    for (preset, nominal_inter) in [
        (presets::mid_range(8), 11.64),
        (presets::high_end(8), 23.28),
    ] {
        let cluster = preset.build(3);
        let bw = cluster.bandwidth();
        // Attained inter-node bandwidth: below nominal, above a sane floor.
        let mean = bw.mean_inter_node();
        assert!(
            mean < nominal_inter,
            "attained {mean} must undershoot nominal {nominal_inter}"
        );
        assert!(
            mean > 0.3 * nominal_inter,
            "attained {mean} implausibly low"
        );
        // Intra-node is at least an order of magnitude faster than inter.
        let topo = cluster.topology();
        let intra = bw.between(topo.gpu(0, 0), topo.gpu(0, 1));
        assert!(intra > 8.0 * mean);
    }
}

#[test]
fn profiling_noise_shrinks_with_configured_sigma() {
    let cluster = presets::mid_range(4).build(9);
    let truth = cluster.bandwidth();
    let mut errors = Vec::new();
    for sigma in [0.0, 0.01, 0.05] {
        let (profiled, _) = NetworkProfiler::new(sigma, 1.0, 0.1).profile(truth, 5);
        let mut err = 0.0;
        let mut count = 0;
        for a in truth.topology().gpus() {
            for b in truth.topology().gpus() {
                if a != b {
                    err += (profiled.matrix().between(a, b) / truth.between(a, b) - 1.0).abs();
                    count += 1;
                }
            }
        }
        errors.push(err / count as f64);
    }
    assert_eq!(errors[0], 0.0);
    assert!(errors[1] < errors[2]);
}

#[test]
fn drift_series_preserves_heterogeneity_structure() {
    // Fast pairs stay (statistically) faster than slow pairs over time:
    // rank correlation between day 0 and day 30 stays positive.
    let cluster = presets::high_end(8).build(4);
    let series = TemporalDrift::default().series(cluster.bandwidth(), 31, 8);
    let topo = cluster.topology();
    let mut day0 = Vec::new();
    let mut day30 = Vec::new();
    for i in 0..8 {
        for j in 0..8 {
            if i != j {
                day0.push(
                    series[0].node_pair(pipette_cluster::NodeId(i), pipette_cluster::NodeId(j)),
                );
                day30.push(
                    series[30].node_pair(pipette_cluster::NodeId(i), pipette_cluster::NodeId(j)),
                );
            }
        }
    }
    let n = day0.len() as f64;
    let mean = |v: &[f64]| v.iter().sum::<f64>() / n;
    let (m0, m30) = (mean(&day0), mean(&day30));
    let cov: f64 = day0
        .iter()
        .zip(&day30)
        .map(|(a, b)| (a - m0) * (b - m30))
        .sum::<f64>()
        / n;
    let sd = |v: &[f64], m: f64| (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n).sqrt();
    let corr = cov / (sd(&day0, m0) * sd(&day30, m30));
    assert!(
        corr > 0.7,
        "pair identity should persist over a month: corr {corr:.2}"
    );
    let _ = topo;
}

#[test]
fn imported_matrix_composes_with_the_profiler() {
    let table = "0 9000 11000\n9100 0 10000\n11200 9900 0\n";
    let preset = presets::mid_range(3);
    let matrix = parse_mpigraph(table, 8, preset.intra, preset.inter).expect("valid table");
    let cluster = Cluster::new("imported", preset.gpu.clone(), matrix, preset.profiler);
    let (profiled, cost) = cluster.profiler().profile(cluster.bandwidth(), 2);
    assert!(cost.seconds > 0.0);
    assert_eq!(profiled.matrix().topology().num_nodes(), 3);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any heterogeneity parameters within sane ranges yield matrices
    /// bounded by nominal and strictly positive.
    #[test]
    fn generated_matrices_are_bounded(
        mean_eff in 0.4f64..1.0,
        sigma in 0.0f64..0.4,
        straggler_frac in 0.0f64..0.3,
        seed in 0u64..200,
    ) {
        let model = HeterogeneityModel {
            inter_mean_efficiency: mean_eff,
            inter_sigma: sigma,
            straggler_fraction: straggler_frac,
            straggler_factor: 0.4,
            asymmetry_sigma: 0.02,
            intra_sigma: 0.01,
            intra_mean_efficiency: 0.95,
        };
        let mut preset = presets::mid_range(4);
        preset.heterogeneity = model;
        let cluster = preset.build(seed);
        let bw = cluster.bandwidth();
        let nominal = bw.inter_spec().bandwidth_gib_s;
        for a in bw.topology().gpus() {
            for b in bw.topology().gpus() {
                if a == b { continue; }
                let v = bw.between(a, b);
                prop_assert!(v > 0.0);
                if !bw.topology().same_node(a, b) {
                    prop_assert!(v <= nominal * 1.0 + 1e-9);
                }
            }
        }
    }

    /// Truncation commutes with generation prefix: the first nodes of a
    /// big cluster equal the truncated matrix's content.
    #[test]
    fn truncation_is_a_prefix_view(nodes in 2usize..6, seed in 0u64..50) {
        let cluster = presets::mid_range(8).build(seed);
        let small = cluster.truncated(nodes);
        for a in small.topology().gpus() {
            for b in small.topology().gpus() {
                if a != b {
                    prop_assert_eq!(
                        small.bandwidth().between(a, b),
                        cluster.bandwidth().between(a, b)
                    );
                }
            }
        }
    }
}
