//! Cluster presets mirroring Table I of the paper, and the assembled
//! [`Cluster`] value the rest of the workspace consumes.

use crate::bandwidth::BandwidthMatrix;
use crate::error::ClusterError;
use crate::hardware::GpuSpec;
use crate::heterogeneity::HeterogeneityModel;
use crate::link::{gbps_to_gib_s, LinkSpec};
use crate::profiler::NetworkProfiler;
use crate::topology::{ClusterTopology, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A fully realized cluster: topology, hardware, and the ground-truth
/// attained bandwidth matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    name: String,
    gpu: GpuSpec,
    bandwidth: BandwidthMatrix,
    profiler: NetworkProfiler,
}

impl Cluster {
    /// Assembles a cluster from parts.
    pub fn new(
        name: impl Into<String>,
        gpu: GpuSpec,
        bandwidth: BandwidthMatrix,
        profiler: NetworkProfiler,
    ) -> Self {
        Self {
            name: name.into(),
            gpu,
            bandwidth,
            profiler,
        }
    }

    /// Human-readable cluster name, e.g. "mid-range".
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The GPU model installed on every node.
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// The ground-truth attained bandwidth matrix.
    pub fn bandwidth(&self) -> &BandwidthMatrix {
        &self.bandwidth
    }

    /// The cluster topology.
    pub fn topology(&self) -> &ClusterTopology {
        self.bandwidth.topology()
    }

    /// The network profiler configured for this cluster.
    pub fn profiler(&self) -> NetworkProfiler {
        self.profiler
    }

    /// A copy of this cluster restricted to its first `nodes` nodes, used
    /// for memory-estimator sample collection (≤ 4 nodes) and scalability
    /// sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or exceeds the node count.
    pub fn truncated(&self, nodes: usize) -> Self {
        Self {
            name: format!("{} ({} nodes)", self.name, nodes),
            gpu: self.gpu.clone(),
            bandwidth: self.bandwidth.truncated(nodes),
            profiler: self.profiler,
        }
    }

    /// The cluster that remains after cordoning `failed` nodes: survivors
    /// are renumbered densely and keep their exact attained bandwidths.
    /// This is the subcluster a degraded configuration run targets.
    ///
    /// # Errors
    ///
    /// [`ClusterError::EmptySelection`] if every node is failed,
    /// [`ClusterError::InvalidParameter`] if `failed` references a node
    /// outside the topology.
    pub fn excluding_nodes(&self, failed: &[NodeId]) -> Result<Self, ClusterError> {
        let topo = self.topology();
        if let Some(&bad) = failed.iter().find(|n| n.0 >= topo.num_nodes()) {
            return Err(ClusterError::InvalidParameter {
                name: "failed nodes".into(),
                reason: format!("node {bad} outside topology of {} nodes", topo.num_nodes()),
            });
        }
        let survivors: Vec<NodeId> = topo.node_ids().filter(|n| !failed.contains(n)).collect();
        let bandwidth = self.bandwidth.select_nodes(&survivors)?;
        Ok(Self {
            name: format!(
                "{} ({} of {} nodes)",
                self.name,
                survivors.len(),
                topo.num_nodes()
            ),
            gpu: self.gpu.clone(),
            bandwidth,
            profiler: self.profiler,
        })
    }
}

impl Cluster {
    /// Serializes the cluster (topology, hardware, and full attained
    /// matrix) to pretty JSON — useful for pinning a drawn cluster or
    /// shipping a measured one.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors (effectively unreachable for this
    /// type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Restores a cluster from [`Self::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error for malformed input.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

impl fmt::Display for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{} | {}]", self.name, self.topology(), self.gpu)
    }
}

/// A parameterized cluster recipe (Table I row); `build(seed)` realizes the
/// heterogeneous attained-bandwidth matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterPreset {
    /// Cluster name.
    pub name: String,
    /// Topology shape.
    pub topology: ClusterTopology,
    /// GPU model.
    pub gpu: GpuSpec,
    /// Nominal intra-node link (NVLink / NVSwitch).
    pub intra: LinkSpec,
    /// Nominal inter-node link (InfiniBand).
    pub inter: LinkSpec,
    /// Heterogeneity statistics of the attained bandwidths.
    pub heterogeneity: HeterogeneityModel,
    /// Profiling noise/cost model.
    pub profiler: NetworkProfiler,
}

impl ClusterPreset {
    /// Realizes the preset into a concrete cluster. Deterministic in `seed`.
    pub fn build(&self, seed: u64) -> Cluster {
        let matrix = self
            .heterogeneity
            .generate(self.topology, self.intra, self.inter, seed);
        Cluster::new(self.name.clone(), self.gpu.clone(), matrix, self.profiler)
    }
}

/// The paper's mid-range cluster: `nodes` × 8 V100, NVLink 300 GB/s
/// intra-node, InfiniBand EDR (100 Gb/s) inter-node.
pub fn mid_range(nodes: usize) -> ClusterPreset {
    ClusterPreset {
        name: "mid-range".to_owned(),
        topology: ClusterTopology::new(nodes, 8),
        gpu: GpuSpec::v100(),
        intra: LinkSpec::new(300.0e9 / crate::link::GIB, 3e-6),
        inter: LinkSpec::new(gbps_to_gib_s(100.0), 6e-6),
        heterogeneity: HeterogeneityModel::realistic(),
        // Fitted to Table II: 58.13 s at 8 nodes, 119.62 s at 16 nodes.
        profiler: NetworkProfiler::new(0.01, 39.4, 0.335),
    }
}

/// The paper's high-end cluster: `nodes` × 8 A100, NVSwitch 600 GB/s
/// intra-node, InfiniBand HDR (200 Gb/s) inter-node.
pub fn high_end(nodes: usize) -> ClusterPreset {
    ClusterPreset {
        name: "high-end".to_owned(),
        topology: ClusterTopology::new(nodes, 8),
        gpu: GpuSpec::a100(),
        intra: LinkSpec::new(600.0e9 / crate::link::GIB, 2e-6),
        inter: LinkSpec::new(gbps_to_gib_s(200.0), 5e-6),
        heterogeneity: HeterogeneityModel::realistic(),
        // Fitted to Table II: 113.67 s at 8 nodes, 239.21 s at 16 nodes.
        profiler: NetworkProfiler::new(0.01, 75.5, 0.682),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_one() {
        let mid = mid_range(16);
        assert_eq!(mid.topology.num_gpus(), 128);
        assert_eq!(mid.gpu.name, "V100");
        // 100 Gb/s EDR ~ 11.64 GiB/s nominal.
        assert!((mid.inter.bandwidth_gib_s - 11.64).abs() < 0.01);

        let high = high_end(16);
        assert_eq!(high.gpu.name, "A100");
        assert!((high.inter.bandwidth_gib_s - 23.28).abs() < 0.01);
        assert!(high.intra.bandwidth_gib_s > mid.intra.bandwidth_gib_s);
    }

    #[test]
    fn build_is_deterministic() {
        let preset = mid_range(4);
        assert_eq!(preset.build(9), preset.build(9));
        assert_ne!(preset.build(9), preset.build(10));
    }

    #[test]
    fn truncated_cluster_shrinks() {
        let c = high_end(8).build(1);
        let t = c.truncated(2);
        assert_eq!(t.topology().num_nodes(), 2);
        assert_eq!(t.gpu(), c.gpu());
        assert!(t.name().contains("2 nodes"));
    }

    #[test]
    fn excluding_nodes_keeps_survivor_links() {
        let c = mid_range(4).build(3);
        let s = c.excluding_nodes(&[NodeId(1)]).expect("survivable");
        assert_eq!(s.topology().num_nodes(), 3);
        assert!(s.name().contains("3 of 4 nodes"));
        // Survivor links match the original: old node 2 is new node 1.
        let (old, new) = (c.bandwidth(), s.bandwidth());
        assert_eq!(
            new.between(new.topology().gpu(1, 0), new.topology().gpu(0, 0)),
            old.between(old.topology().gpu(2, 0), old.topology().gpu(0, 0)),
        );
        // Cordoning everything is an error; so is an unknown node.
        let all: Vec<NodeId> = c.topology().node_ids().collect();
        assert_eq!(c.excluding_nodes(&all), Err(ClusterError::EmptySelection));
        assert!(matches!(
            c.excluding_nodes(&[NodeId(99)]),
            Err(ClusterError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn display_mentions_name_and_gpu() {
        let c = mid_range(2).build(0);
        let s = c.to_string();
        assert!(s.contains("mid-range") && s.contains("V100"));
    }

    #[test]
    fn cluster_round_trips_through_json() {
        let c = mid_range(2).build(4);
        let json = c.to_json().expect("serializable");
        let back = Cluster::from_json(&json).expect("parseable");
        // The JSON float formatter in this toolchain loses the last ULP,
        // so compare semantically rather than bit-for-bit.
        assert_eq!(back.name(), c.name());
        assert_eq!(back.gpu(), c.gpu());
        assert_eq!(back.topology(), c.topology());
        for a in c.topology().gpus() {
            for b in c.topology().gpus() {
                if a == b {
                    assert!(back.bandwidth().between(a, b).is_infinite());
                } else {
                    let (x, y) = (back.bandwidth().between(a, b), c.bandwidth().between(a, b));
                    assert!((x / y - 1.0).abs() < 1e-12, "({a},{b}): {x} vs {y}");
                }
            }
        }
        assert!(Cluster::from_json("{not json").is_err());
    }

    #[test]
    fn profiling_costs_match_table_two_shape() {
        let mid = mid_range(16);
        let c = mid.profiler.cost(&mid.topology);
        assert!((c.seconds - 119.8).abs() < 1.0);
        let high = high_end(16);
        let c = high.profiler.cost(&high.topology);
        assert!((c.seconds - 239.2).abs() < 1.0);
    }
}
